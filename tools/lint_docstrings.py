#!/usr/bin/env python
"""Docstring lint for src/repro: every module and every public class
must carry a docstring.

A class is public when its name has no leading underscore and it is
defined at module top level (nested helper classes are exempt).  Run
from the repository root:

    python tools/lint_docstrings.py

Exit status is non-zero when violations exist; CI runs this next to the
test suite.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"


def check_file(path: Path) -> list:
    """Return (path, lineno, message) violations for one source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append((path, 1, "missing module docstring"))
    for node in ast.iter_child_nodes(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name.startswith("_"):
            continue
        if ast.get_docstring(node) is None:
            problems.append(
                (path, node.lineno,
                 f"missing docstring on public class {node.name!r}"))
    return problems


def main() -> int:
    problems = []
    for path in sorted(SRC.rglob("*.py")):
        problems.extend(check_file(path))
    for path, lineno, message in problems:
        print(f"{path.relative_to(ROOT)}:{lineno}: {message}")
    if problems:
        print(f"\n{len(problems)} docstring violation(s)", file=sys.stderr)
        return 1
    print(f"docstring lint: OK "
          f"({sum(1 for _ in SRC.rglob('*.py'))} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
