"""Command-line interface for the Privateer reproduction.

Usage::

    python -m repro analyze prog.c --args 64
    python -m repro run prog.c --args 64 --workers 24 --timeline
    python -m repro baselines prog.c --args 64
    python -m repro workloads
    python -m repro report > EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence


def _parse_args_list(values: Optional[List[str]]) -> tuple:
    return tuple(int(v) for v in (values or []))


def _load_source(path: str) -> str:
    return Path(path).read_text()


def cmd_analyze(args: argparse.Namespace) -> int:
    from .bench.pipeline import prepare
    from .transform.plan import SelectionError

    source = _load_source(args.source)
    try:
        program = prepare(source, Path(args.source).stem,
                          args=_parse_args_list(args.args),
                          use_cache=not args.no_cache)
    except SelectionError as e:
        print("no parallelizable loop found:")
        for reason in e.reasons:
            print(f"  - {reason}")
        return 1
    print(program.assignment.describe())
    print()
    print(program.plan.describe())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from .bench.pipeline import prepare

    source = _load_source(args.source)
    program = prepare(source, Path(args.source).stem,
                      args=_parse_args_list(args.args),
                      use_cache=not args.no_cache)
    result = program.execute(
        workers=args.workers,
        checkpoint_period=args.checkpoint_period,
        misspec_period=args.misspec_period,
        record_timeline=args.timeline,
    )
    ok = result.output == program.sequential.output
    stats = result.runtime_stats
    sys.stdout.write("".join(result.output))
    print("---")
    print(f"workers:          {args.workers}")
    print(f"speedup:          {program.speedup(result):.2f}x "
          f"({program.sequential.cycles:,} -> {result.total_wall_cycles:,} cycles)")
    print(f"output matches sequential: {ok}")
    print(f"invocations:      {stats.invocations}")
    print(f"checkpoints:      {stats.checkpoints}")
    print(f"misspeculations:  {stats.misspec_count()} "
          f"(recoveries: {stats.recoveries})")
    breakdown = result.overhead_breakdown()
    print("capacity:         " + ", ".join(
        f"{k} {v:.1%}" for k, v in breakdown.items()))
    if args.timeline and result.timeline is not None:
        print()
        print(result.timeline.render())
    return 0 if ok else 1


def cmd_baselines(args: argparse.Namespace) -> int:
    from .baselines import (
        estimate_dependence_speculation,
        judge_hot_loop,
        run_doall_only,
    )
    from .bench.pipeline import run_sequential

    source = _load_source(args.source)
    name = Path(args.source).stem
    guest_args = _parse_args_list(args.args)

    seq = run_sequential(source, name, args=guest_args)
    print(f"sequential: {seq.cycles:,} cycles")

    base = run_doall_only(source, name, args=guest_args, workers=args.workers)
    print(f"DOALL-only @ {args.workers}: "
          f"{base.speedup_over(seq.cycles):.2f}x "
          f"({len(base.selected)} loop(s) proven parallel)")

    lrpd = judge_hot_loop(source, name, args=guest_args)
    print(f"LRPD applicable to hot loop: {lrpd.applicable}")
    for reason in lrpd.reasons[:3]:
        print(f"  - {reason}")

    dep = estimate_dependence_speculation(source, name, args=guest_args)
    print(f"dependence speculation: {dep.misspec_rate:.0%} of iterations "
          f"conflict (projected {dep.projected_speedup(args.workers):.2f}x)")
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    from .workloads import ALL_WORKLOADS

    for w in ALL_WORKLOADS:
        print(f"{w.name:14s} [{w.suite}] train={w.train} ref={w.ref}")
        print(f"    {w.description}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .bench.report import main as report_main

    report_main()
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    from .perf import run_bench

    return run_bench(
        quick=args.quick,
        repeats=args.repeats,
        workload_names=args.workloads or None,
        out=args.out,
        min_speedup=args.min_speedup,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privateer: speculative separation for privatization "
                    "and reductions (PLDI 2012 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="profile, classify, and show the "
                                       "heap assignment and plan")
    p.add_argument("source", help="MiniC source file")
    p.add_argument("--args", nargs="*", help="integer arguments for main")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the on-disk profile cache")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("run", help="parallelize and execute on the "
                                   "simulated multicore")
    p.add_argument("source")
    p.add_argument("--args", nargs="*")
    p.add_argument("--workers", type=int, default=24)
    p.add_argument("--checkpoint-period", type=int, default=None)
    p.add_argument("--misspec-period", type=int, default=0,
                   help="inject a misspeculation every N iterations")
    p.add_argument("--timeline", action="store_true",
                   help="render the Figure 5 execution timeline")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the on-disk profile cache")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("baselines", help="judge the program under the "
                                         "comparison systems")
    p.add_argument("source")
    p.add_argument("--args", nargs="*")
    p.add_argument("--workers", type=int, default=24)
    p.set_defaults(func=cmd_baselines)

    p = sub.add_parser("workloads", help="list the five evaluated programs")
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser("report", help="regenerate EXPERIMENTS.md content "
                                      "on stdout (slow)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("perf", help="benchmark the interpreter fast path "
                                    "and pipeline cache; appends to "
                                    "BENCH_interp.json")
    p.add_argument("--quick", action="store_true",
                   help="train inputs, dijkstra only, 1.5x gate (CI smoke)")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--workloads", nargs="*",
                   help="restrict to these workloads (default: all, or "
                        "dijkstra with --quick)")
    p.add_argument("--out", default="BENCH_interp.json",
                   help="trajectory file to append to ('' to skip writing)")
    p.add_argument("--min-speedup", type=float, default=None,
                   help="fail if the dijkstra interp speedup is below this")
    p.set_defaults(func=cmd_perf)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
