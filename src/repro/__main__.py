"""Command-line interface for the Privateer reproduction.

Usage::

    python -m repro analyze prog.c --args 64
    python -m repro run prog.c --args 64 --workers 24 --timeline
    python -m repro trace dijkstra --out-dir traces/
    python -m repro explain dijkstra --misspec-period 7 --misspec-burst 30
    python -m repro baselines prog.c --args 64
    python -m repro workloads --json
    python -m repro report > EXPERIMENTS.md
    python -m repro serve --port 8517
    python -m repro submit dijkstra --small --workers 8
    python -m repro jobs j1

Observability: ``trace`` runs a workload (or source file) with the full
tracing/metrics layer on and emits a JSONL event stream plus a Chrome
``trace_event`` JSON (open in chrome://tracing or https://ui.perfetto.dev).
``run``/``analyze``/``perf`` accept ``--trace``/``--trace-out``/
``--metrics`` for the same artifacts; ``REPRO_LOG=debug`` turns on
runtime logging.

Forensics: ``explain`` runs a workload with the flight recorder armed
and prints a root-cause diagnosis for every misspeculation (offending
site, object, logical heap, conflicting iteration pair, shadow-code
transition).  ``run``/``trace``/``explain`` accept ``--report out.html``
for a self-contained HTML run report; ``$REPRO_FLIGHT_DIR`` makes any
run dump a flight record on misspeculation or crash.  See
docs/FORENSICS.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence


def _parse_args_list(values: Optional[List[str]]) -> tuple:
    return tuple(int(v) for v in (values or []))


def _positive_int(value: str) -> int:
    """argparse type for --workers: a parallel run needs >= 1 worker."""
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if n < 1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 (got {n}); a run needs at least one worker")
    return n


def _epoch_size(value: str) -> int:
    """argparse type for --checkpoint-period: an epoch must retire at
    least 2 iterations for speculation to make progress."""
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if n < 2:
        raise argparse.ArgumentTypeError(
            f"must be >= 2 (got {n}); an epoch below 2 iterations cannot "
            f"amortize a checkpoint")
    return n


def _load_source(path: str) -> str:
    return Path(path).read_text()


PERFETTO_HINT = ("open in chrome://tracing or https://ui.perfetto.dev")


def _add_backend_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument("--backend", choices=("simulated", "process", "pool"),
                   default=None,
                   help="execution backend: 'simulated' is the "
                        "deterministic in-process reference, 'process' "
                        "runs real forked worker processes per epoch, "
                        "'pool' keeps a persistent worker pool with "
                        "shared-memory fragment transport (default: "
                        "$REPRO_BACKEND, then 'simulated')")
    p.add_argument("--pool-workers", type=_positive_int, default=None,
                   metavar="N",
                   help="pool backend only: number of resident pool "
                        "processes (default: one per worker; fewer "
                        "multiplexes several worker ids per process)")


def _add_adapt_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument("--adapt", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="enable the adaptive speculation controller "
                        "(AIMD epoch sizing, demotion, sequential "
                        "fallback; persists policy across runs). "
                        "Default: $REPRO_ADAPT, then off; --no-adapt "
                        "fully bypasses the subsystem")


def _print_adapt_summary(adapt) -> None:
    if adapt is None:
        return
    from .adapt import format_summary

    print(f"adapt:            {format_summary(adapt)}")


def _obs_requested(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "trace", False)
                or getattr(args, "trace_out", None)
                or getattr(args, "metrics", False))


def _obs_enable_if_requested(args: argparse.Namespace) -> bool:
    if _obs_requested(args):
        from . import obs

        obs.enable()
        return True
    return False


def _start_status_server(args: argparse.Namespace):
    """Start the live status endpoint when ``--status-port`` (or
    ``$REPRO_STATUS_PORT``) is configured; returns the running server or
    None.  Arms observability if it isn't already — in-worker telemetry
    only flows while tracing is enabled, and a status endpoint over an
    empty registry is useless."""
    from .obs.server import StatusServer, resolve_status_port

    if not hasattr(args, "status_port"):
        return None  # consumer commands (top, bench-check, ...) never serve
    try:
        port = resolve_status_port(args.status_port)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        raise SystemExit(2)
    if port is None:
        return None
    from . import obs

    if not obs.enabled():
        obs.enable()
    server = StatusServer(port=port).start()
    print(f"status: {server.url}/metrics · /metrics.prom · /health "
          f"(poll with: python -m repro top --port {server.port})")
    return server


def _write_trace_artifacts(prefix: Path, timeline=None) -> None:
    from . import obs

    prefix.parent.mkdir(parents=True, exist_ok=True)
    jsonl = Path(f"{prefix}.trace.jsonl")
    chrome = Path(f"{prefix}.chrome.json")
    n = obs.TRACER.write_jsonl(jsonl)
    m = obs.TRACER.write_chrome(chrome, timeline=timeline)
    print(f"trace: {n} event(s) -> {jsonl}")
    print(f"trace: {m} Chrome event(s) -> {chrome} ({PERFETTO_HINT})")


def _obs_finish(args: argparse.Namespace, default_prefix: str,
                timeline=None) -> None:
    """Emit the artifacts requested by --trace/--trace-out/--metrics."""
    if not _obs_requested(args):
        return
    from . import obs

    if getattr(args, "trace", False) or getattr(args, "trace_out", None):
        prefix = Path(getattr(args, "trace_out", None) or default_prefix)
        _write_trace_artifacts(prefix, timeline)
    if getattr(args, "metrics", False):
        print()
        print(obs.METRICS.render_table())
    obs.disable()


def _resolve_workload(args: argparse.Namespace):
    """Resolve a positional workload argument — a registered workload name
    or a MiniC source path — into ``(source, name, train_args, ref_args)``;
    prints an error and returns None if it is neither."""
    from .workloads import BY_NAME

    path = Path(args.workload)
    explicit_args = _parse_args_list(args.args) if args.args else None
    if args.workload in BY_NAME:
        w = BY_NAME[args.workload]
        ref = explicit_args or (w.train if args.small else w.ref)
        return w.source, w.name, w.train, ref
    if path.is_file():
        train = ref = explicit_args or ()
        return path.read_text(), path.stem, train, ref
    print(f"error: {args.workload!r} is neither a workload "
          f"({', '.join(sorted(BY_NAME))}) nor a MiniC source file",
          file=sys.stderr)
    return None


def _write_report(path: str, snapshot, title: str) -> None:
    """Render the forensics snapshot as a self-contained HTML report."""
    from .forensics import explain_snapshot, render_html

    diagnoses = explain_snapshot(snapshot)
    out = Path(path)
    if out.parent != Path("."):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_html(snapshot, diagnoses, title=title))
    print(f"report: {len(diagnoses)} diagnosis(es) -> {out}")


def cmd_analyze(args: argparse.Namespace) -> int:
    from .bench.pipeline import prepare
    from .transform.plan import SelectionError

    _obs_enable_if_requested(args)
    source = _load_source(args.source)
    try:
        program = prepare(source, Path(args.source).stem,
                          args=_parse_args_list(args.args),
                          use_cache=not args.no_cache)
    except SelectionError as e:
        print("no parallelizable loop found:")
        for reason in e.reasons:
            print(f"  - {reason}")
        _obs_finish(args, Path(args.source).stem)
        return 1
    print(program.assignment.describe())
    print()
    print(program.plan.describe())
    _obs_finish(args, Path(args.source).stem)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from .bench.pipeline import prepare

    tracing = _obs_enable_if_requested(args)
    source = _load_source(args.source)
    program = prepare(source, Path(args.source).stem,
                      args=_parse_args_list(args.args),
                      use_cache=not args.no_cache,
                      adapt=args.adapt)
    result = program.execute(
        workers=args.workers,
        checkpoint_period=args.checkpoint_period,
        misspec_period=args.misspec_period,
        misspec_burst=args.misspec_burst,
        record_timeline=args.timeline or tracing,
        backend=args.backend,
        pool_workers=args.pool_workers,
        adapt=args.adapt,
    )
    ok = result.output == program.sequential.output
    stats = result.runtime_stats
    sys.stdout.write("".join(result.output))
    print("---")
    from .parallel.backend import resolve_backend_name

    print(f"backend:          {resolve_backend_name(args.backend)}")
    print(f"workers:          {args.workers}")
    print(f"speedup:          {program.speedup(result):.2f}x "
          f"({program.sequential.cycles:,} -> {result.total_wall_cycles:,} cycles)")
    print(f"output matches sequential: {ok}")
    print(f"invocations:      {stats.invocations}")
    print(f"checkpoints:      {stats.checkpoints}")
    print(f"misspeculations:  {stats.misspec_count()} "
          f"(recoveries: {stats.recoveries})")
    _print_adapt_summary(result.adapt)
    breakdown = result.overhead_breakdown()
    print("capacity:         " + ", ".join(
        f"{k} {v:.1%}" for k, v in breakdown.items()))
    if args.timeline and result.timeline is not None:
        print()
        print(result.timeline.render())
    if args.report:
        _write_report(args.report,
                      result.forensics,  # type: ignore[attr-defined]
                      f"{Path(args.source).stem} · "
                      f"{resolve_backend_name(args.backend)}")
    _obs_finish(args, Path(args.source).stem, timeline=result.timeline)
    return 0 if ok else 1


def cmd_baselines(args: argparse.Namespace) -> int:
    from .baselines import (
        estimate_dependence_speculation,
        judge_hot_loop,
        run_doall_only,
    )
    from .bench.pipeline import run_sequential

    source = _load_source(args.source)
    name = Path(args.source).stem
    guest_args = _parse_args_list(args.args)

    seq = run_sequential(source, name, args=guest_args)
    print(f"sequential: {seq.cycles:,} cycles")

    base = run_doall_only(source, name, args=guest_args, workers=args.workers)
    print(f"DOALL-only @ {args.workers}: "
          f"{base.speedup_over(seq.cycles):.2f}x "
          f"({len(base.selected)} loop(s) proven parallel)")

    lrpd = judge_hot_loop(source, name, args=guest_args)
    print(f"LRPD applicable to hot loop: {lrpd.applicable}")
    for reason in lrpd.reasons[:3]:
        print(f"  - {reason}")

    dep = estimate_dependence_speculation(source, name, args=guest_args)
    print(f"dependence speculation: {dep.misspec_rate:.0%} of iterations "
          f"conflict (projected {dep.projected_speedup(args.workers):.2f}x)")
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    from .workloads import ALL_WORKLOADS

    if args.json:
        import json

        from .service.app import workloads_payload
        from .service.serializers import envelope

        print(json.dumps(envelope(workloads_payload()), indent=2,
                         sort_keys=True))
        return 0
    for w in ALL_WORKLOADS:
        print(f"{w.name:14s} [{w.suite}] train={w.train} ref={w.ref}")
        print(f"    {w.description}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the parallelization-as-a-service job API until SIGTERM/SIGINT
    (see docs/SERVICE.md).  Deliberately does not call ``obs.enable()``:
    that would reset the metrics registry and destroy the service
    counters the endpoint exists to expose."""
    import signal
    import threading

    from .service.app import ServiceApp, resolve_serve_port

    try:
        port = resolve_serve_port(args.port)
        app = ServiceApp(port=port, queue_depth=args.queue_depth,
                         retain=args.retain, history_dir=args.history_dir)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    done = threading.Event()
    previous = {}

    def _on_signal(signum, frame):
        done.set()

    for sig in (signal.SIGTERM, signal.SIGINT):
        previous[sig] = signal.signal(sig, _on_signal)
    app.start()
    print(f"serve: job API on {app.url}")
    print(f"serve: POST {app.url}/jobs · GET /jobs/<id> · /jobs/<id>/trace "
          f"· /fingerprints · /workloads · /metrics · /metrics.prom "
          f"· /health")
    if app.history is not None:
        print(f"serve: metrics history ring at {app.history.path} "
              f"(render with: python -m repro dash --history-dir "
              f"{app.history.dir})")
    print(f"serve: queue depth {app.store.queue_depth}, submit with: "
          f"python -m repro submit <workload> --url {app.url}",
          flush=True)
    try:
        done.wait()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        app.stop()
        counts = app.store.counts()
        print("serve: drained and stopped "
              f"({', '.join(f'{k}={v}' for k, v in counts.items())})")
    return 0


def _service_client(args: argparse.Namespace):
    from .service.client import ServiceClient, default_url

    try:
        url = args.url or default_url(args.port)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        raise SystemExit(2)
    return ServiceClient(url, timeout=args.timeout)


def _print_job_summary(job: dict) -> None:
    state = job["state"]
    flavor = ("cache hit" if job.get("cache_hit")
              else "warm" if job.get("warm") else "cold")
    line = f"{job['id']}: {state} ({job['name']}, {flavor})"
    result = job.get("result") or {}
    if state == "done" and result:
        t1 = result.get("table1") or {}
        line += (f" speedup={t1.get('speedup')}x"
                 f" misspec={result.get('misspeculations', 0)}"
                 f" recoveries={result.get('recoveries', 0)}")
    if job.get("error"):
        line += f" error: {job['error']}"
    print(line)


def cmd_submit(args: argparse.Namespace) -> int:
    import json

    from .service.client import ServiceError
    from .workloads import BY_NAME

    payload: dict = {"workers": args.workers}
    path = Path(args.workload)
    if args.workload in BY_NAME:
        payload["workload"] = args.workload
        if args.small:
            payload["small"] = True
    elif path.is_file():
        payload["source"] = path.read_text()
        payload["name"] = path.stem
    else:
        print(f"error: {args.workload!r} is neither a workload "
              f"({', '.join(sorted(BY_NAME))}) nor a MiniC source file",
              file=sys.stderr)
        return 2
    if args.args:
        payload["args"] = [int(v) for v in args.args]
    if args.train_args:
        payload["train_args"] = [int(v) for v in args.train_args]
    for key, value in (("backend", args.backend),
                       ("pool_workers", args.pool_workers),
                       ("checkpoint_period", args.checkpoint_period)):
        if value is not None:
            payload[key] = value
    if args.misspec_period:
        payload["misspec_period"] = args.misspec_period
    if args.misspec_burst:
        payload["misspec_burst"] = args.misspec_burst
    if args.adapt:
        payload["adapt"] = True
    if args.trace:
        payload["trace"] = True

    client = _service_client(args)
    try:
        job = client.submit_retrying(payload)
        if args.wait and job["state"] not in ("done", "failed",
                                              "misspeculated"):
            job = client.wait(job["id"], timeout=args.timeout)
    except (ServiceError, TimeoutError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(job, indent=2, sort_keys=True))
    else:
        _print_job_summary(job)
    if not args.wait:
        return 0
    return 0 if job["state"] == "done" else 1


def cmd_jobs(args: argparse.Namespace) -> int:
    import json

    from .service.client import ServiceError

    client = _service_client(args)
    try:
        if args.job_id:
            job = client.job(args.job_id)
            if args.json:
                print(json.dumps(job, indent=2, sort_keys=True))
            else:
                _print_job_summary(job)
            return 0
        listing = client.jobs()
    except ServiceError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(listing, indent=2, sort_keys=True))
        return 0
    jobs = listing.get("jobs", [])
    if not jobs:
        print("(no jobs)")
        return 0
    print(f"{'id':<6} {'state':<14} {'name':<14} {'path':<9} fingerprint")
    for job in jobs:
        flavor = ("cache-hit" if job.get("cache_hit")
                  else "warm" if job.get("warm") else "cold")
        print(f"{job['id']:<6} {job['state']:<14} {job['name']:<14} "
              f"{flavor:<9} {job['fingerprint']}")
    counts = listing.get("counts", {})
    print("counts: " + ", ".join(f"{k}={v}" for k, v in counts.items()
                                 if v))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .bench.report import main as report_main

    report_main()
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    from .perf import run_bench

    _obs_enable_if_requested(args)
    rc = run_bench(
        quick=args.quick,
        repeats=args.repeats,
        workload_names=args.workloads or None,
        out=args.out,
        min_speedup=args.min_speedup,
        backend=args.backend,
        pool_workers=args.pool_workers,
        adapt=args.adapt,
        stress=args.stress,
    )
    _obs_finish(args, "perf")
    return rc


def cmd_trace(args: argparse.Namespace) -> int:
    from . import obs
    from .bench.pipeline import prepare
    from .transform.plan import SelectionError

    resolved = _resolve_workload(args)
    if resolved is None:
        return 2
    source, name, train, ref = resolved

    obs.enable()
    out_dir = Path(args.out_dir)
    # Stream events to the JSONL sink as they are recorded, so a crash
    # mid-run still leaves a partial trace on disk; the final
    # write_jsonl() below rewrites the complete file with a real header.
    out_dir.mkdir(parents=True, exist_ok=True)
    obs.TRACER.open_sink(out_dir / f"{name}.trace.jsonl")
    try:
        # The inspector observes the *full* pipeline: skip the profile
        # cache unless the user opts back in, so the profiling phases and
        # interpreter metrics always appear in the trace.
        program = prepare(source, name, args=train, ref_args=ref,
                          use_cache=args.cache, adapt=args.adapt)
    except SelectionError as e:
        print("no parallelizable loop found:")
        for reason in e.reasons:
            print(f"  - {reason}")
        _write_trace_artifacts(out_dir / name)
        return 1
    result = program.execute(
        workers=args.workers,
        checkpoint_period=args.checkpoint_period,
        misspec_period=args.misspec_period,
        misspec_burst=args.misspec_burst,
        record_timeline=True,
        backend=args.backend,
        pool_workers=args.pool_workers,
        adapt=args.adapt,
    )
    ok = result.output == program.sequential.output
    stats = result.runtime_stats

    from .parallel.backend import resolve_backend_name

    print(f"{name}: {resolve_backend_name(args.backend)} backend, "
          f"{args.workers} workers, "
          f"{program.speedup(result):.2f}x speedup "
          f"({program.sequential.cycles:,} -> "
          f"{result.total_wall_cycles:,} cycles), "
          f"{stats.checkpoints} checkpoint(s), "
          f"{stats.misspec_count()} misspeculation(s), "
          f"output match: {ok}")
    _print_adapt_summary(result.adapt)
    print()
    print(obs.TRACER.render_summary())
    print()
    print(obs.METRICS.render_table())
    print()
    _write_trace_artifacts(out_dir / name, timeline=result.timeline)
    if args.report:
        _write_report(args.report,
                      result.forensics,  # type: ignore[attr-defined]
                      f"{name} · {resolve_backend_name(args.backend)}")
    obs.disable()
    return 0 if ok else 1


def cmd_explain(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from .bench.pipeline import prepare
    from .forensics import explain_snapshot, load_dump, render_text
    from .forensics.explain import to_json
    from .parallel.backend import resolve_backend_name
    from .transform.plan import SelectionError

    resolved = _resolve_workload(args)
    if resolved is None:
        return 2
    source, name, train, ref = resolved
    # Without an explicit --flight-dir the dump goes to a temp dir: the
    # diagnosis is still derived by round-tripping through the on-disk
    # artifact, but nothing is left behind.
    tmp = None
    flight_dir = args.flight_dir
    if flight_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-flight-")
        flight_dir = tmp.name
    try:
        try:
            program = prepare(source, name, args=train, ref_args=ref,
                              use_cache=not args.no_cache, adapt=args.adapt)
        except SelectionError as e:
            print("no parallelizable loop found:")
            for reason in e.reasons:
                print(f"  - {reason}")
            return 1
        result = program.execute(
            workers=args.workers,
            checkpoint_period=args.checkpoint_period,
            misspec_period=args.misspec_period,
            misspec_burst=args.misspec_burst,
            backend=args.backend,
            pool_workers=args.pool_workers,
            adapt=args.adapt,
            flight_dir=flight_dir,
        )
        dump_path = result.flight_dump  # type: ignore[attr-defined]
        snapshot = (load_dump(dump_path) if dump_path
                    else result.forensics)  # type: ignore[attr-defined]
        diagnoses = explain_snapshot(snapshot)
        shown = dump_path if args.flight_dir else None
        print(render_text(snapshot, diagnoses, dump_path=shown))
        if args.json:
            out = Path(args.json)
            if out.parent != Path("."):
                out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(json.dumps(to_json(snapshot, diagnoses),
                                      indent=2, sort_keys=True) + "\n")
            print(f"explain: JSON -> {out}")
        if args.report:
            _write_report(args.report, snapshot,
                          f"{name} · {resolve_backend_name(args.backend)}")
    finally:
        if tmp is not None:
            tmp.cleanup()
    return 0


def _add_report_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument("--report", default=None, metavar="OUT.html",
                   help="write a self-contained HTML run report (heap "
                        "map, epoch outcome strip, conflict table, "
                        "controller decision log)")


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", action="store_true",
                   help="record structured trace events and write "
                        "<stem>.trace.jsonl + <stem>.chrome.json")
    p.add_argument("--trace-out", default=None, metavar="PREFIX",
                   help="path prefix for the trace artifacts "
                        "(implies --trace)")
    p.add_argument("--metrics", action="store_true",
                   help="print the metrics table after the command")
    _add_status_flag(p)


def _add_status_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument("--status-port", type=int, default=None, metavar="PORT",
                   help="serve a live status endpoint on 127.0.0.1:PORT "
                        "(/metrics, /metrics.prom, /health) while the "
                        "command runs; 0 picks an ephemeral port; "
                        "defaults to $REPRO_STATUS_PORT")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privateer: speculative separation for privatization "
                    "and reductions (PLDI 2012 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="profile, classify, and show the "
                                       "heap assignment and plan")
    p.add_argument("source", help="MiniC source file")
    p.add_argument("--args", nargs="*", help="integer arguments for main")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the on-disk profile cache")
    _add_obs_flags(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("run", help="parallelize and execute on the "
                                   "simulated multicore")
    p.add_argument("source")
    p.add_argument("--args", nargs="*")
    p.add_argument("--workers", type=_positive_int, default=24)
    p.add_argument("--checkpoint-period", type=_epoch_size, default=None)
    p.add_argument("--misspec-period", type=int, default=0,
                   help="inject a misspeculation every N iterations")
    p.add_argument("--misspec-burst", type=int, default=0,
                   help="limit injection to the first N iterations "
                        "(0 = no limit)")
    p.add_argument("--timeline", action="store_true",
                   help="render the Figure 5 execution timeline")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the on-disk profile cache")
    _add_report_flag(p)
    _add_backend_flag(p)
    _add_adapt_flag(p)
    _add_obs_flags(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("trace", help="run a workload with full tracing on "
                                     "and emit JSONL + Chrome trace "
                                     "artifacts")
    p.add_argument("workload", help="workload name (see `repro workloads`) "
                                    "or a MiniC source file")
    p.add_argument("--args", nargs="*",
                   help="integer arguments for main (overrides the "
                        "workload's input set)")
    p.add_argument("--small", action="store_true",
                   help="use the train input instead of ref (CI smoke)")
    p.add_argument("--workers", type=_positive_int, default=24)
    p.add_argument("--checkpoint-period", type=_epoch_size, default=None)
    p.add_argument("--misspec-period", type=int, default=0,
                   help="inject a misspeculation every N iterations")
    p.add_argument("--misspec-burst", type=int, default=0,
                   help="limit injection to the first N iterations "
                        "(0 = no limit)")
    p.add_argument("--out-dir", default=".",
                   help="directory for <name>.trace.jsonl and "
                        "<name>.chrome.json (default: .)")
    p.add_argument("--cache", action="store_true",
                   help="allow the on-disk profile cache (default: off, so "
                        "the trace covers the whole pipeline)")
    _add_report_flag(p)
    _add_backend_flag(p)
    _add_adapt_flag(p)
    _add_status_flag(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("explain", help="run a workload with the flight "
                                       "recorder armed and diagnose every "
                                       "misspeculation (root cause, site, "
                                       "heap, iteration pair)")
    p.add_argument("workload", help="workload name (see `repro workloads`) "
                                    "or a MiniC source file")
    p.add_argument("--args", nargs="*",
                   help="integer arguments for main (overrides the "
                        "workload's input set)")
    p.add_argument("--small", action="store_true",
                   help="use the train input instead of ref (CI smoke)")
    p.add_argument("--workers", type=_positive_int, default=24)
    p.add_argument("--checkpoint-period", type=_epoch_size, default=None)
    p.add_argument("--misspec-period", type=int, default=0,
                   help="inject a misspeculation every N iterations")
    p.add_argument("--misspec-burst", type=int, default=0,
                   help="limit injection to the first N iterations "
                        "(0 = no limit)")
    p.add_argument("--flight-dir", default=None, metavar="DIR",
                   help="keep the flight dump under DIR (default: a "
                        "temporary directory, discarded after the "
                        "diagnosis; $REPRO_FLIGHT_DIR does NOT apply — "
                        "explain always records)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the structured diagnosis as JSON "
                        "(validated by `python -m repro.obs.schema "
                        "--explain`)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the on-disk profile cache")
    _add_report_flag(p)
    _add_backend_flag(p)
    _add_adapt_flag(p)
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("baselines", help="judge the program under the "
                                         "comparison systems")
    p.add_argument("source")
    p.add_argument("--args", nargs="*")
    p.add_argument("--workers", type=_positive_int, default=24)
    p.set_defaults(func=cmd_baselines)

    p = sub.add_parser("workloads", help="list the five evaluated programs")
    p.add_argument("--json", action="store_true",
                   help="machine-readable listing (name, args schema, "
                        "description) — the same payload as GET "
                        "/workloads on `repro serve`")
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser("serve", help="run the parallelization-as-a-service "
                                     "job API (POST /jobs, fingerprint-"
                                     "batched scheduling, warm result "
                                     "cache; docs/SERVICE.md)")
    p.add_argument("--port", type=int, default=None,
                   help="loopback port to serve on; 0 picks an ephemeral "
                        "port (default: $REPRO_SERVE_PORT, then 8517)")
    p.add_argument("--queue-depth", type=_positive_int, default=None,
                   metavar="N",
                   help="bound on queued jobs before submits get 429 + "
                        "Retry-After (default: $REPRO_SERVE_QUEUE, "
                        "then 64)")
    p.add_argument("--retain", type=_positive_int, default=256,
                   metavar="N",
                   help="finished jobs kept for GET /jobs/<id> before "
                        "eviction (default: 256)")
    p.add_argument("--history-dir", default=None, metavar="DIR",
                   help="append periodic metrics snapshots to "
                        "DIR/history.jsonl — the bounded ring `repro "
                        "dash` renders (default: $REPRO_HISTORY_DIR, "
                        "else disabled)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit", help="submit a job to a running "
                                      "`repro serve` and wait for the "
                                      "result")
    p.add_argument("workload", help="workload name (see `repro workloads`) "
                                    "or a MiniC source file")
    p.add_argument("--args", nargs="*",
                   help="integer arguments for main (overrides the "
                        "workload's input set)")
    p.add_argument("--small", action="store_true",
                   help="use the train input instead of ref (CI smoke)")
    p.add_argument("--train-args", nargs="*",
                   help="integer profiling arguments (defaults to --args; "
                        "differing train/ref inputs exercise genuine "
                        "misspeculation)")
    p.add_argument("--workers", type=_positive_int, default=4)
    p.add_argument("--checkpoint-period", type=_epoch_size, default=None)
    p.add_argument("--misspec-period", type=int, default=0,
                   help="inject a misspeculation every N iterations")
    p.add_argument("--misspec-burst", type=int, default=0,
                   help="limit injection to the first N iterations "
                        "(0 = no limit)")
    p.add_argument("--adapt", action="store_true",
                   help="run the job with the adaptive speculation "
                        "controller on")
    p.add_argument("--trace", action="store_true",
                   help="record a JSONL trace server-side (fetch with "
                        "GET /jobs/<id>/trace)")
    p.add_argument("--no-wait", dest="wait", action="store_false",
                   help="return after the job is queued instead of "
                        "polling for the result")
    p.add_argument("--json", action="store_true",
                   help="print the raw job payload instead of a summary")
    p.add_argument("--url", default=None,
                   help="server base URL (default: http://127.0.0.1:"
                        "$REPRO_SERVE_PORT)")
    p.add_argument("--port", type=int, default=None,
                   help="server port on 127.0.0.1 (ignored with --url)")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="seconds to wait for the result (default: 300)")
    _add_backend_flag(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("jobs", help="list jobs on a running `repro serve` "
                                    "(or show one by id)")
    p.add_argument("job_id", nargs="?", default=None,
                   help="job id (e.g. j3); omit to list all retained jobs")
    p.add_argument("--json", action="store_true",
                   help="print the raw payload instead of a table")
    p.add_argument("--url", default=None,
                   help="server base URL (default: http://127.0.0.1:"
                        "$REPRO_SERVE_PORT)")
    p.add_argument("--port", type=int, default=None,
                   help="server port on 127.0.0.1 (ignored with --url)")
    p.add_argument("--timeout", type=float, default=10.0,
                   help="request timeout in seconds (default: 10)")
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser("report", help="regenerate EXPERIMENTS.md content "
                                      "on stdout (slow)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("perf", help="benchmark the interpreter fast path "
                                    "and pipeline cache; appends to "
                                    "BENCH_interp.json")
    p.add_argument("--quick", action="store_true",
                   help="train inputs, dijkstra only, 1.5x gate (CI smoke)")
    p.add_argument("--stress", action="store_true",
                   help="add the large-footprint shadow configuration "
                        "(multi-KB ops, multi-MB checkpoint merge)")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--workloads", nargs="*",
                   help="restrict to these workloads (default: all, or "
                        "dijkstra with --quick)")
    p.add_argument("--out", default="BENCH_interp.json",
                   help="trajectory file to append to ('' to skip writing)")
    p.add_argument("--min-speedup", type=float, default=None,
                   help="fail if the dijkstra interp speedup is below this")
    _add_backend_flag(p)
    _add_adapt_flag(p)
    _add_obs_flags(p)
    p.set_defaults(func=cmd_perf)

    p = sub.add_parser("top", add_help=False,
                       help="live terminal dashboard polling a run's "
                            "status endpoint (see --status-port)")
    p.add_argument("rest", nargs=argparse.REMAINDER)
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("dash", add_help=False,
                       help="render a self-contained HTML dashboard from "
                            "the metrics history ring (`repro serve "
                            "--history-dir` / $REPRO_HISTORY_DIR)")
    p.add_argument("rest", nargs=argparse.REMAINDER)
    p.set_defaults(func=cmd_dash)

    p = sub.add_parser("bench-check", add_help=False,
                       help="fail if the latest BENCH_interp.json entry "
                            "regressed against the trajectory median")
    p.add_argument("rest", nargs=argparse.REMAINDER)
    p.set_defaults(func=cmd_bench_check)
    return parser


def cmd_top(args: argparse.Namespace) -> int:
    from .obs.top import main as top_main

    return top_main(args.rest)


def cmd_dash(args: argparse.Namespace) -> int:
    from .obs.dash import main as dash_main

    return dash_main(args.rest)


def cmd_bench_check(args: argparse.Namespace) -> int:
    from .bench.check import main as check_main

    return check_main(args.rest)


def main(argv: Optional[Sequence[str]] = None) -> int:
    from .obs.log import configure_from_env

    configure_from_env()  # honour REPRO_LOG=debug|info|... for every command
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Delegated subcommands own their argument parsing; hand over before
    # argparse (REMAINDER refuses leading optionals, bpo-17050).
    if argv[:1] == ["top"]:
        from .obs.top import main as top_main

        return top_main(argv[1:])
    if argv[:1] == ["dash"]:
        from .obs.dash import main as dash_main

        return dash_main(argv[1:])
    if argv[:1] == ["bench-check"]:
        from .bench.check import main as check_main

        return check_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    from .parallel.backend import BackendError

    status = _start_status_server(args)
    try:
        return args.func(args)
    except BackendError as e:
        # Backend mis-configuration (--pool-workers on the wrong backend,
        # malformed $REPRO_POOL_RING_KB, ...) is a usage error, not a bug.
        print(f"error: {e}", file=sys.stderr)
        return 2
    finally:
        if status is not None:
            status.stop()
            from . import obs

            obs.disable()  # the endpoint armed obs; don't leak the state


if __name__ == "__main__":
    sys.exit(main())
