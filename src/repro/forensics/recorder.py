"""Bounded flight recorder for the speculative runtime.

A :class:`FlightRecorder` is a fixed-capacity ring of small event dicts
(epoch outcomes, controller decisions, misspeculations with conflict
context, per-site access totals).  Recording is append-to-deque cheap so
the recorder can stay on for every run; nothing is serialised unless a
misspeculation or crash actually happens, at which point the executor
dumps a :func:`snapshot <FlightRecorder.snapshot>` as JSONL (see
``docs/FORENSICS.md`` for the line format).

The dump directory is chosen by the executor's ``flight_dir`` argument
or the ``REPRO_FLIGHT_DIR`` environment variable; with neither set no
files are ever written.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Optional

from ..classify.heaps import HeapKind

#: Environment variable naming the directory for flight-recorder dumps.
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"

#: Version stamp written into every dump's meta line.
FLIGHT_FORMAT = 1

#: Default ring capacity (events kept; older ones are dropped, counted).
DEFAULT_CAPACITY = 512


def heap_name(tag: int) -> str:
    """Human name for a 3-bit logical-heap tag (``untagged`` for 0/unknown)."""
    try:
        return str(HeapKind(tag))
    except ValueError:
        return "untagged"


def heap_map_of(space) -> List[Dict[str, object]]:
    """Describe every live object in an AddressSpace for the dump/report.

    Sorted by base address so the report's address-space map and the
    parity tests see a deterministic order.
    """
    objects = []
    for obj in space.live_objects():
        objects.append(
            {
                "name": obj.name,
                "site": obj.site,
                "base": f"0x{obj.base:x}",
                "size": obj.size,
                "tag": obj.tag,
                "heap": heap_name(obj.tag),
            }
        )
    objects.sort(key=lambda o: int(str(o["base"]), 16))
    return objects


class FlightRecorder:
    """Fixed-capacity ring buffer of runtime forensic events.

    One instance lives on each :class:`~repro.runtime.system.RuntimeSystem`;
    the executor, checkpoint logic, and adaptive controller all append to
    it.  ``enabled`` gates every mutating entry point so a disabled
    recorder costs one attribute check per call site.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self.enabled = True
        self.events: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self.seq = 0
        self.metadata: Dict[str, object] = {}
        self.site_totals: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, event: str, **fields: object) -> None:
        """Append one event to the ring (drops the oldest when full)."""
        if not self.enabled:
            return
        fields["event"] = event
        fields["seq"] = self.seq
        self.seq += 1
        self.events.append(fields)

    def set_metadata(self, **fields: object) -> None:
        """Merge run-identifying fields into the dump's meta header."""
        if not self.enabled:
            return
        self.metadata.update(fields)

    def note_site_accesses(
        self, written: Dict[str, int], read_live_in: Dict[str, int]
    ) -> None:
        """Fold one epoch's per-site byte counts into the running totals."""
        if not self.enabled:
            return
        for site, count in written.items():
            entry = self.site_totals.setdefault(
                site, {"written_bytes": 0, "read_live_in_bytes": 0, "epochs": 0}
            )
            entry["written_bytes"] += count
        for site, count in read_live_in.items():
            entry = self.site_totals.setdefault(
                site, {"written_bytes": 0, "read_live_in_bytes": 0, "epochs": 0}
            )
            entry["read_live_in_bytes"] += count
        for site in set(written) | set(read_live_in):
            self.site_totals[site]["epochs"] += 1

    @property
    def dropped(self) -> int:
        """Events evicted from the ring since the run started."""
        return max(0, self.seq - len(self.events))

    # ------------------------------------------------------------------
    # snapshot / dump
    # ------------------------------------------------------------------
    def snapshot(
        self,
        heap_map: Optional[List[Dict[str, object]]] = None,
        site_heaps: Optional[Dict[str, object]] = None,
        crash: bool = False,
    ) -> Dict[str, object]:
        """Materialise the recorder state as one JSON-able dict."""
        meta: Dict[str, object] = {
            "flight_format": FLIGHT_FORMAT,
            "crash": bool(crash),
            "events_recorded": self.seq,
            "events_kept": len(self.events),
            "dropped": self.dropped,
        }
        meta.update(self.metadata)
        verdicts = {site: str(kind) for site, kind in (site_heaps or {}).items()}
        return {
            "meta": meta,
            "heap_map": heap_map or [],
            "verdicts": verdicts,
            "site_summary": {s: dict(v) for s, v in sorted(self.site_totals.items())},
            "events": [dict(ev) for ev in self.events],
        }


def dump_lines(snapshot: Dict[str, object]) -> Iterable[str]:
    """Yield the JSONL lines of a flight dump for a snapshot dict."""
    yield json.dumps({"kind": "meta", **snapshot["meta"]}, sort_keys=True, default=str)
    yield json.dumps(
        {"kind": "heap_map", "objects": snapshot["heap_map"]}, sort_keys=True
    )
    yield json.dumps(
        {"kind": "verdicts", "site_heaps": snapshot["verdicts"]}, sort_keys=True
    )
    yield json.dumps(
        {"kind": "site_summary", "sites": snapshot["site_summary"]}, sort_keys=True
    )
    for ev in snapshot["events"]:
        yield json.dumps({"kind": "event", "data": ev}, sort_keys=True, default=str)


def write_dump(snapshot: Dict[str, object], path) -> Path:
    """Write a snapshot as a JSONL flight dump at ``path`` (dirs created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for line in dump_lines(snapshot):
            fh.write(line + "\n")
    return path
