"""Self-contained HTML run report (no external assets).

Renders one flight snapshot plus its diagnoses as a single HTML string:
logical-heap address-space map, epoch outcome strip, conflict table, and
controller decision log.  Colors follow the repo's fixed visualization
palette (light/dark via CSS custom properties, status colors reserved
for outcomes and always paired with a glyph + label, never color alone).
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional

from .explain import Diagnosis

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --series-1: #2a78d6;
  --status-good: #0ca30c; --status-critical: #d03b3b; --status-serious: #ec835a;
  --border: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --series-1: #3987e5;
    --border: rgba(255,255,255,0.10);
  }
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --surface-1: #1a1a19; --page: #0d0d0d;
  --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
  --grid: #2c2c2a; --axis: #383835;
  --series-1: #3987e5;
  --border: rgba(255,255,255,0.10);
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink-1);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif; font-size: 14px;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: var(--ink-2); margin: 0 0 16px; }
section.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin-bottom: 16px;
}
table { border-collapse: collapse; width: 100%; }
th, td {
  text-align: left; padding: 5px 10px 5px 0; border-bottom: 1px solid var(--grid);
  vertical-align: top;
}
th { color: var(--ink-2); font-weight: 600; }
td.num { font-variant-numeric: tabular-nums; }
.muted { color: var(--ink-muted); }
.mono { font-family: ui-monospace, SFMono-Regular, Menlo, monospace; font-size: 12px; }
.strip { display: flex; flex-wrap: wrap; gap: 2px; }
.cell {
  width: 16px; height: 20px; border-radius: 3px; color: #ffffff;
  display: flex; align-items: center; justify-content: center;
  font-size: 10px; line-height: 1;
}
.cell.commit { background: var(--status-good); }
.cell.squash { background: var(--status-critical); }
.cell.sequential { background: var(--axis); color: var(--ink-1); }
.legend { display: flex; gap: 16px; margin-top: 8px; color: var(--ink-2); font-size: 12px; }
.legend .cell { display: inline-flex; margin-right: 4px; }
.legend span.item { display: flex; align-items: center; }
.heaprow { display: flex; align-items: center; margin: 6px 0; }
.heaplabel { width: 110px; flex: none; color: var(--ink-2); }
.track {
  position: relative; flex: 1; height: 18px; background: var(--page);
  border: 1px solid var(--grid); border-radius: 4px; overflow: hidden;
}
.obj {
  position: absolute; top: 2px; bottom: 2px; border-radius: 3px;
  background: var(--series-1); min-width: 4px;
}
.objlist { margin: 0 0 4px 110px; color: var(--ink-muted); font-size: 12px; }
.empty { color: var(--ink-muted); font-style: italic; }
"""


def _esc(value: object) -> str:
    """HTML-escape any value's string form."""
    return html.escape(str(value))


def _meta_section(meta: Dict[str, object]) -> str:
    rows = []
    for key in sorted(meta):
        rows.append(
            f"<tr><th>{_esc(key)}</th><td class=mono>{_esc(meta[key])}</td></tr>"
        )
    return (
        "<section class=card><h2>Run metadata</h2><table>"
        + "".join(rows)
        + "</table></section>"
    )


def _epoch_strip(events: List[Dict[str, object]]) -> str:
    epochs = [ev for ev in events if ev.get("event") == "epoch"]
    if not epochs:
        return (
            "<section class=card><h2>Epoch outcomes</h2>"
            "<p class=empty>no epochs recorded</p></section>"
        )
    shown = epochs[-200:]
    note = (
        f"<p class=muted>showing last {len(shown)} of {len(epochs)} epochs</p>"
        if len(shown) < len(epochs)
        else ""
    )
    glyph = {"commit": "✓", "squash": "✕", "sequential": "→"}
    cells = []
    for ev in shown:
        outcome = str(ev.get("outcome", "commit"))
        tip = f"{outcome} [{ev.get('epoch_start')}, {ev.get('epoch_end')})"
        if ev.get("misspec_iteration") is not None:
            tip += f" misspec at i={ev.get('misspec_iteration')}"
        cells.append(
            f'<span class="cell {_esc(outcome)}" title="{_esc(tip)}">'
            f"{glyph.get(outcome, '?')}</span>"
        )
    legend = (
        '<div class=legend>'
        '<span class=item><span class="cell commit">✓</span> committed</span>'
        '<span class=item><span class="cell squash">✕</span> squashed</span>'
        '<span class=item><span class="cell sequential">→</span> sequential span</span>'
        "</div>"
    )
    return (
        "<section class=card><h2>Epoch outcomes</h2>"
        + note
        + f'<div class=strip>{"".join(cells)}</div>'
        + legend
        + "</section>"
    )


def _heap_map(heap_map: List[Dict[str, object]]) -> str:
    if not heap_map:
        return (
            "<section class=card><h2>Logical heap address space</h2>"
            "<p class=empty>no live objects recorded</p></section>"
        )
    by_heap: Dict[str, List[Dict[str, object]]] = {}
    for obj in heap_map:
        by_heap.setdefault(str(obj.get("heap", "untagged")), []).append(obj)
    rows = []
    for heap in sorted(by_heap):
        objs = by_heap[heap]
        bases = [int(str(o["base"]), 16) for o in objs]
        ends = [b + int(o.get("size", 0) or 0) for b, o in zip(bases, objs)]
        lo, hi = min(bases), max(ends)
        extent = max(1, hi - lo)
        bars = []
        for base, obj in zip(bases, objs):
            left = (base - lo) / extent * 100.0
            width = max(0.6, int(obj.get("size", 0) or 0) / extent * 100.0)
            tip = (
                f"{obj.get('name')} @ {obj.get('base')} "
                f"({obj.get('size')} B, site {obj.get('site') or '-'})"
            )
            bars.append(
                f'<span class=obj style="left:{left:.2f}%;width:{width:.2f}%"'
                f' title="{_esc(tip)}"></span>'
            )
        rows.append(
            f"<div class=heaprow><span class=heaplabel>{_esc(heap)}</span>"
            f'<div class=track>{"".join(bars)}</div></div>'
        )
        caption = ", ".join(
            f"{o.get('name')}@{o.get('base')} ({o.get('size')} B)" for o in objs[:8]
        )
        if len(objs) > 8:
            caption += f", … +{len(objs) - 8} more"
        rows.append(f"<div class=objlist>{_esc(caption)}</div>")
    return (
        "<section class=card><h2>Logical heap address space</h2>"
        "<p class=muted>one track per heap kind (address bits 44–46); "
        "bars are live objects, positioned within the heap's occupied extent</p>"
        + "".join(rows)
        + "</section>"
    )


def _conflict_table(diagnoses: List[Diagnosis]) -> str:
    if not diagnoses:
        return (
            "<section class=card><h2>Conflicts</h2>"
            "<p class=empty>no misspeculations — clean run</p></section>"
        )
    rows = []
    for n, d in enumerate(diagnoses, start=1):
        kind = _esc(d.kind) + (" <span class=muted>(injected)</span>" if d.injected else "")
        where = _esc(d.object_name or "?")
        if d.offset is not None:
            where += f"+{d.offset}"
        pair = ""
        if d.writer_iteration is not None or d.reader_iteration is not None:
            pair = (
                f"{d.writer_iteration if d.writer_iteration is not None else '?'}"
                f" → {d.reader_iteration if d.reader_iteration is not None else '?'}"
            )
        rows.append(
            f"<tr><td class=num>{n}</td><td>{kind}</td><td class=num>{d.iteration}</td>"
            f"<td class=mono>{_esc(d.site or '-')}</td><td class=mono>{where}</td>"
            f"<td>{_esc(d.heap or '-')}"
            + (f" <span class=muted>(0b{d.heap_tag:03b})</span>" if d.heap_tag is not None else "")
            + f"</td><td>{_esc(d.predicted_class or '-')} → {_esc(d.observed_class or '-')}</td>"
            f"<td class=num>{pair or '-'}</td><td>{_esc(d.transition or d.detail)}</td></tr>"
        )
    return (
        "<section class=card><h2>Conflicts</h2><table>"
        "<tr><th>#</th><th>kind</th><th>iter</th><th>site</th><th>object</th>"
        "<th>heap (tag)</th><th>predicted → observed</th>"
        "<th>write → read</th><th>shadow transition</th></tr>"
        + "".join(rows)
        + "</table></section>"
    )


def _decision_log(events: List[Dict[str, object]]) -> str:
    decisions = [ev for ev in events if ev.get("event") == "decision"]
    if not decisions:
        return (
            "<section class=card><h2>Controller decisions</h2>"
            "<p class=empty>no adaptive controller decisions recorded</p></section>"
        )
    rows = []
    for ev in decisions:
        extra = {
            k: v
            for k, v in ev.items()
            if k not in ("event", "seq", "action") and v is not None
        }
        detail = ", ".join(f"{k}={v}" for k, v in sorted(extra.items()))
        rows.append(
            f"<tr><td class=num>{_esc(ev.get('seq'))}</td>"
            f"<td>{_esc(ev.get('action'))}</td>"
            f"<td class=mono>{_esc(detail)}</td></tr>"
        )
    return (
        "<section class=card><h2>Controller decisions</h2><table>"
        "<tr><th>seq</th><th>action</th><th>detail</th></tr>"
        + "".join(rows)
        + "</table></section>"
    )


def _site_summary(site_summary: Dict[str, Dict[str, int]]) -> str:
    if not site_summary:
        return ""
    rows = []
    for site in sorted(site_summary):
        s = site_summary[site]
        rows.append(
            f"<tr><td class=mono>{_esc(site)}</td>"
            f"<td class=num>{s.get('written_bytes', 0)}</td>"
            f"<td class=num>{s.get('read_live_in_bytes', 0)}</td>"
            f"<td class=num>{s.get('epochs', 0)}</td></tr>"
        )
    return (
        "<section class=card><h2>Per-site access summary</h2><table>"
        "<tr><th>site</th><th>bytes written</th><th>live-in bytes read</th>"
        "<th>epochs touched</th></tr>"
        + "".join(rows)
        + "</table></section>"
    )


def render_html(
    snapshot: Dict[str, object],
    diagnoses: List[Diagnosis],
    title: Optional[str] = None,
) -> str:
    """Render a full, self-contained HTML report for one run."""
    meta = snapshot.get("meta", {}) or {}
    events = snapshot.get("events", []) or []
    workload = meta.get("workload") or meta.get("module") or "run"
    page_title = title or f"repro run report · {workload}"
    misspecs = len(diagnoses)
    status = (
        f"{misspecs} misspeculation(s) diagnosed" if misspecs else "clean run"
    )
    sub = (
        f"backend {meta.get('backend', '?')} · "
        f"{meta.get('events_recorded', len(events))} events recorded · {status}"
    )
    body = (
        f"<h1>{_esc(page_title)}</h1><p class=sub>{_esc(sub)}</p>"
        + _epoch_strip(events)
        + _heap_map(snapshot.get("heap_map", []) or [])
        + _conflict_table(diagnoses)
        + _decision_log(events)
        + _site_summary(snapshot.get("site_summary", {}) or {})
        + _meta_section(meta)
    )
    return (
        "<!DOCTYPE html><html lang=en><head><meta charset=utf-8>"
        f"<title>{_esc(page_title)}</title>"
        '<meta name=viewport content="width=device-width, initial-scale=1">'
        f"<style>{_CSS}</style></head><body>{body}</body></html>"
    )
