"""Root-cause engine: turn a flight dump into per-misspec diagnoses.

Works purely on the snapshot dict produced by
:meth:`repro.forensics.recorder.FlightRecorder.snapshot` (or re-loaded
from a JSONL dump via :func:`load_dump`), so a diagnosis can be computed
live at the end of a run or offline from a dump file.  Every field is
derived from backend-independent data (conflict context, classifier
verdicts, heap map), which is what makes simulated/process diagnoses
bit-identical — the parity tests rely on that.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional

from .recorder import heap_name

#: Version stamp for ``explain --json`` output (validated by repro.obs.schema).
EXPLAIN_FORMAT = 1

_EXPECTED_HEAP_RE = re.compile(r"is not in heap (\w+)")


@dataclass
class Diagnosis:
    """Structured root cause for one misspeculation.

    All fields are plain JSON types; ``address`` is a hex string and
    ``heap_tag`` the raw 3-bit tag from address bits 44-46.
    """

    kind: str
    iteration: int
    injected: bool
    site: Optional[str]
    object_name: Optional[str]
    heap: Optional[str]
    heap_tag: Optional[int]
    predicted_class: Optional[str]
    observed_class: Optional[str]
    offset: Optional[int]
    address: Optional[str]
    writer_iteration: Optional[int]
    reader_iteration: Optional[int]
    transition: Optional[str]
    detail: str

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON output."""
        return asdict(self)


def transition_of(kind: str, detail: str, ctx: Dict[str, object]) -> Optional[str]:
    """Render the shadow-code transition (e.g. ``old-write@i=17 read at i=21``)."""
    if not ctx:
        return None
    writer = ctx.get("writer_iteration")
    reader = ctx.get("reader_iteration")
    writer_wid = ctx.get("writer_wid")
    reader_wid = ctx.get("reader_wid")
    offset = ctx.get("offset")
    if ctx.get("source") == "injected":
        return f"injected conflict at private+{offset}"
    if writer_wid is not None and reader_wid is not None:
        who = f"worker {writer_wid} wrote"
        if writer is not None:
            who += f"@i={writer}"
        return f"{who}, worker {reader_wid} read live-in"
    if writer is not None and reader is not None:
        return f"old-write@i={writer} read at i={reader}"
    if writer is not None:
        return f"write@i={writer} overwrote read-live-in byte"
    if reader is not None:
        if "before the last checkpoint" in detail:
            return f"pre-checkpoint old-write read at i={reader}"
        return f"live-in read at i={reader}"
    if "earlier checkpoint epoch" in detail:
        return "live-in read of byte defined in an earlier checkpoint epoch"
    return None


def _observed_class(kind: str, detail: str, heap: Optional[str], predicted: Optional[str]) -> Optional[str]:
    """What the runtime actually observed, versus the classifier's bet."""
    if kind == "privacy":
        return "shared (cross-iteration flow)"
    if kind == "separation":
        return heap
    if kind == "lifetime":
        return "outlives iteration"
    if kind == "value":
        return "unpredictable value"
    if kind == "injected":
        return f"{predicted} (injected)" if predicted else "injected"
    return None


def diagnose_event(
    event: Dict[str, object], verdicts: Dict[str, str]
) -> Diagnosis:
    """Build a :class:`Diagnosis` from one ``misspec`` recorder event."""
    ctx = event.get("context") or {}
    kind = str(event.get("kind", ""))
    detail = str(event.get("detail", ""))
    site = ctx.get("site")
    heap_tag = ctx.get("heap_tag")
    heap = heap_name(heap_tag) if heap_tag is not None else None
    predicted = verdicts.get(site) if site else None
    if kind == "separation":
        m = _EXPECTED_HEAP_RE.search(detail)
        if m:
            predicted = m.group(1)
    if predicted is None and heap is not None:
        predicted = heap
    address = ctx.get("address")
    return Diagnosis(
        kind=kind,
        iteration=int(event.get("iteration", -1)),
        injected=bool(event.get("injected", False)),
        site=site,
        object_name=ctx.get("object"),
        heap=heap,
        heap_tag=heap_tag,
        predicted_class=predicted,
        observed_class=_observed_class(kind, detail, heap, predicted),
        offset=ctx.get("offset"),
        address=f"0x{address:x}" if isinstance(address, int) else None,
        writer_iteration=ctx.get("writer_iteration"),
        reader_iteration=ctx.get("reader_iteration"),
        transition=transition_of(kind, detail, ctx),
        detail=detail,
    )


def explain_snapshot(snapshot: Dict[str, object]) -> List[Diagnosis]:
    """Diagnose every misspeculation event in a flight snapshot, in order."""
    verdicts = snapshot.get("verdicts") or {}
    diagnoses = []
    for event in snapshot.get("events", []):
        if event.get("event") == "misspec":
            diagnoses.append(diagnose_event(event, verdicts))
    return diagnoses


def summarize_context(kind: str, detail: str, ctx: Optional[Dict[str, object]]) -> str:
    """One-line diagnosis string for controller strikes/demotions."""
    if not ctx:
        return f"{kind}: {detail}"
    where = ctx.get("object") or "?"
    offset = ctx.get("offset")
    if offset is not None:
        where += f"+{offset}"
    tag = ctx.get("heap_tag")
    heap = heap_name(tag) if tag is not None else "?"
    transition = transition_of(kind, detail, ctx) or detail
    site = ctx.get("site") or "?"
    return f"{kind} at {where} [site {site}, heap {heap}]: {transition}"


def to_json(snapshot: Dict[str, object], diagnoses: List[Diagnosis]) -> Dict[str, object]:
    """Machine-readable ``explain`` payload (validated by repro.obs.schema)."""
    return {
        "explain_format": EXPLAIN_FORMAT,
        "meta": snapshot.get("meta", {}),
        "diagnoses": [d.to_dict() for d in diagnoses],
    }


def load_dump(path) -> Dict[str, object]:
    """Re-load a JSONL flight dump into a snapshot dict.

    Raises ``ValueError`` (with a line number) on malformed input.
    """
    snapshot: Dict[str, object] = {
        "meta": {},
        "heap_map": [],
        "verdicts": {},
        "site_summary": {},
        "events": [],
    }
    saw_meta = False
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
        if not isinstance(rec, dict) or "kind" not in rec:
            raise ValueError(f"{path}:{lineno}: expected an object with a 'kind' field")
        kind = rec["kind"]
        if kind == "meta":
            meta = dict(rec)
            meta.pop("kind")
            snapshot["meta"] = meta
            saw_meta = True
        elif kind == "heap_map":
            snapshot["heap_map"] = rec.get("objects", [])
        elif kind == "verdicts":
            snapshot["verdicts"] = rec.get("site_heaps", {})
        elif kind == "site_summary":
            snapshot["site_summary"] = rec.get("sites", {})
        elif kind == "event":
            data = rec.get("data")
            if not isinstance(data, dict):
                raise ValueError(f"{path}:{lineno}: event record missing 'data' object")
            snapshot["events"].append(data)
        else:
            raise ValueError(f"{path}:{lineno}: unknown record kind {kind!r}")
    if not saw_meta:
        raise ValueError(f"{path}: flight dump has no meta record")
    return snapshot


def render_text(
    snapshot: Dict[str, object],
    diagnoses: List[Diagnosis],
    dump_path: Optional[str] = None,
) -> str:
    """Human-readable ``explain`` output."""
    meta = snapshot.get("meta", {})
    lines = []
    workload = meta.get("workload") or meta.get("module") or "?"
    backend = meta.get("backend", "?")
    lines.append(
        f"workload {workload} · backend {backend} · "
        f"{meta.get('events_recorded', len(snapshot.get('events', [])))} events recorded"
        + (f" ({meta.get('dropped')} dropped)" if meta.get("dropped") else "")
    )
    if dump_path:
        lines.append(f"flight dump: {dump_path}")
    if not diagnoses:
        lines.append("no misspeculations recorded; nothing to explain.")
        return "\n".join(lines)
    lines.append(f"{len(diagnoses)} misspeculation(s) diagnosed:")
    for n, d in enumerate(diagnoses, start=1):
        lines.append(f"[{n}] {d.kind} at iteration {d.iteration}"
                     + (" (injected)" if d.injected else ""))
        if d.site is not None:
            lines.append(f"    site:      {d.site}")
        if d.object_name is not None:
            where = d.object_name
            if d.offset is not None:
                where += f"+{d.offset}"
            if d.address is not None:
                where += f" ({d.address})"
            lines.append(f"    object:    {where}")
        if d.heap is not None:
            lines.append(f"    heap:      {d.heap} (tag 0b{d.heap_tag:03b})")
        if d.predicted_class is not None or d.observed_class is not None:
            lines.append(
                f"    predicted: {d.predicted_class or '?'} · observed: {d.observed_class or '?'}"
            )
        if d.transition is not None:
            lines.append(f"    conflict:  {d.transition}")
        lines.append(f"    detail:    {d.detail}")
    return "\n".join(lines)
