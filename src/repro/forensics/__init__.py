"""Misspeculation forensics: flight recorder, explain engine, HTML reports.

The package answers "*why* did that epoch squash?" after the fact:

- :mod:`repro.forensics.recorder` — a bounded in-memory flight recorder
  fed by :class:`repro.runtime.system.RuntimeSystem`, both DOALL
  backends, and the adaptive controller; dumped as JSONL only when a
  misspeculation or crash occurs.
- :mod:`repro.forensics.explain` — replays a dump (or live snapshot)
  against the classifier verdicts and produces one structured
  :class:`~repro.forensics.explain.Diagnosis` per misspeculation.
- :mod:`repro.forensics.report` — renders a self-contained HTML run
  report (heap map, epoch strip, conflict table, decision log).
"""

from .recorder import FLIGHT_DIR_ENV, FLIGHT_FORMAT, FlightRecorder, write_dump
from .explain import Diagnosis, explain_snapshot, load_dump, render_text, summarize_context
from .report import render_html

__all__ = [
    "FLIGHT_DIR_ENV",
    "FLIGHT_FORMAT",
    "FlightRecorder",
    "write_dump",
    "Diagnosis",
    "explain_snapshot",
    "load_dump",
    "render_text",
    "summarize_context",
    "render_html",
]
