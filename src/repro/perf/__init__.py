"""Performance micro-benchmarks (``python -m repro perf``)."""

from .harness import (
    append_trajectory,
    measure_interp,
    measure_pipeline,
    run_bench,
)

__all__ = [
    "append_trajectory",
    "measure_interp",
    "measure_pipeline",
    "run_bench",
]
