"""Micro-benchmark harness for the interpreter and pipeline.

Two measurements, both repeated ``repeats`` times with
:func:`time.perf_counter` and reported as means:

* **interp** — instructions/second executing a workload to completion on
  the reference ``step()`` path vs the compiled fast path, with a
  built-in differential check (identical guest output, steps, and
  simulated cycles — a disagreement is a harness failure, not a number).
* **pipeline** — end-to-end ``prepare()`` latency cold (empty profile
  cache) vs warm (second invocation against the same cache).
* **trace** — interpreter throughput with the observability layer off vs
  on (events recorded), best-of timings.  The tracing-off number also
  backs the hard gate that the instrumented build costs <= 2% relative
  to the fast-path measurement above: the disabled path must stay a
  single attribute check.
* **flight** — clean-run executor wall time with the misspeculation
  flight recorder on vs off, best-of timings, gated at <= 2% overhead
  (ISSUE 5): recording must never cost a clean run noticeable time.
* **service** — requests/second through the ``repro serve`` job API:
  cold first-submission vs warm same-fingerprint vs cache-hit
  resubmission, over real HTTP against an in-process server; gated
  ``warm_rps >= cold_rps`` (the fingerprint-batched warm path must
  amortize ``prepare()``).

Results are appended to ``BENCH_interp.json`` as a trajectory: one entry
per run, so future PRs regress against the history rather than a single
sample.  Run via ``python -m repro perf`` (``--quick`` for the CI smoke
gate).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path
from statistics import mean
from typing import Dict, List, Optional, Sequence

from ..frontend.lower import compile_minic
from ..interp.interpreter import Interpreter
from ..workloads import ALL_WORKLOADS, BY_NAME, Workload

DEFAULT_OUT = "BENCH_interp.json"


def _run_once(module, entry: str, args: Sequence[object],
              compiled: bool) -> Dict[str, object]:
    interp = Interpreter(module, compiled=compiled)
    t0 = time.perf_counter()
    rv = interp.run(entry, tuple(args))
    elapsed = time.perf_counter() - t0
    return {
        "elapsed": elapsed,
        "steps": interp.steps,
        "cycles": interp.cycles,
        "output": interp.output,
        "return_value": rv,
    }


def measure_interp(workload: Workload, args: Sequence[object],
                   repeats: int = 3) -> Dict[str, object]:
    """Instructions/second on both interpreter paths for one workload.

    Raises AssertionError if the two paths disagree on guest output,
    step count, or simulated cycles — the numbers are only meaningful
    for observationally identical executions.
    """
    module = compile_minic(workload.source, workload.name)
    step_runs = [_run_once(module, "main", args, compiled=False)
                 for _ in range(repeats)]
    fast_runs = [_run_once(module, "main", args, compiled=True)
                 for _ in range(repeats)]
    ref, fast = step_runs[0], fast_runs[0]
    assert ref["output"] == fast["output"], (
        f"{workload.name}: guest output diverged between paths")
    assert ref["steps"] == fast["steps"], (
        f"{workload.name}: step counts diverged "
        f"({ref['steps']} vs {fast['steps']})")
    assert ref["cycles"] == fast["cycles"], (
        f"{workload.name}: cycle counts diverged "
        f"({ref['cycles']} vs {fast['cycles']})")
    steps = ref["steps"]
    step_ips = mean(steps / r["elapsed"] for r in step_runs)
    fast_ips = mean(steps / r["elapsed"] for r in fast_runs)
    return {
        "workload": workload.name,
        "args": list(args),
        "instructions": steps,
        "cycles": ref["cycles"],
        "repeats": repeats,
        "step_ips": round(step_ips),
        "fast_ips": round(fast_ips),
        "speedup": round(fast_ips / step_ips, 2),
    }


#: Hard budget for the observability layer when tracing is disabled,
#: as a fraction of fast-path throughput (ISSUE 2 acceptance).
TRACE_OFF_BUDGET = 0.02


def measure_trace_overhead(workload: Workload, args: Sequence[object],
                           repeats: int = 3,
                           baseline_ips: Optional[float] = None
                           ) -> Dict[str, object]:
    """Fast-path instructions/second with tracing disabled vs enabled.

    Best-of timings (min elapsed over ``repeats``) to suppress scheduler
    noise; the tracer is reset between enabled runs so event buffers
    don't grow across repeats.
    """
    from ..obs.metrics import METRICS
    from ..obs.trace import TRACER

    module = compile_minic(workload.source, workload.name)

    was_enabled = TRACER.enabled
    TRACER.disable()
    off_runs = [_run_once(module, "main", args, compiled=True)
                for _ in range(repeats)]
    on_runs = []
    try:
        for _ in range(repeats):
            TRACER.enable()
            on_runs.append(_run_once(module, "main", args, compiled=True))
            TRACER.disable()
    finally:
        TRACER.enabled = was_enabled
        METRICS.reset()
    steps = off_runs[0]["steps"]
    off_ips = steps / min(r["elapsed"] for r in off_runs)
    on_ips = steps / min(r["elapsed"] for r in on_runs)
    result = {
        "workload": workload.name,
        "args": list(args),
        "instructions": steps,
        "repeats": repeats,
        "tracing_off_ips": round(off_ips),
        "tracing_on_ips": round(on_ips),
        "tracing_on_overhead_pct": round(100 * (1 - on_ips / off_ips), 2),
    }
    if baseline_ips:
        result["tracing_off_overhead_pct"] = round(
            100 * (1 - off_ips / baseline_ips), 2)
    return result


#: Hard budget for the flight recorder on clean runs, as a fraction of
#: recorder-off execution wall time (ISSUE 5 acceptance).
FLIGHT_BUDGET = 0.02


def measure_flight_overhead(workload: Workload, args: Sequence[object],
                            repeats: int = 3,
                            workers: int = 4) -> Dict[str, object]:
    """Clean-run executor wall time with the flight recorder on vs off.

    Prepares the workload once (profile cache allowed — only execution
    is timed), then times ``PreparedProgram.execute`` best-of
    ``repeats``, *interleaving* off/on pairs: timing the two modes in
    separate batches lets host-load drift between the batches masquerade
    as recorder overhead, which flakes the 2% gate.  No dump directory
    is configured, so the recorder cost is purely the in-memory ring
    buffer and the per-checkpoint site-access accounting.
    """
    from ..bench.pipeline import prepare

    program = prepare(workload.source, workload.name, args=workload.train,
                      ref_args=args)
    repeats = max(5, repeats)

    def timed(flight: bool) -> float:
        t0 = time.perf_counter()
        program.execute(workers=workers, flight=flight)
        return time.perf_counter() - t0

    off = on = float("inf")
    for _ in range(repeats):
        off = min(off, timed(False))
        on = min(on, timed(True))
    return {
        "workload": workload.name,
        "args": list(args),
        "workers": workers,
        "repeats": repeats,
        "recorder_off_s": round(off, 4),
        "recorder_on_s": round(on, 4),
        "overhead_pct": round(100 * (on / off - 1), 2),
    }


def measure_pipeline(workload: Workload, repeats: int = 3,
                     use_ref: bool = True) -> Dict[str, object]:
    """Cold vs warm ``prepare()`` latency against a scratch profile cache."""
    from ..bench.pipeline import prepare

    ref_args = workload.ref if use_ref else workload.train
    colds: List[float] = []
    warms: List[float] = []
    saved = os.environ.get("REPRO_CACHE_DIR")
    try:
        for _ in range(repeats):
            with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
                os.environ["REPRO_CACHE_DIR"] = tmp
                t0 = time.perf_counter()
                prepare(workload.source, workload.name, args=workload.train,
                        ref_args=ref_args)
                colds.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                prepare(workload.source, workload.name, args=workload.train,
                        ref_args=ref_args)
                warms.append(time.perf_counter() - t0)
    finally:
        if saved is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved
    cold, warm = mean(colds), mean(warms)
    return {
        "workload": workload.name,
        "repeats": repeats,
        "cold_s": round(cold, 4),
        "warm_s": round(warm, 4),
        "warm_speedup": round(cold / warm, 2) if warm else float("inf"),
    }


def measure_wallclock_scaling(workload: Workload, args: Sequence[object],
                              worker_counts: Sequence[int] = (1, 2, 4),
                              repeats: int = 2,
                              backend: str = "process",
                              pool_workers: Optional[int] = None
                              ) -> Dict[str, object]:
    """Real wall-clock speedup curve for a real (forking) backend.

    Prepares the workload once (profile cache allowed — only execution
    is timed), then times ``PreparedProgram.execute`` per worker count,
    best-of ``repeats`` to suppress scheduler noise.  Speedups are
    relative to the same backend at 1 worker, so the curve isolates
    scaling from the backend's fixed fork/pickle overhead.  Unlike the
    simulated-cycle numbers (deterministic, Table 3), these are
    measured on the host and vary run to run — see EXPERIMENTS.md for
    the methodology.
    """
    from ..bench.pipeline import prepare

    program = prepare(workload.source, workload.name, args=workload.train,
                      ref_args=args)
    extra = {} if pool_workers is None else {"pool_workers": pool_workers}
    points: List[Dict[str, object]] = []
    base_wall: Optional[float] = None
    for count in worker_counts:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = program.execute(workers=count, backend=backend, **extra)
            best = min(best, time.perf_counter() - t0)
        assert result.output == program.sequential.output, (
            f"{workload.name}: output diverged at {count} worker(s)")
        if base_wall is None:
            base_wall = best
        points.append({
            "workers": count,
            "wall_s": round(best, 4),
            "speedup_vs_1w": round(base_wall / best, 2),
            "sim_speedup": round(program.speedup(result), 2),
        })
    return {
        "workload": workload.name,
        "args": list(args),
        "backend": backend,
        "repeats": repeats,
        "points": points,
    }


def measure_pool_vs_fork(workload: Workload, args: Sequence[object],
                         workers: int = 4, repeats: int = 3,
                         checkpoint_period: int = 4) -> Dict[str, object]:
    """Persistent pool vs fork-per-epoch wall time on a deliberately
    multi-epoch configuration.

    A small ``checkpoint_period`` forces many epochs per invocation,
    which is exactly where the pool backend's one-fork-per-invocation
    lifecycle should beat the process backend's fork-per-epoch (and
    pickle-per-fragment) overhead.  Both backends run the identical
    prepared program; best-of ``repeats`` wall times, outputs checked
    against the sequential baseline.  See docs/BACKENDS.md §"choosing a
    backend" and EXPERIMENTS.md for the methodology.
    """
    from ..bench.pipeline import prepare

    program = prepare(workload.source, workload.name, args=workload.train,
                      ref_args=args)

    def best_of(backend: str):
        best = float("inf")
        result = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = program.execute(workers=workers, backend=backend,
                                     checkpoint_period=checkpoint_period)
            best = min(best, time.perf_counter() - t0)
        assert result.output == program.sequential.output, (
            f"{workload.name}: {backend} output diverged")
        return best, result

    fork_wall, fork_res = best_of("process")
    pool_wall, pool_res = best_of("pool")
    assert fork_res.runtime_stats.checkpoints \
        == pool_res.runtime_stats.checkpoints
    return {
        "workload": workload.name,
        "args": list(args),
        "workers": workers,
        "repeats": repeats,
        "checkpoint_period": checkpoint_period,
        "epochs": fork_res.runtime_stats.checkpoints,
        "fork_wall_s": round(fork_wall, 4),
        "pool_wall_s": round(pool_wall, 4),
        "pool_speedup": round(fork_wall / pool_wall, 2),
    }


def measure_adaptive(workload: Workload, args: Sequence[object],
                     workers: int = 4, misspec_period: int = 3,
                     misspec_burst: int = 30) -> Dict[str, object]:
    """Adaptive vs fixed speculation policy, in deterministic simulated
    cycles (repeats are unnecessary: both runs are exactly reproducible).

    Three comparisons against a scratch policy store:

    * **storm** — with a misspeculation injected every ``misspec_period``
      iterations for the first ``misspec_burst`` iterations, total
      squashed (re-executed) iterations under the fixed policy vs the
      adaptive controller;
    * **clean** — no injection: the controller's overhead (or win, once
      AIMD grows the epoch past the fixed default) on a well-behaved run;
    * **warm** — the storm again: the second run reloads the persisted
      policy and should start from the learned epoch size.

    Every run's output is checked against the fixed-policy run, and the
    controller's decision counts are recorded for the trajectory.
    """
    from ..adapt.policy import ADAPT_DIR_ENV
    from ..bench.pipeline import prepare

    saved = os.environ.get(ADAPT_DIR_ENV)
    try:
        with tempfile.TemporaryDirectory(prefix="repro-adapt-") as tmp:
            os.environ[ADAPT_DIR_ENV] = tmp
            program = prepare(workload.source, workload.name,
                              args=workload.train, ref_args=args)
            inject = dict(misspec_period=misspec_period,
                          misspec_burst=misspec_burst)
            fixed = program.execute(workers=workers, **inject)
            adaptive = program.execute(workers=workers, adapt=True, **inject)
            warm = program.execute(workers=workers, adapt=True, **inject)
            fixed_clean = program.execute(workers=workers)
            adapt_clean = program.execute(workers=workers, adapt=True)
            for run, label in ((adaptive, "adaptive"), (warm, "warm"),
                               (adapt_clean, "adaptive-clean")):
                assert run.output == fixed.output, (
                    f"{workload.name}: {label} output diverged from fixed")

            def squashed(result) -> int:
                return sum(inv.recovered_iterations
                           for inv in result.invocations)

            clean_overhead = (adapt_clean.total_wall_cycles
                              / max(1, fixed_clean.total_wall_cycles) - 1)
            summary = adaptive.adapt or {}
            return {
                "workload": workload.name,
                "args": list(args),
                "workers": workers,
                "misspec_period": misspec_period,
                "misspec_burst": misspec_burst,
                "fixed_squashed_iterations": squashed(fixed),
                "adaptive_squashed_iterations": squashed(adaptive),
                "fixed_wall_cycles": fixed.total_wall_cycles,
                "adaptive_wall_cycles": adaptive.total_wall_cycles,
                "clean_overhead_pct": round(100 * clean_overhead, 2),
                "warm_start": bool((warm.adapt or {}).get("warm_start")),
                "converged": bool(summary.get("converged")),
                "decisions": {
                    "grows": summary.get("grows", 0),
                    "shrinks": summary.get("shrinks", 0),
                    "fallbacks": summary.get("fallbacks", 0),
                    "demotions": len(summary.get("demotions") or []),
                    "sequential_iterations":
                        summary.get("sequential_iterations", 0),
                },
                "epoch_trajectory": {
                    "initial": summary.get("initial_epoch"),
                    "min": summary.get("min_epoch"),
                    "final": summary.get("final_epoch"),
                },
            }
    finally:
        if saved is None:
            os.environ.pop(ADAPT_DIR_ENV, None)
        else:
            os.environ[ADAPT_DIR_ENV] = saved


def measure_service(workload: Workload, repeats: int = 3,
                    workers: int = 2) -> Dict[str, object]:
    """Requests/second through the ``repro serve`` job API, cold vs warm.

    Starts an in-process :class:`~repro.service.app.ServiceApp` on an
    ephemeral port against scratch profile-cache/policy directories (so
    *cold* really pays the full compile/profile/classify/transform
    pipeline), then measures three request classes over real HTTP:

    * **cold** — the first submission of a module: full ``prepare()``;
    * **warm** — same fingerprint, different execution knobs: the
      scheduler reuses the resident prepared program, so only
      ``execute()`` runs (this is the amortization the service exists
      to provide — gated ``warm_rps >= cold_rps`` in ``run_bench``);
    * **cache_hit** — an identical resubmission: answered at submit time
      from the warm result cache, no pipeline work at all.

    Train inputs throughout: the section measures service overhead and
    amortization, not guest throughput.
    """
    from ..obs.metrics import MetricsRegistry
    from ..service.app import ServiceApp
    from ..service.client import ServiceClient

    registry = MetricsRegistry()
    saved = {var: os.environ.get(var)
             for var in ("REPRO_CACHE_DIR", "REPRO_ADAPT_DIR")}
    base = {"workload": workload.name, "small": True, "workers": workers}
    try:
        with tempfile.TemporaryDirectory(prefix="repro-svc-") as tmp:
            os.environ["REPRO_CACHE_DIR"] = os.path.join(tmp, "cache")
            os.environ["REPRO_ADAPT_DIR"] = os.path.join(tmp, "adapt")
            with ServiceApp(port=0, registry=registry) as app:
                client = ServiceClient(app.url)

                def submit_and_wait(payload) -> float:
                    t0 = time.perf_counter()
                    job = client.submit(payload)
                    if job["state"] not in ("done", "failed",
                                            "misspeculated"):
                        job = client.wait(job["id"])
                    elapsed = time.perf_counter() - t0
                    assert job["state"] == "done", (
                        f"{workload.name}: service job ended "
                        f"{job['state']}: {job.get('error')}")
                    return elapsed

                cold_s = submit_and_wait(dict(base))
                warms = [submit_and_wait(dict(base, workers=workers + 1 + i))
                         for i in range(repeats)]
                cache_times = []
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    job = client.submit(dict(base))
                    cache_times.append(time.perf_counter() - t0)
                    assert job["cache_hit"], (
                        f"{workload.name}: identical resubmission was not "
                        f"a cache hit")
                cache_hits = registry.counter("service.cache_hits").value
                batches = registry.counter("service.batches").value
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value
    warm_s = mean(warms)
    cache_s = mean(cache_times)
    return {
        "workload": workload.name,
        "repeats": repeats,
        "workers": workers,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "cache_hit_s": round(cache_s, 4),
        "cold_rps": round(1.0 / cold_s, 2),
        "warm_rps": round(1.0 / warm_s, 2),
        "cache_hit_rps": round(1.0 / cache_s, 2),
        "warm_over_cold": round(cold_s / warm_s, 2),
        "cache_hits": cache_hits,
        "batches": batches,
        # Latency SLO percentiles per cache tier (seconds; cold is a
        # single sample so its p50 == p99 == cold_s).  bench-check gates
        # the p99s lower-is-better against the trajectory history.
        "cold_p50_s": round(cold_s, 4),
        "cold_p99_s": round(cold_s, 4),
        "warm_p50_s": round(_pct(warms, 50), 4),
        "warm_p99_s": round(_pct(warms, 99), 4),
        "cache_hit_p50_s": round(_pct(cache_times, 50), 6),
        "cache_hit_p99_s": round(_pct(cache_times, 99), 6),
    }


def _pct(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (exact for the harness's small sample
    counts; matches Histogram.percentile's convention)."""
    vals = sorted(values)
    if not vals:
        return 0.0
    rank = max(1, -(-len(vals) * q // 100))  # ceil without math
    return vals[int(rank) - 1]


def append_trajectory(entry: Dict[str, object],
                      path: os.PathLike = DEFAULT_OUT) -> None:
    path = Path(path)
    data: Dict[str, object] = {"benchmark": "interp", "runs": []}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            pass
        if not isinstance(data.get("runs"), list):
            data = {"benchmark": "interp", "runs": []}
    data["runs"].append(entry)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def run_bench(quick: bool = False, repeats: int = 3,
              workload_names: Optional[Sequence[str]] = None,
              out: Optional[str] = DEFAULT_OUT,
              min_speedup: Optional[float] = None,
              backend: Optional[str] = None,
              pool_workers: Optional[int] = None,
              adapt: Optional[bool] = None,
              stress: bool = False) -> int:
    """Run the benchmark; returns a process exit code.

    ``quick`` uses train inputs, one pipeline workload, and a 1.5× floor
    on the dijkstra interp speedup (the CI smoke gate).  The full run
    uses ref inputs across all workloads.

    The ``shadow`` section benchmarks Table 2 validation and the
    checkpoint merge against the per-byte reference oracle; the merge
    must clear :data:`~repro.perf.shadowbench.SHADOW_MERGE_GATE` on
    every configuration.  ``stress`` adds a large-footprint
    configuration (multi-KB operations, multi-MB merge).

    ``backend="process"`` adds a real-wall-clock section: a per-worker-
    count speedup curve of the process backend on each selected
    workload, recorded into the trajectory under ``process_backend``.

    ``backend="pool"`` adds the ``pool`` section instead: the same
    per-worker-count scaling curve on the persistent-pool backend plus a
    pool-vs-fork comparison on a forced multi-epoch configuration,
    gated — on dijkstra the pool backend must be at least as fast as
    fork-per-epoch, or the run fails.  ``pool_workers`` caps the
    resident pool size for the scaling curve (pool backend only).

    ``adapt`` (or ``REPRO_ADAPT``) adds the adaptive-vs-fixed section:
    squashed-iteration counts under an injected misspeculation storm,
    clean-run overhead, warm start, and the controller's decision
    counts, recorded under ``adaptive``.  Fails the run if adaptive mode
    squashes more than fixed mode or the clean-run overhead exceeds 2%.
    """
    from ..adapt import resolve_adapt_enabled
    from ..parallel.backend import resolve_backend_name

    backend = resolve_backend_name(backend)
    if pool_workers is not None and backend != "pool":
        print("error: --pool-workers only applies to the pool backend "
              "(pass --backend pool or REPRO_BACKEND=pool)", file=sys.stderr)
        return 2
    adapt_on = resolve_adapt_enabled(adapt)
    if quick:
        repeats = max(2, min(repeats, 2))
        if min_speedup is None:
            min_speedup = 1.5
    if workload_names:
        unknown = [n for n in workload_names if n not in BY_NAME]
        if unknown:
            print(
                "error: unknown workload(s): %s (available: %s)"
                % (", ".join(unknown), ", ".join(sorted(BY_NAME))),
                file=sys.stderr,
            )
            return 2
        workloads = [BY_NAME[n] for n in workload_names]
    else:
        workloads = [BY_NAME["dijkstra"]] if quick else list(ALL_WORKLOADS)

    interp_results = []
    for w in workloads:
        args = w.train if quick else w.ref
        res = measure_interp(w, args, repeats=repeats)
        interp_results.append(res)
        print(f"interp {w.name:14s} {res['instructions']:>12,} insts  "
              f"step {res['step_ips']:>12,}/s  fast {res['fast_ips']:>12,}/s  "
              f"{res['speedup']:.2f}x")

    pipeline_workloads = workloads[:1] if quick else workloads
    pipeline_results = []
    for w in pipeline_workloads:
        res = measure_pipeline(w, repeats=1 if quick else max(1, repeats - 1),
                               use_ref=not quick)
        pipeline_results.append(res)
        print(f"pipeline {w.name:12s} cold {res['cold_s']:.3f}s  "
              f"warm {res['warm_s']:.3f}s  {res['warm_speedup']:.1f}x")

    # Observability cost: tracing off must be within TRACE_OFF_BUDGET of
    # the fast-path number above; tracing on is recorded for the
    # trajectory (BENCH_interp.json) but not gated.
    gate_w = BY_NAME["dijkstra"] if "dijkstra" in {w.name for w in workloads} \
        else workloads[0]
    gate_interp = next(r for r in interp_results
                       if r["workload"] == gate_w.name)
    trace_res = measure_trace_overhead(
        gate_w, gate_w.train if quick else gate_w.ref, repeats=repeats,
        baseline_ips=gate_interp["fast_ips"])
    print(f"trace    {gate_w.name:12s} "
          f"off {trace_res['tracing_off_ips']:>12,}/s  "
          f"on {trace_res['tracing_on_ips']:>12,}/s  "
          f"(on-overhead {trace_res['tracing_on_overhead_pct']:.1f}%, "
          f"off vs fast {trace_res['tracing_off_overhead_pct']:+.1f}%)")

    flight_res = measure_flight_overhead(
        gate_w, gate_w.train if quick else gate_w.ref, repeats=repeats)
    print(f"flight   {gate_w.name:12s} "
          f"off {flight_res['recorder_off_s']:.3f}s  "
          f"on {flight_res['recorder_on_s']:.3f}s  "
          f"(overhead {flight_res['overhead_pct']:+.1f}%)")

    scaling_results = []
    if backend == "process":
        counts = (1, 2) if quick else (1, 2, 4)
        for w in pipeline_workloads:
            res = measure_wallclock_scaling(
                w, w.train, worker_counts=counts,
                repeats=1 if quick else 2)
            scaling_results.append(res)
            curve = "  ".join(
                f"{p['workers']}w {p['wall_s']:.3f}s "
                f"({p['speedup_vs_1w']:.2f}x)" for p in res["points"])
            print(f"process  {w.name:12s} {curve}")

    pool_results = []
    if backend == "pool":
        counts = (1, 2) if quick else (1, 2, 4)
        for w in pipeline_workloads:
            scaling = measure_wallclock_scaling(
                w, w.train, worker_counts=counts,
                repeats=1 if quick else 2, backend="pool",
                pool_workers=pool_workers)
            vs_fork = measure_pool_vs_fork(
                w, w.train, repeats=2 if quick else 3)
            pool_results.append({
                "workload": w.name,
                "scaling": scaling,
                "pool_vs_fork": vs_fork,
            })
            curve = "  ".join(
                f"{p['workers']}w {p['wall_s']:.3f}s "
                f"({p['speedup_vs_1w']:.2f}x)" for p in scaling["points"])
            print(f"pool     {w.name:12s} {curve}")
            print(f"pool-vs-fork {w.name:8s} "
                  f"{vs_fork['epochs']} epochs  "
                  f"fork {vs_fork['fork_wall_s']:.3f}s  "
                  f"pool {vs_fork['pool_wall_s']:.3f}s  "
                  f"({vs_fork['pool_speedup']:.2f}x)")

    adaptive_results = []
    if adapt_on:
        for w in pipeline_workloads:
            res = measure_adaptive(w, w.train if quick else w.ref)
            adaptive_results.append(res)
            d = res["decisions"]
            print(f"adaptive {w.name:12s} squashed "
                  f"{res['fixed_squashed_iterations']} -> "
                  f"{res['adaptive_squashed_iterations']} iters  "
                  f"clean {res['clean_overhead_pct']:+.1f}%  "
                  f"epoch {res['epoch_trajectory']['initial']}->"
                  f"{res['epoch_trajectory']['min']}->"
                  f"{res['epoch_trajectory']['final']}  "
                  f"grows={d['grows']} shrinks={d['shrinks']} "
                  f"fallbacks={d['fallbacks']} "
                  f"warm={'yes' if res['warm_start'] else 'no'} "
                  f"converged={'yes' if res['converged'] else 'no'}")

    from .shadowbench import SHADOW_MERGE_GATE, measure_shadow, shadow_configs

    shadow_results = []
    for config in shadow_configs(quick=quick, stress=stress):
        res = measure_shadow(**config)
        shadow_results.append(res)
        p1, mg = res["phase1"], res["merge"]
        print(f"shadow   {res['label']:12s} "
              f"validate {p1['ref_mbps']:>8.1f} -> {p1['vec_mbps']:>8.1f} MB/s "
              f"({p1['speedup']:.1f}x)  "
              f"merge {mg['ref_mbps']:>8.1f} -> {mg['vec_mbps']:>8.1f} MB/s "
              f"({mg['speedup']:.1f}x)")

    service_res = measure_service(gate_w, repeats=2 if quick else repeats)
    print(f"service  {gate_w.name:12s} "
          f"cold {service_res['cold_s']:.3f}s "
          f"({service_res['cold_rps']:.1f} req/s)  "
          f"warm {service_res['warm_s']:.3f}s "
          f"({service_res['warm_rps']:.1f} req/s)  "
          f"cache-hit {service_res['cache_hit_s'] * 1000:.1f}ms "
          f"({service_res['cache_hit_rps']:,.0f} req/s)")
    print(f"service  {gate_w.name:12s} "
          f"p50/p99  cold {service_res['cold_p50_s']:.3f}/"
          f"{service_res['cold_p99_s']:.3f}s  "
          f"warm {service_res['warm_p50_s']:.3f}/"
          f"{service_res['warm_p99_s']:.3f}s  "
          f"cache-hit {service_res['cache_hit_p50_s'] * 1000:.1f}/"
          f"{service_res['cache_hit_p99_s'] * 1000:.1f}ms")

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "quick": quick,
        "interp": interp_results,
        "pipeline": pipeline_results,
        "trace": trace_res,
        "flight": flight_res,
        "shadow": shadow_results,
        "service": service_res,
    }
    if scaling_results:
        entry["process_backend"] = scaling_results
    if pool_results:
        entry["pool"] = pool_results
    if adaptive_results:
        entry["adaptive"] = adaptive_results
    if out:
        append_trajectory(entry, out)
        print(f"appended to {out}")

    for res in adaptive_results:
        if (res["adaptive_squashed_iterations"]
                > res["fixed_squashed_iterations"]):
            print(f"FAIL: {res['workload']}: adaptive mode squashed more "
                  f"iterations ({res['adaptive_squashed_iterations']}) than "
                  f"fixed ({res['fixed_squashed_iterations']})")
            return 1
        if res["clean_overhead_pct"] > 2.0:
            print(f"FAIL: {res['workload']}: adaptive clean-run overhead "
                  f"{res['clean_overhead_pct']:.2f}% exceeds the 2% budget")
            return 1

    for res in pool_results:
        vs = res["pool_vs_fork"]
        if res["workload"] == "dijkstra" \
                and vs["pool_wall_s"] > vs["fork_wall_s"]:
            print(f"FAIL: pool backend ({vs['pool_wall_s']:.3f}s) slower "
                  f"than fork-per-epoch ({vs['fork_wall_s']:.3f}s) on the "
                  f"multi-epoch {res['workload']} run "
                  f"({vs['epochs']} epochs)")
            return 1

    if trace_res["tracing_off_overhead_pct"] > 100 * TRACE_OFF_BUDGET:
        print(f"FAIL: tracing-disabled overhead "
              f"{trace_res['tracing_off_overhead_pct']:.2f}% exceeds the "
              f"{100 * TRACE_OFF_BUDGET:.0f}% budget")
        return 1

    for res in shadow_results:
        merge_speedup = res["merge"]["speedup"]
        if merge_speedup < SHADOW_MERGE_GATE:
            print(f"FAIL: shadow {res['label']}: checkpoint-merge speedup "
                  f"{merge_speedup:.2f}x < required "
                  f"{SHADOW_MERGE_GATE:.1f}x over the per-byte oracle")
            return 1

    if service_res["warm_rps"] < service_res["cold_rps"]:
        print(f"FAIL: service warm path ({service_res['warm_rps']:.2f} "
              f"req/s) slower than cold ({service_res['cold_rps']:.2f} "
              f"req/s) — fingerprint batching is not amortizing prepare()")
        return 1

    if flight_res["overhead_pct"] > 100 * FLIGHT_BUDGET:
        print(f"FAIL: flight-recorder overhead "
              f"{flight_res['overhead_pct']:.2f}% exceeds the "
              f"{100 * FLIGHT_BUDGET:.0f}% budget on a clean run")
        return 1

    if min_speedup is not None:
        gate = [r for r in interp_results if r["workload"] == "dijkstra"]
        gate = gate or interp_results
        worst = min(r["speedup"] for r in gate)
        if worst < min_speedup:
            print(f"FAIL: fast path {worst:.2f}x < required "
                  f"{min_speedup:.2f}x")
            return 1
        print(f"gate ok: {worst:.2f}x >= {min_speedup:.2f}x")
    return 0
