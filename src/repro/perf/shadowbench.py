"""Shadow-memory and checkpoint-merge micro-benchmarks.

Measures the two layers the vectorized shadow work (ISSUE 6) targets,
always against the per-byte reference oracle so every number is a
*relative* claim with a built-in differential check:

* **phase 1** — Table 2 validation throughput: a synthetic epoch loop
  drives ``on_write``/``on_read`` over a privatization-shaped access
  pattern (write-then-read scratch region plus a read-only live-in
  region) through both :class:`~repro.runtime.shadow.ShadowHeap` and
  :class:`~repro.runtime.shadow.ReferenceShadowHeap`, asserting the
  final metadata is bit-identical before reporting bytes/second.
* **merge** — checkpoint validate+commit throughput: packed fragments
  with interleaved per-worker write runs feed phase-two validation,
  the latest-iteration-wins merge, and the commit store, vectorized
  (:func:`~repro.runtime.merge.merge_fragments` + slice stores) vs the
  per-byte oracle (:func:`~repro.runtime.merge.merge_fragments_ref` +
  byte stores).  The committed buffers must be identical; the reported
  ``speedup`` backs the perf harness's ≥5x gate.

Both implementations are invoked directly (not via ``REPRO_SHADOW``),
so one process measures both sides under identical conditions.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple, Type

from ..runtime.fragments import EpochFragment, WRITE_VALUE
from ..runtime.merge import (
    find_phase2_violation,
    find_phase2_violation_ref,
    merge_fragments,
    merge_fragments_ref,
)
from ..runtime.shadow import ReferenceShadowHeap, ShadowHeap, TS_BASE

#: Required checkpoint-merge speedup of the vectorized path over the
#: per-byte oracle (ISSUE 6 acceptance).
SHADOW_MERGE_GATE = 5.0


def _drive_phase1(heap_cls: Type, footprint: int, op_size: int,
                  iterations: int, checkpoint_every: int
                  ) -> Tuple[float, int, bytes]:
    """One synthetic privatization epoch loop; returns (elapsed seconds,
    shadow bytes validated, final metadata bytes)."""
    heap = heap_cls(footprint)
    scratch_end = footprint - footprint // 4  # top quarter stays read-only
    write_offsets = range(0, scratch_end - op_size + 1, op_size)
    live_offsets = range(scratch_end, footprint - op_size + 1, op_size)
    touched = 0
    t0 = time.perf_counter()
    for i in range(iterations):
        rel = i % checkpoint_every
        ts = TS_BASE + rel
        for off in write_offsets:
            heap.on_write(off, op_size, ts, rel)
            touched += op_size
        for off in write_offsets:
            heap.on_read(off, op_size, ts, rel)  # same-ts fast path
            touched += op_size
        for off in live_offsets:
            heap.on_read(off, op_size, ts, rel)  # live-in promote path
            touched += op_size
        if (i + 1) % checkpoint_every == 0:
            heap.reset_after_checkpoint()
    elapsed = time.perf_counter() - t0
    return elapsed, touched, bytes(heap.meta)


def _build_fragments(workers: int, footprint: int, run_len: int,
                     epoch_iters: int) -> List[EpochFragment]:
    """Interleaved per-worker write runs over the bottom 7/8 of the
    footprint (worker w owns every w-th ``run_len`` block, iteration
    varying per block) plus disjoint live-in reads in the top 1/8, so
    phase-two validation passes and the merge sees every worker."""
    read_zone = footprint - footprint // 8
    template = (bytes(range(256)) * (run_len // 256 + 1))[:run_len]
    frags = []
    read_slice = (footprint - read_zone) // max(workers, 1)
    for w in range(workers):
        write_runs: List[Tuple[int, int, int]] = []
        kinds = bytearray()
        values = bytearray()
        stride = workers * run_len
        for start in range(w * run_len, read_zone - run_len + 1, stride):
            rel = (start // run_len) % epoch_iters
            write_runs.append((start, start + run_len, rel))
            kinds.extend(bytes(run_len))  # all WRITE_VALUE
            values.extend(template)
        read_start = read_zone + w * read_slice
        frags.append(EpochFragment(
            wid=w, epoch_start=0,
            read_live_in_runs=((read_start, read_start + read_slice),)
            if read_slice else (),
            write_runs=tuple(write_runs),
            write_kinds=bytes(kinds), write_values=bytes(values),
            epoch_written_runs=tuple((s, e) for s, e, _r in write_runs)))
    return frags


def _timed_merge_vec(frags, committed: bytearray,
                     scratch: bytearray) -> float:
    t0 = time.perf_counter()
    violation = find_phase2_violation(frags, committed)
    assert violation is None, "synthetic fragments must validate cleanly"
    outcome = merge_fragments(frags)
    base = outcome.base
    values = outcome.values
    for start, end in outcome.value_runs():
        scratch[start:end] = values[start - base:end - base]
    return time.perf_counter() - t0


def _timed_merge_ref(frags, committed: bytearray,
                     scratch: bytearray) -> float:
    t0 = time.perf_counter()
    violation = find_phase2_violation_ref(frags, committed)
    assert violation is None, "synthetic fragments must validate cleanly"
    outcome = merge_fragments_ref(frags)
    base = outcome.base
    kinds = outcome.kinds
    values = outcome.values
    for i in range(len(kinds)):  # per-byte commit, as the oracle would
        if kinds[i] == WRITE_VALUE:
            scratch[base + i] = values[i]
    return time.perf_counter() - t0


def measure_shadow(label: str = "default", *,
                   footprint: int = 64 * 1024,
                   op_size: int = 256,
                   iterations: int = 32,
                   checkpoint_every: int = 8,
                   workers: int = 4,
                   run_len: int = 64,
                   merge_footprint: int = 256 * 1024,
                   repeats: int = 2) -> Dict[str, object]:
    """Benchmark both shadow layers at one configuration; see module
    docstring.  Raises AssertionError if the implementations disagree on
    any byte of metadata or committed state."""
    vec_elapsed = ref_elapsed = float("inf")
    vec_meta = ref_meta = b""
    for _ in range(repeats):
        elapsed, touched, vec_meta = _drive_phase1(
            ShadowHeap, footprint, op_size, iterations, checkpoint_every)
        vec_elapsed = min(vec_elapsed, elapsed)
        elapsed, _touched, ref_meta = _drive_phase1(
            ReferenceShadowHeap, footprint, op_size, iterations,
            checkpoint_every)
        ref_elapsed = min(ref_elapsed, elapsed)
    assert vec_meta == ref_meta, (
        f"{label}: phase-1 metadata diverged between implementations")

    frags = _build_fragments(workers, merge_footprint, run_len,
                             checkpoint_every)
    written_bytes = sum(len(f.write_kinds) for f in frags)
    committed = bytearray(merge_footprint)
    merge_vec = merge_ref = float("inf")
    scratch_vec = scratch_ref = b""
    for _ in range(repeats):
        scratch = bytearray(merge_footprint)
        merge_vec = min(merge_vec, _timed_merge_vec(frags, committed, scratch))
        scratch_vec = bytes(scratch)
        scratch = bytearray(merge_footprint)
        merge_ref = min(merge_ref, _timed_merge_ref(frags, committed, scratch))
        scratch_ref = bytes(scratch)
    assert scratch_vec == scratch_ref, (
        f"{label}: committed bytes diverged between merge implementations")

    return {
        "label": label,
        "workers": workers,
        "repeats": repeats,
        "phase1": {
            "footprint_bytes": footprint,
            "op_size": op_size,
            "iterations": iterations,
            "checkpoint_every": checkpoint_every,
            "bytes_validated": touched,
            "ref_mbps": round(touched / ref_elapsed / 1e6, 2),
            "vec_mbps": round(touched / vec_elapsed / 1e6, 2),
            "speedup": round(ref_elapsed / vec_elapsed, 2),
        },
        "merge": {
            "footprint_bytes": merge_footprint,
            "run_len": run_len,
            "written_bytes": written_bytes,
            "ref_mbps": round(written_bytes / merge_ref / 1e6, 2),
            "vec_mbps": round(written_bytes / merge_vec / 1e6, 2),
            "speedup": round(merge_ref / merge_vec, 2),
        },
    }


def shadow_configs(quick: bool, stress: bool) -> List[Dict[str, object]]:
    """Benchmark configurations for :func:`measure_shadow`.

    The default configuration matches the evaluated workloads' scale
    (hundreds of bytes per object).  ``stress`` adds the ISSUE 6
    large-footprint configuration — multi-KB object footprints and a
    multi-MB merge — so the ``shadow`` section measures realistic
    validation volume.
    """
    configs: List[Dict[str, object]] = [dict(
        label="default",
        footprint=32 * 1024 if quick else 64 * 1024,
        op_size=256, iterations=16 if quick else 32, checkpoint_every=8,
        workers=4, run_len=64,
        merge_footprint=128 * 1024 if quick else 256 * 1024,
        repeats=2)]
    if stress:
        configs.append(dict(
            label="stress",
            footprint=512 * 1024 if quick else 1024 * 1024,
            op_size=4096, iterations=8 if quick else 16,
            checkpoint_every=4, workers=8, run_len=4096,
            merge_footprint=(2 if quick else 4) * 1024 * 1024,
            repeats=1 if quick else 2))
    return configs
