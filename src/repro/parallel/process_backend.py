"""Process-parallel DOALL backend: real concurrent worker processes.

Mirrors the paper's runtime much more literally than the simulated
backend: at each checkpoint epoch the parent **forks one OS process per
worker** (the paper forks workers once per invocation and relies on the
kernel's copy-on-write page mapping; here every fork inherits the whole
simulated address space by COW, so a per-epoch fork reproduces the same
isolation).  Each child executes its round-robin slice of the epoch on
its own private/reduction heap replicas, then pickles back over a pipe:

* one :class:`~repro.parallel.backend.IterationRecord` per executed
  iteration (cycle/step deltas, validation attribution, RuntimeStats
  counter deltas, deferred output, misspeculation terms);
* an :class:`~repro.runtime.fragments.EpochFragment` — the serialized
  shadow-memory state, run-length packed (format 2: write-interval runs
  plus kind/value payload blobs, a fraction of the per-byte pickle
  size) — iff the slice completed cleanly;
* any trace events it recorded (re-homed to a per-worker trace process
  in the Chrome export).

The parent drains all pipes concurrently (``selectors``), **replays**
the iteration records in worker order — reproducing the simulated
scheduler's earliest-misspeculation cut exactly — and feeds the
fragments to the shared :meth:`RuntimeSystem.checkpoint` commit path.
Phase-two validation, merge, reduction folding, deferred-I/O commit,
squash and sequential recovery therefore all run in the parent,
identically to the simulated backend; the parity suite asserts equality
of final memory, ``RuntimeStats`` and misspeculation counts.

A deadline (``epoch_timeout``) bounds every epoch: if a child wedges,
the parent SIGKILLs the whole worker pool and raises instead of hanging
(the CI smoke job relies on this failing fast).

Known fidelity boundary: inside an epoch that is *doomed* to fail
phase-two validation, a forked child reads freshly committed main
memory where a persistent simulated worker may read a stale COW page;
both backends squash the epoch, so committed state never diverges.
"""

from __future__ import annotations

import os
import pickle
import selectors
import signal
import struct
import sys
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..interp.errors import GuestFault, GuestTimeout, Misspeculation
from ..interp.interpreter import Frame
from ..obs.log import get_logger
from ..obs.metrics import METRICS
from ..obs.trace import TRACER
from ..runtime.fragments import EpochFragment
from ..runtime.system import WorkerState
from .backend import (
    BackendError,
    BaseDOALLExecutor,
    IterationRecord,
    WorkerEpochReport,
)
from .stats import InvocationResult

log = get_logger("process_backend")

#: Length prefix for pipe frames: one unsigned 64-bit little-endian int.
_LEN = struct.Struct("<Q")

#: Default wall-clock budget per epoch before the pool is killed.
DEFAULT_EPOCH_TIMEOUT = 300.0


@dataclass
class _ChildFailure:
    """Shipped instead of a report when a child hits an internal error."""

    wid: int
    error: str


def _write_frame(fd: int, data: bytes) -> None:
    view = memoryview(_LEN.pack(len(data)) + data)
    while view:
        n = os.write(fd, view)
        view = view[n:]


class ProcessDOALLExecutor(BaseDOALLExecutor):
    """DOALL backend running worker slices in forked OS processes."""

    backend_name = "process"

    def __init__(self, *args, epoch_timeout: float = DEFAULT_EPOCH_TIMEOUT,
                 **kwargs):
        super().__init__(*args, **kwargs)
        if not hasattr(os, "fork"):
            raise BackendError(
                "the process backend requires os.fork (POSIX); "
                "use --backend simulated on this platform")
        self.epoch_timeout = epoch_timeout

    # -- epoch execution ------------------------------------------------------

    def _execute_epoch(
        self, frame: Frame, inv: InvocationResult, epoch_start: int,
        epoch_end: int, init: int,
    ) -> Tuple[Optional[Tuple[int, Misspeculation]],
               Optional[List[EpochFragment]]]:
        reports = self._fork_epoch(frame, epoch_start, epoch_end, init)
        earliest = self._replay_reports(reports, inv)
        if earliest is not None:
            return earliest, None
        return None, [r.fragment for r in reports]

    def _absorb_telemetry(self, payloads: Dict[int, object]) -> None:
        """Merge the telemetry shipped by completed workers into the
        parent tracer and metrics registry: trace events re-homed to the
        per-worker trace process, metrics under ``worker.<wid>.*``.

        Called for every received payload — including when the epoch is
        about to fail because another worker died mid-epoch: telemetry
        that already crossed the pipe must survive the failure, so the
        Chrome export still shows the partial epoch."""
        if not TRACER.enabled:
            return
        for wid in sorted(payloads):
            report = payloads[wid]
            if not isinstance(report, WorkerEpochReport):
                continue
            if report.trace_events:
                TRACER.absorb_worker_events(report.wid, report.trace_events)
            if report.metrics:
                METRICS.merge(report.metrics, prefix=f"worker.{report.wid}.")

    def _fork_epoch(self, frame: Frame, epoch_start: int, epoch_end: int,
                    init: int) -> List[WorkerEpochReport]:
        """Fork one child per worker, run the slices concurrently, and
        collect the shipped reports (in wid order)."""
        # Buffered host output must not be duplicated into the children.
        sys.stdout.flush()
        sys.stderr.flush()
        pids: Dict[int, int] = {}   # wid -> pid
        fds: Dict[int, int] = {}    # read fd -> wid
        for worker in self.runtime.workers:
            rfd, wfd = os.pipe()
            pid = os.fork()
            if pid == 0:
                status = 1
                try:
                    os.close(rfd)
                    report = self._child_slice(worker, frame, epoch_start,
                                               epoch_end, init)
                    _write_frame(wfd, pickle.dumps(
                        report, protocol=pickle.HIGHEST_PROTOCOL))
                    status = 0
                except BaseException:
                    try:
                        _write_frame(wfd, pickle.dumps(
                            _ChildFailure(worker.wid, traceback.format_exc()),
                            protocol=pickle.HIGHEST_PROTOCOL))
                    except BaseException:
                        pass
                finally:
                    try:
                        os.close(wfd)
                    except OSError:
                        pass
                    # _exit: never run parent atexit/flush machinery in
                    # the forked interpreter image.
                    os._exit(status)
            os.close(wfd)
            pids[worker.wid] = pid
            fds[rfd] = worker.wid
        payloads: Dict[int, object] = {}
        try:
            self._drain(fds, payloads)
        except BaseException:
            self._kill_pool(pids)
            # Telemetry from workers that did report survives the
            # failure (partial-epoch forensics).
            self._absorb_telemetry(payloads)
            raise
        self._reap(pids)
        self._absorb_telemetry(payloads)
        reports: List[WorkerEpochReport] = []
        for wid in sorted(payloads):
            payload = payloads[wid]
            if isinstance(payload, _ChildFailure):
                raise RuntimeError(
                    f"worker process {payload.wid} failed during epoch "
                    f"[{epoch_start},{epoch_end}):\n{payload.error}")
            reports.append(payload)
        return reports

    def _drain(self, fds: Dict[int, int],
               payloads: Dict[int, object]) -> Dict[int, object]:
        """Read one length-prefixed pickle frame from every pipe,
        concurrently, within the epoch deadline.  Completed frames are
        recorded into the caller-owned ``payloads`` dict as they arrive,
        so reports received before a failure remain available."""
        deadline = time.monotonic() + self.epoch_timeout
        buffers: Dict[int, bytearray] = {fd: bytearray() for fd in fds}
        sel = selectors.DefaultSelector()
        for fd in fds:
            os.set_blocking(fd, False)
            sel.register(fd, selectors.EVENT_READ)
        try:
            while buffers:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeError(
                        f"process backend: worker(s) "
                        f"{sorted(fds[fd] for fd in buffers)} did not "
                        f"report within {self.epoch_timeout:.0f}s "
                        f"(deadlocked or wedged pool)")
                for key, _events in sel.select(timeout=remaining):
                    fd = key.fd
                    try:
                        chunk = os.read(fd, 1 << 20)
                    except BlockingIOError:
                        continue
                    if chunk:
                        buffers[fd].extend(chunk)
                        continue
                    # EOF: the frame must be complete.
                    buf = buffers.pop(fd)
                    sel.unregister(fd)
                    os.close(fd)
                    wid = fds[fd]
                    if len(buf) < _LEN.size:
                        raise RuntimeError(
                            f"worker process {wid} exited without "
                            f"reporting (killed or crashed before "
                            f"serialization)")
                    (length,) = _LEN.unpack(buf[:_LEN.size])
                    if len(buf) != _LEN.size + length:
                        raise RuntimeError(
                            f"worker process {wid} shipped a truncated "
                            f"report ({len(buf) - _LEN.size}/{length} "
                            f"bytes)")
                    payloads[wid] = pickle.loads(buf[_LEN.size:])
        finally:
            for fd in buffers:
                try:
                    sel.unregister(fd)
                except (KeyError, ValueError):
                    pass
                try:
                    os.close(fd)
                except OSError:
                    pass
            sel.close()
        return payloads

    @staticmethod
    def _kill_pool(pids: Dict[int, int]) -> None:
        for pid in pids.values():
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        for pid in pids.values():
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                pass

    @staticmethod
    def _reap(pids: Dict[int, int]) -> None:
        for pid in pids.values():
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                pass

    # -- child side -----------------------------------------------------------

    def _child_slice(self, worker: WorkerState, frame: Frame,
                     epoch_start: int, epoch_end: int,
                     init: int) -> WorkerEpochReport:
        """Run one worker's slice of the epoch (inside the forked child)
        and build its report."""
        interp = self.interp
        runtime = self.runtime
        stats = runtime.stats
        telemetry = TRACER.enabled
        trace_mark = len(TRACER.events) if telemetry else 0
        if telemetry:
            # Fresh worker-local registry: the fork inherited the
            # parent's tallies by COW; this slice ships only what it
            # records itself, and the parent re-homes the shipped dump
            # under ``worker.<wid>.*``.
            METRICS.reset()
        t_begin = time.perf_counter()
        span = TRACER.span("backend.worker_epoch", cat="backend",
                           tid=worker.wid + 1, worker=worker.wid,
                           epoch_start=epoch_start, epoch_end=epoch_end)
        interp.space = worker.space
        if worker.frame is None:
            worker.frame = frame.copy()
        interp.swap_stack([worker.frame])
        records: List[IterationRecord] = []
        workers = self.workers
        misspeculated = False
        for i in range(epoch_start, epoch_end):
            if i % workers != worker.wid:
                continue
            c0 = interp.cycles
            s0 = interp.steps
            v0 = stats.validation_cycles()
            k0 = stats.counter_snapshot()
            misspec: Optional[Tuple[str, str, int, bool, bool]] = None
            misspec_context: Optional[Dict[str, object]] = None
            try:
                self._execute_iteration(worker, i, init)
                if self._inject_misspec(i):
                    raise self._injected_misspec(worker, i)
            except Misspeculation as exc:
                runtime.capture_conflict_context(worker, exc)
                misspec = (exc.kind, exc.detail, exc.iteration,
                           exc.kind == "injected", False)
                misspec_context = exc.context
            except (GuestFault, GuestTimeout) as fault:
                misspec = ("fault", str(fault), i, False, True)
            records.append(IterationRecord(
                iteration=i,
                cycles=interp.cycles - c0,
                steps=interp.steps - s0,
                validation_cycles=stats.validation_cycles() - v0,
                stats_delta=stats.counter_delta(k0),
                io=runtime.deferred.records_for(i),
                misspec=misspec,
                misspec_context=misspec_context,
            ))
            if misspec is not None:
                misspeculated = True
                break
        fragment = (None if misspeculated
                    else runtime.extract_fragment(worker, epoch_start))
        span.end(iterations=len(records), misspeculated=misspeculated)
        metrics: Dict[str, Dict[str, object]] = {}
        if telemetry:
            # Per-worker utilization counters for the live dashboard,
            # alongside whatever the slice itself recorded (shadow
            # traffic, separation checks, interpreter tallies ...).
            METRICS.counter("epoch.slices").inc()
            METRICS.counter("epoch.iterations").inc(len(records))
            METRICS.counter("epoch.busy_us").inc(
                round((time.perf_counter() - t_begin) * 1e6))
            if misspeculated:
                METRICS.counter("epoch.misspeculations").inc()
            metrics = METRICS.dump()
        events = ([dict(ev) for ev in TRACER.events[trace_mark:]]
                  if telemetry else [])
        return WorkerEpochReport(wid=worker.wid, records=records,
                                 fragment=fragment, trace_events=events,
                                 metrics=metrics)

    # -- parent-side replay ---------------------------------------------------

    def _replay_reports(self, reports: List[WorkerEpochReport],
                        inv: InvocationResult
                        ) -> Optional[Tuple[int, Misspeculation]]:
        """Replay the shipped iteration records in worker order,
        reproducing exactly the bookkeeping the simulated backend does
        in-process — including the earliest-misspeculation cut, under
        which iterations a simulated worker would never have started
        are discarded (the children executed them speculatively; that
        wasted work is squashed anyway)."""
        interp = self.interp
        runtime = self.runtime
        stats = runtime.stats
        earliest: Optional[Tuple[int, Misspeculation]] = None
        for report in reports:
            worker = runtime.workers[report.wid]
            for rec in report.records:
                if earliest is not None and rec.iteration > earliest[0]:
                    break
                t0 = worker.clock
                stats.apply_counter_delta(rec.stats_delta)
                interp.cycles += rec.cycles
                interp.steps += rec.steps
                worker.clock += rec.cycles
                if rec.misspec is not None:
                    kind, detail, exc_iter, injected, from_fault = rec.misspec
                    exc = Misspeculation(kind, detail, exc_iter)
                    exc.context = rec.misspec_context
                    runtime.record_misspeculation(exc, injected=injected)
                    if earliest is None or rec.iteration < earliest[0]:
                        earliest = (rec.iteration, exc)
                    if self.timeline is not None and not from_fault:
                        self.timeline.add("misspec", worker.wid, t0,
                                          worker.clock, exc.kind)
                    break
                worker.iterations += 1
                runtime.deferred.absorb(rec.iteration, rec.io)
                inv.useful_cycles += max(0, rec.cycles - rec.validation_cycles)
                if self.timeline is not None:
                    self.timeline.add("iteration", worker.wid, t0,
                                      worker.clock, f"i={rec.iteration}")
        return earliest
