"""Cost model for the simulated multicore (replaces the 24-core Xeon).

All values are simulated cycles.  ``spawn`` models the latency of forking
the worker pool (the paper attributes this to the OS fork implementation);
``join`` models worker-completed signalling, installing the final
non-committed state, and committing deferred output; recovery covers
teardown + sequential restart + respawn.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostModelConfig:
    """Simulated-cycle costs of the parallel runtime: spawn/join,
    checkpoint, validation, and recovery parameters (DESIGN.md §9).
    """
    spawn_base: int = 3_000
    spawn_per_worker: int = 800
    join_base: int = 2_000
    join_per_worker: int = 400
    recovery_fixed: int = 20_000

    def spawn_time(self, workers: int) -> int:
        return self.spawn_base + self.spawn_per_worker * workers

    def join_time(self, workers: int) -> int:
        return self.join_base + self.join_per_worker * workers


DEFAULT_COSTS = CostModelConfig()
