"""DOALL execution of speculatively privatized code: the shared backend
driver plus the simulated (deterministic reference) and process
(real-parallel) backends."""

from .backend import (
    BACKEND_NAMES,
    BackendError,
    BaseDOALLExecutor,
    make_executor,
    resolve_backend_name,
)
from .costmodel import DEFAULT_COSTS, CostModelConfig
from .executor import DOALLExecutor, trip_count
from .stats import BUCKETS, ExecutionResult, InvocationResult
from .timeline import Timeline, TimelineEvent

__all__ = [
    "BACKEND_NAMES", "BUCKETS", "BackendError", "BaseDOALLExecutor",
    "CostModelConfig", "DEFAULT_COSTS", "DOALLExecutor",
    "ExecutionResult", "InvocationResult", "Timeline", "TimelineEvent",
    "make_executor", "resolve_backend_name", "trip_count",
]
