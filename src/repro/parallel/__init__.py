"""Simulated-multicore DOALL execution of speculatively privatized code."""

from .costmodel import DEFAULT_COSTS, CostModelConfig
from .executor import DOALLExecutor, trip_count
from .stats import BUCKETS, ExecutionResult, InvocationResult
from .timeline import Timeline, TimelineEvent

__all__ = [
    "BUCKETS", "CostModelConfig", "DEFAULT_COSTS", "DOALLExecutor",
    "ExecutionResult", "InvocationResult", "Timeline", "TimelineEvent",
    "trip_count",
]
