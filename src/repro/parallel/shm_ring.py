"""Shared-memory ring transport for pool-backend epoch fragments.

The persistent-pool backend (:mod:`repro.parallel.pool_backend`, see
docs/BACKENDS.md §"pool") ships the bulk payload of every packed
format-2 :class:`~repro.runtime.fragments.EpochFragment` — the interval
runs and the ``write_kinds``/``write_values`` byte blobs — through one
:class:`multiprocessing.shared_memory.SharedMemory` segment per pool
worker instead of pickling it over the control pipe.  The child writes
the payload with ``memoryview`` slice stores, the parent reads it back
the same way, and only a tiny ``(offset, length)`` descriptor crosses
the (pickled) control pipe: there is no pickle on the fragment payload
path.

Synchronization is by construction, not by locking: each ring has
exactly one producer (its pool worker) and one consumer (the parent),
and the parent fully consumes an epoch's payloads before it dispatches
the next epoch command to that worker, so at most one generation of
payloads is ever live per ring.  Allocation is therefore **epoch
scoped**: the producer calls :meth:`ShmRing.begin_epoch` when a new
plan arrives (the previous generation is dead by then, so the cursor
rewinds to 0) and :meth:`ShmRing.alloc` bump-allocates from there.
``alloc`` never wraps — a multiplexed child ships one payload per
hosted worker id per epoch, and wrapping mid-epoch would overwrite an
earlier payload the parent has not read yet.  Any payload that does
not fit in the remaining tail reports ``None`` and the caller falls
back to shipping those bytes on the control pipe (flagged, counted
under ``pool.ring_overflows`` — see docs/BACKENDS.md §"transport
formats").

Ring capacity comes from ``REPRO_POOL_RING_KB`` (default 256 KiB per
worker); segments are named ``repro-pool-<pid>-<index>-<seq>`` so leak
checks can grep ``/dev/shm`` for stragglers, and the parent closes and
unlinks every segment when the executor shuts down.
"""

from __future__ import annotations

import os
import struct
from multiprocessing import shared_memory
from typing import Optional, Tuple

from ..obs.log import get_logger

log = get_logger("shm_ring")

#: Environment variable sizing each per-worker ring, in KiB.
RING_KB_ENV = "REPRO_POOL_RING_KB"

#: Default per-worker ring capacity (KiB).
DEFAULT_RING_KB = 256

#: Smallest ring the env knob may configure (one page).
MIN_RING_BYTES = 4096

#: Fragment payload header: counts of read-live-in runs, write runs and
#: epoch-written runs, then the kinds/values blob lengths.
_HEADER = struct.Struct("<5Q")

#: One signed 64-bit little-endian integer (run coordinates).
_I64 = struct.Struct("<q")


def ring_capacity_from_env(env: Optional[str] = None) -> int:
    """Resolve the per-worker ring capacity in bytes from
    ``REPRO_POOL_RING_KB`` (or an explicit override), clamped to at
    least :data:`MIN_RING_BYTES`.  A malformed value raises
    ``ValueError`` so a typo fails loudly instead of silently running
    with the default."""
    raw = env if env is not None else os.environ.get(RING_KB_ENV)
    if raw is None or raw == "":
        return DEFAULT_RING_KB * 1024
    try:
        kb = int(raw)
    except ValueError:
        raise ValueError(
            f"{RING_KB_ENV} must be an integer number of KiB, got {raw!r}")
    if kb <= 0:
        raise ValueError(f"{RING_KB_ENV} must be positive, got {kb}")
    return max(MIN_RING_BYTES, kb * 1024)


class ShmRing:
    """Single-producer bump-allocated ring over one shared segment.

    The parent constructs it with ``create=True``; forked children
    inherit the mapping (the ``SharedMemory`` object survives ``fork``,
    no re-attach needed).  ``begin_epoch``/``alloc`` are only ever
    called on one side at a time — child while producing, never the
    parent — so the cursor needs no cross-process coordination.
    """

    def __init__(self, name: str, capacity: int, create: bool = True):
        self.name = name
        self.capacity = capacity
        self.shm = shared_memory.SharedMemory(
            name=name, create=create, size=capacity)
        self.cursor = 0

    # -- producer side -----------------------------------------------------

    def begin_epoch(self) -> None:
        """Start a new epoch's allocations at offset 0.

        Safe because the consumer has fully read the previous epoch's
        payloads before it dispatched the plan that triggers this call
        (the one-live-generation invariant in the module docstring).
        """
        self.cursor = 0

    def alloc(self, size: int) -> Optional[int]:
        """Reserve ``size`` contiguous bytes; returns the start offset.

        Returns ``None`` when the payload does not fit in the tail left
        by this epoch's earlier allocations (caller falls back to the
        control pipe).  Never wraps: every allocation since the last
        :meth:`begin_epoch` is still live — a multiplexed child ships
        several payloads per epoch — and wrapping would silently
        overwrite one before the parent reads it.
        """
        if self.cursor + size > self.capacity:
            return None
        offset = self.cursor
        self.cursor += size
        return offset

    def write(self, offset: int, data) -> None:
        self.shm.buf[offset:offset + len(data)] = data

    def view(self, offset: int, length: int) -> memoryview:
        """Zero-copy window onto ``[offset, offset+length)``."""
        return memoryview(self.shm.buf)[offset:offset + length]

    # -- lifecycle ---------------------------------------------------------

    def close(self, unlink: bool = False) -> None:
        """Drop this process's mapping; ``unlink`` additionally removes
        the backing ``/dev/shm`` segment (owner side only).  A mapping
        pinned by an unreleased ``memoryview`` is reported, not silently
        leaked."""
        try:
            self.shm.close()
        except OSError:
            pass
        except BufferError:
            log.warning(
                "ring %s: mapping not closed — a memoryview into the "
                "segment is still alive (missing view.release()?)",
                self.name)
        if unlink:
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass


def payload_size(read_runs: int, write_runs: int, epoch_runs: int,
                 kinds_len: int, values_len: int) -> int:
    """Bytes needed to frame one fragment payload."""
    return (_HEADER.size
            + _I64.size * (2 * read_runs + 3 * write_runs + 2 * epoch_runs)
            + kinds_len + values_len)


def pack_fragment_payload(buf, offset: int, read_live_in_runs,
                          write_runs, epoch_written_runs,
                          write_kinds: bytes, write_values: bytes) -> int:
    """Pack one fragment's bulk payload into ``buf`` at ``offset``.

    ``buf`` is any writable buffer (a ring's ``shm.buf`` or a
    ``bytearray`` for the pipe fallback).  Returns the total framed
    length.  Layout: the :data:`_HEADER` counts, then the three run
    arrays as little-endian int64s, then the raw kinds and values blobs.
    """
    pos = offset
    _HEADER.pack_into(buf, pos, len(read_live_in_runs), len(write_runs),
                      len(epoch_written_runs), len(write_kinds),
                      len(write_values))
    pos += _HEADER.size
    for start, end in read_live_in_runs:
        _I64.pack_into(buf, pos, start)
        _I64.pack_into(buf, pos + 8, end)
        pos += 16
    for start, end, rel in write_runs:
        _I64.pack_into(buf, pos, start)
        _I64.pack_into(buf, pos + 8, end)
        _I64.pack_into(buf, pos + 16, rel)
        pos += 24
    for start, end in epoch_written_runs:
        _I64.pack_into(buf, pos, start)
        _I64.pack_into(buf, pos + 8, end)
        pos += 16
    buf[pos:pos + len(write_kinds)] = write_kinds
    pos += len(write_kinds)
    buf[pos:pos + len(write_values)] = write_values
    pos += len(write_values)
    return pos - offset


def unpack_fragment_payload(
    view,
) -> Tuple[Tuple[Tuple[int, int], ...], Tuple[Tuple[int, int, int], ...],
           Tuple[Tuple[int, int], ...], bytes, bytes]:
    """Inverse of :func:`pack_fragment_payload`.

    ``view`` is a buffer starting at the payload's first header byte
    (typically a :meth:`ShmRing.view` memoryview).  Returns
    ``(read_live_in_runs, write_runs, epoch_written_runs, write_kinds,
    write_values)`` in the exact container shapes
    :class:`~repro.runtime.fragments.EpochFragment` stores.
    """
    n_read, n_write, n_epoch, kinds_len, values_len = _HEADER.unpack_from(
        view, 0)
    pos = _HEADER.size
    flat = struct.unpack_from(
        f"<{2 * n_read + 3 * n_write + 2 * n_epoch}q", view, pos)
    pos += 8 * (2 * n_read + 3 * n_write + 2 * n_epoch)
    read_runs = tuple(
        (flat[2 * i], flat[2 * i + 1]) for i in range(n_read))
    base = 2 * n_read
    write_runs = tuple(
        (flat[base + 3 * i], flat[base + 3 * i + 1], flat[base + 3 * i + 2])
        for i in range(n_write))
    base += 3 * n_write
    epoch_runs = tuple(
        (flat[base + 2 * i], flat[base + 2 * i + 1]) for i in range(n_epoch))
    kinds = bytes(view[pos:pos + kinds_len])
    pos += kinds_len
    values = bytes(view[pos:pos + values_len])
    return read_runs, write_runs, epoch_runs, kinds, values
