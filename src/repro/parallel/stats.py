"""Execution results: wall-clock (simulated) time and the Figure 8
overhead breakdown."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..runtime.stats import RuntimeStats

#: Figure 8 bucket names, in the paper's order, plus "other_validation"
#: (separation/reduction/prediction checks — negligible in the paper's
#: breakdown, visible in ours for pointer-heavy programs).
BUCKETS = ("useful", "private_read", "private_write", "checkpoint",
           "other_validation", "spawn_join")


@dataclass
class InvocationResult:
    """One parallel-region invocation."""

    index: int
    trips: int
    workers: int
    wall_cycles: int = 0
    spawn_cycles: int = 0
    join_cycles: int = 0
    useful_cycles: int = 0
    validation_cycles: Dict[str, int] = field(default_factory=dict)
    checkpoint_cycles: int = 0
    recovery_cycles: int = 0
    checkpoints: int = 0
    misspeculations: int = 0
    recovered_iterations: int = 0
    executed_sequentially: bool = False
    #: Iterations/cycles spent in adaptive sequential-fallback spans
    #: (committed non-speculative execution inside a parallel invocation).
    sequential_iterations: int = 0
    sequential_cycles: int = 0

    @property
    def capacity(self) -> int:
        return self.wall_cycles * self.workers


@dataclass
class ExecutionResult:
    """Whole-program result of a speculatively parallelized run."""

    return_value: object
    output: List[str]
    workers: int
    sequential_cycles_outside: int = 0
    invocations: List[InvocationResult] = field(default_factory=list)
    runtime_stats: Optional[RuntimeStats] = None
    #: Adaptive-controller summary (epoch trajectory, decision counts);
    #: None when the run used a fixed policy.
    adapt: Optional[Dict[str, object]] = None

    @property
    def parallel_wall_cycles(self) -> int:
        return sum(inv.wall_cycles for inv in self.invocations)

    @property
    def total_wall_cycles(self) -> int:
        return self.sequential_cycles_outside + self.parallel_wall_cycles

    def overhead_breakdown(self) -> Dict[str, float]:
        """Fractions of the parallel region's computational capacity
        (workers x duration), as in Figure 8."""
        capacity = sum(inv.capacity for inv in self.invocations)
        if capacity == 0:
            return {b: 0.0 for b in BUCKETS}
        useful = sum(inv.useful_cycles for inv in self.invocations)
        priv_r = sum(inv.validation_cycles.get("private_read", 0)
                     for inv in self.invocations)
        priv_w = sum(inv.validation_cycles.get("private_write", 0)
                     for inv in self.invocations)
        checkpoint = sum(inv.checkpoint_cycles for inv in self.invocations)
        spawn = sum(inv.spawn_cycles * inv.workers for inv in self.invocations)
        out = {
            "useful": useful / capacity,
            "private_read": priv_r / capacity,
            "private_write": priv_w / capacity,
            "checkpoint": checkpoint / capacity,
        }
        other_validation = sum(
            sum(v for k, v in inv.validation_cycles.items()
                if k not in ("private_read", "private_write"))
            for inv in self.invocations
        )
        out["other_validation"] = other_validation / capacity
        # Spawn/Join: capacity idle while workers start, plus the residual
        # (join latency, imbalance, commit of final state and output).
        residual = max(0, capacity - (useful + priv_r + priv_w + checkpoint
                                      + other_validation + spawn))
        out["spawn_join"] = (spawn + residual) / capacity
        return out

    def speedup_over(self, sequential_cycles: int) -> float:
        total = self.total_wall_cycles
        return sequential_cycles / total if total else 0.0
