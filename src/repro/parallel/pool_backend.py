"""Persistent worker-pool DOALL backend: long-lived worker processes.

The process backend (:mod:`repro.parallel.process_backend`) forks one
OS process per worker *per checkpoint epoch*, so worker startup cost is
paid on every epoch.  This backend instead keeps a **pool of worker
processes alive across epochs** — the paper's actual runtime shape
(workers are forked once per parallel invocation and persist until
join) — and amortizes the fork tax over every epoch of the invocation.
docs/BACKENDS.md is the end-to-end guide; section pointers below.

Lifecycle (docs/BACKENDS.md §"pool lifecycle"):

* Pool children are forked **lazily at the first epoch of each
  invocation**, inheriting the whole parent image by copy-on-write —
  worker COW overlays, replica shadows, reduction copies and the loop
  frame — exactly the state a persistent simulated worker starts from.
* Across *clean* epochs the children stay resident.  Each epoch plan
  (:class:`_PoolEpoch`) arrives over a per-child task pipe and carries
  the previous epoch's **commit delta** (:class:`_CommitDelta`): the
  private bytes the parent's checkpoint merged into main memory plus
  the folded reduction results.  The child patches its own main-memory
  image and performs the same per-worker post-checkpoint reset the
  parent did (``reset_after_checkpoint`` + ``mark_old_write_runs`` +
  epoch-tracking/redux reset), so the resident workers are
  byte-for-byte the simulated backend's persistent workers.
* After any squash/recovery, adaptive sequential fallback, or a new
  invocation, the resident image is stale (recovery rewrites main
  memory arbitrarily and the runtime re-forks fresh worker states);
  the pool is marked stale and respawned at the next epoch — mirroring
  :meth:`RuntimeSystem.refork_workers`, which discards and re-forks all
  simulated worker state at exactly the same points.

Fragment transport (docs/BACKENDS.md §"transport formats"): the bulk of
every packed format-2 :class:`~repro.runtime.fragments.EpochFragment`
(interval runs + kind/value blobs) travels through one
``multiprocessing.shared_memory`` ring per child
(:mod:`repro.parallel.shm_ring`) as memoryview slice writes — no pickle
on the payload path; only a tiny ``(offset, length)`` descriptor plus
the per-iteration records cross the control pipe.  Ring allocation is
epoch scoped (the child rewinds the cursor when a plan arrives and
never wraps mid-epoch); a payload that does not fit in the tail left
by the epoch's earlier payloads falls back to the pipe (counted under
``pool.ring_overflows``).  The control pipe retains everything the
process backend ships — iteration records, misspeculation terms,
in-worker metrics dumps and trace events — so the telemetry plane
(``worker.N.*`` merge, per-worker Chrome lanes, partial-epoch
absorption) carries over unchanged, with the bonus that pool worker
ids are stable for the whole run.

Failure semantics (docs/BACKENDS.md §"failure semantics"): a child
that dies mid-epoch (e.g. SIGKILL) is detected as EOF on its report
pipe; the parent absorbs the surviving workers' telemetry, synthesizes
a ``fault`` misspeculation at the dead workers' first iteration of the
epoch, squashes the epoch through the standard recovery path, and
respawns the pool at the next epoch.  A wedged pool still hits the
``epoch_timeout`` deadline and fails the run loudly.  Shared-memory
rings are created once per run and always closed **and unlinked** on
the way out of :meth:`PoolDOALLExecutor.run`, so no ``repro-pool-*``
segments leak into ``/dev/shm``.
"""

from __future__ import annotations

import itertools
import os
import pickle
import selectors
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..interp.errors import Misspeculation
from ..interp.interpreter import Frame
from ..obs.log import get_logger
from ..obs.metrics import METRICS
from ..obs.trace import TRACER
from ..runtime.fragments import EpochFragment
from ..runtime.intervals import union_runs
from ..runtime.iodefer import DeferredOutput
from .backend import BackendError, WorkerEpochReport
from .process_backend import (
    DEFAULT_EPOCH_TIMEOUT,
    ProcessDOALLExecutor,
    _ChildFailure,
    _LEN,
    _write_frame,
)
from .shm_ring import (
    ShmRing,
    pack_fragment_payload,
    payload_size,
    ring_capacity_from_env,
    unpack_fragment_payload,
)
from .stats import ExecutionResult, InvocationResult

log = get_logger("pool_backend")

#: Monotonic suffix for shared-memory ring names (avoids collisions
#: between executors in one process and stale segments from crashes).
_RING_SEQ = itertools.count()


def _read_exact(fd: int, n: int) -> Optional[bytes]:
    """Blocking read of exactly ``n`` bytes; None on EOF."""
    buf = bytearray()
    while len(buf) < n:
        chunk = os.read(fd, n - len(buf))
        if not chunk:
            return None
        buf.extend(chunk)
    return bytes(buf)


def _read_frame(fd: int) -> Optional[bytes]:
    """Blocking read of one length-prefixed frame (the task-pipe
    counterpart of :func:`process_backend._write_frame`); None on EOF
    at a frame boundary or mid-frame (parent gone: exit either way)."""
    head = _read_exact(fd, _LEN.size)
    if head is None:
        return None
    (length,) = _LEN.unpack(head)
    return _read_exact(fd, length)


@dataclass
class _CommitDelta:
    """What the parent's last checkpoint changed in main memory.

    Shipped to resident children on the next epoch plan so their main
    images stay identical to the parent's: ``private_runs`` are
    ``(private-heap offset, committed bytes)`` read back from the
    parent's main memory over the merged write extents; ``redux_runs``
    are ``(absolute address, bytes)`` of every folded reduction
    element.  Application is idempotent (plain content stores).
    """

    private_runs: List[Tuple[int, bytes]] = field(default_factory=list)
    redux_runs: List[Tuple[int, bytes]] = field(default_factory=list)


@dataclass
class _PoolEpoch:
    """One epoch plan, parent -> child over the task pipe."""

    epoch_start: int
    epoch_end: int
    init: int
    #: Commit delta of the previous epoch; None on the first epoch after
    #: a (re)spawn, when the fork already inherited committed state.
    commit: Optional[_CommitDelta] = None


@dataclass
class _PoolReply:
    """One epoch's results, child -> parent over the report pipe.

    ``payloads`` parallels ``reports``: None for a misspeculated slice,
    else ``(fragment header, transport descriptor)`` where the
    descriptor is ``("ring", offset, length)`` into the child's shared
    ring or ``("pipe", bytes)`` for the oversize fallback.
    """

    cwid: int
    reports: List[WorkerEpochReport] = field(default_factory=list)
    payloads: List[Optional[tuple]] = field(default_factory=list)


@dataclass
class _PoolChild:
    """Parent-side handle on one resident pool process."""

    cwid: int
    pid: int
    #: Parent's read end of the report pipe.
    rfd: int
    #: Parent's write end of the task pipe (length-prefixed pickled
    #: :class:`_PoolEpoch` frames).
    task_wfd: int
    wids: List[int] = field(default_factory=list)


class PoolDOALLExecutor(ProcessDOALLExecutor):
    """DOALL backend with persistent pool workers and shm transport."""

    backend_name = "pool"

    def __init__(self, *args, epoch_timeout: float = DEFAULT_EPOCH_TIMEOUT,
                 pool_workers: Optional[int] = None, **kwargs):
        super().__init__(*args, epoch_timeout=epoch_timeout, **kwargs)
        if pool_workers is not None and pool_workers < 1:
            raise BackendError(
                f"--pool-workers must be >= 1, got {pool_workers}")
        try:
            # Validate the ring-size knob up front: a typo'd
            # $REPRO_POOL_RING_KB must fail loudly at construction, not
            # halfway into the run when the pool first spawns.
            ring_capacity_from_env()
        except ValueError as e:
            raise BackendError(str(e))
        #: Requested pool size; None = one process per logical worker.
        self.pool_workers = pool_workers
        #: Effective pool size.  Fewer processes than logical workers
        #: means each child hosts several worker ids and runs their
        #: slices sequentially — precisely the simulated semantics.
        self.pool_size = min(pool_workers or self.workers, self.workers)
        #: Fragments shipped on the pipe because they outgrew the ring.
        self.ring_overflows = 0
        #: Times the pool was (re)forked — 1 per invocation when clean.
        self.pool_spawns = 0
        self._children: List[_PoolChild] = []
        self._rings: Optional[List[ShmRing]] = None
        self._pool_invocation = -2
        self._pool_stale = False
        #: ``(merged write spans, redux (addr, size) keys)`` of the last
        #: clean epoch — the recipe for the next commit delta.
        self._last_commit_meta = None
        #: Child-side: previous epoch's write spans per hosted wid (for
        #: ``mark_old_write_runs`` on commit notification).
        self._child_prev_spans: Dict[int, List[Tuple[int, int]]] = {}

    # -- whole-program run ----------------------------------------------------

    def run(self, entry: str = "main",
            args: Sequence[object] = ()) -> ExecutionResult:
        """Run the guest; always tear the pool down and unlink the
        shared-memory rings on the way out (clean or crashed)."""
        try:
            return super().run(entry, args)
        finally:
            self._shutdown_pool()

    # -- epoch execution ------------------------------------------------------

    def _execute_epoch(
        self, frame: Frame, inv: InvocationResult, epoch_start: int,
        epoch_end: int, init: int,
    ) -> Tuple[Optional[Tuple[int, Misspeculation]],
               Optional[List[EpochFragment]]]:
        runtime = self.runtime
        warm = (bool(self._children) and not self._pool_stale
                and self._pool_invocation == runtime.invocation_index
                and self._last_commit_meta is not None)
        if warm:
            commit = self._build_commit_delta()
        else:
            self._spawn_pool(frame)
            commit = None
        self._last_commit_meta = None

        plan = _PoolEpoch(epoch_start, epoch_end, init, commit)
        blob = pickle.dumps(plan, protocol=pickle.HIGHEST_PROTOCOL)
        for child in self._children:
            try:
                _write_frame(child.task_wfd, blob)
            except BrokenPipeError:
                # Child already dead: _drain_pool sees EOF on its report
                # pipe and the epoch is squashed + the pool respawned.
                pass

        payloads: Dict[int, WorkerEpochReport] = {}
        try:
            replies, dead = self._drain_pool(payloads)
        except BaseException:
            # Deadline or protocol failure: kill the pool, but keep the
            # telemetry that already crossed the pipe.
            self._teardown_children()
            self._absorb_telemetry(payloads)
            raise
        self._absorb_telemetry(payloads)
        for reply in replies.values():
            if isinstance(reply, _ChildFailure):
                self._teardown_children()
                raise RuntimeError(
                    f"pool worker process {reply.wid} failed during epoch "
                    f"[{epoch_start},{epoch_end}):\n{reply.error}")
        for reply in replies.values():
            for report, entry in zip(reply.reports, reply.payloads):
                if entry is not None:
                    report.fragment = self._rebuild_fragment(
                        reply.cwid, entry)

        death = None
        if dead:
            self._pool_stale = True
            dead_wids = sorted(w for child in dead for w in child.wids)
            death = self._synthesize_death(dead, dead_wids, epoch_start,
                                           epoch_end)
            # Iterations a simulated scheduler would cut at the death
            # point were executed speculatively by survivors; drop them
            # before replay (they are squashed anyway).
            for report in payloads.values():
                report.records = [r for r in report.records
                                  if r.iteration <= death[0]]

        reports = [payloads[wid] for wid in sorted(payloads)]
        earliest = self._replay_reports(reports, inv)
        if death is not None:
            self.runtime.record_misspeculation(death[1])
            if earliest is None or death[0] < earliest[0]:
                earliest = death
        if earliest is not None:
            return earliest, None

        fragments = [r.fragment for r in reports]
        if len(fragments) != self.workers or any(
                f is None for f in fragments):
            raise RuntimeError(
                f"pool backend: clean epoch [{epoch_start},{epoch_end}) "
                f"is missing fragments ({len(fragments)}/{self.workers} "
                f"reports)")
        self._last_commit_meta = (
            union_runs([f.write_spans() for f in fragments]),
            sorted({(el.addr, el.size)
                    for f in fragments for el in f.redux_elements}),
        )
        return None, fragments

    def _synthesize_death(self, dead: List[_PoolChild],
                          dead_wids: List[int], epoch_start: int,
                          epoch_end: int) -> Tuple[int, Misspeculation]:
        """Turn mid-epoch child death into a standard squash: a fault
        misspeculation at the dead workers' first iteration of the
        epoch (the epoch cannot commit without their fragments)."""
        log.warning("pool worker(s) %s (pid %s) died during epoch "
                    "[%d,%d); squashing and respawning",
                    dead_wids, [c.pid for c in dead], epoch_start,
                    epoch_end)
        if TRACER.enabled:
            METRICS.counter("pool.worker_deaths").inc(len(dead))
        wid_set = set(dead_wids)
        death_iter = next(
            (i for i in range(epoch_start, epoch_end)
             if i % self.workers in wid_set), epoch_start)
        exc = Misspeculation(
            "fault",
            f"pool worker process died mid-epoch (worker(s) {dead_wids})",
            death_iter)
        return death_iter, exc

    # -- commit-delta sync ----------------------------------------------------

    def _build_commit_delta(self) -> _CommitDelta:
        """Read the last checkpoint's committed content back out of the
        parent's main memory (freed/worker-local extents are skipped by
        ``covering_pieces``, matching what the merge skipped)."""
        spans, redux_keys = self._last_commit_meta
        ms = self.runtime.main_space
        pb = self.runtime.private_base
        delta = _CommitDelta()
        for start, end in spans:
            for s, e, obj in ms.covering_pieces(pb + start, end - start):
                delta.private_runs.append(
                    (s - pb, bytes(obj.data[s - obj.base:e - obj.base])))
        for addr, size in redux_keys:
            for s, e, obj in ms.covering_pieces(addr, size):
                delta.redux_runs.append(
                    (s, bytes(obj.data[s - obj.base:e - obj.base])))
        return delta

    def _rebuild_fragment(self, cwid: int, entry: tuple) -> EpochFragment:
        """Parent side: reassemble one worker's fragment from its header
        (pipe) and bulk payload (shared ring, or pipe fallback)."""
        header, desc = entry
        wid, ep_start, fmt, redux_elements, dirty = header
        if desc[0] == "ring":
            view = self._rings[cwid].view(desc[1], desc[2])
            try:
                rr, wr, er, kinds, values = unpack_fragment_payload(view)
            finally:
                view.release()
        else:
            rr, wr, er, kinds, values = unpack_fragment_payload(
                memoryview(desc[1]))
            self.ring_overflows += 1
            if TRACER.enabled:
                METRICS.counter("pool.ring_overflows").inc()
        return EpochFragment(
            wid=wid, epoch_start=ep_start, format=fmt,
            read_live_in_runs=rr, write_runs=wr, write_kinds=kinds,
            write_values=values, epoch_written_runs=er,
            redux_elements=redux_elements, dirty_private_pages=dirty)

    # -- staleness ------------------------------------------------------------

    def _recover(self, frame: Frame, inv: InvocationResult, epoch_start: int,
                 earliest: Tuple[int, Misspeculation], init: int) -> int:
        """Recovery rewrites main memory and re-forks the runtime's
        worker states; the resident children are stale afterwards."""
        next_iter = super()._recover(frame, inv, epoch_start, earliest, init)
        self._pool_stale = True
        return next_iter

    def _run_sequential_span(self, frame: Frame, inv: InvocationResult,
                             start: int, end: int, init: int) -> None:
        """Adaptive sequential fallback commits straight to main memory
        and re-forks worker states; resident children go stale."""
        super()._run_sequential_span(frame, inv, start, end, init)
        self._pool_stale = True

    # -- pool lifecycle -------------------------------------------------------

    def _spawn_pool(self, frame: Frame) -> None:
        """(Re)fork the pool from the current parent image.  Each child
        inherits everything by COW: worker overlays, shadows, reduction
        copies, the loop frame — the persistent-worker starting state."""
        self._teardown_children()
        if self._rings is None:
            self._rings = self._create_rings(self.pool_size)
        wids_of = [list(range(c, self.workers, self.pool_size))
                   for c in range(self.pool_size)]
        sys.stdout.flush()
        sys.stderr.flush()
        children: List[_PoolChild] = []
        for cwid in range(self.pool_size):
            task_rfd, task_wfd = os.pipe()
            rfd, wfd = os.pipe()
            pid = os.fork()
            if pid == 0:
                status = 1
                try:
                    os.close(rfd)
                    os.close(task_wfd)
                    # fd hygiene: drop inherited ends that belong to
                    # the parent <-> earlier-sibling channels.
                    for prev in children:
                        for fd in (prev.rfd, prev.task_wfd):
                            try:
                                os.close(fd)
                            except OSError:
                                pass
                    self._child_main(cwid, wids_of[cwid], frame,
                                     task_rfd, wfd)
                    status = 0
                except BaseException:
                    try:
                        _write_frame(wfd, pickle.dumps(
                            _ChildFailure(wids_of[cwid][0],
                                          traceback.format_exc()),
                            protocol=pickle.HIGHEST_PROTOCOL))
                    except BaseException:
                        pass
                finally:
                    for fd in (wfd, task_rfd):
                        try:
                            os.close(fd)
                        except OSError:
                            pass
                    # Never run parent atexit/flush machinery in the
                    # forked interpreter image.
                    os._exit(status)
            os.close(wfd)
            os.close(task_rfd)
            os.set_blocking(rfd, False)
            children.append(_PoolChild(cwid=cwid, pid=pid, rfd=rfd,
                                       task_wfd=task_wfd,
                                       wids=wids_of[cwid]))
        self._children = children
        self._pool_invocation = self.runtime.invocation_index
        self._pool_stale = False
        self._last_commit_meta = None
        self.pool_spawns += 1
        if TRACER.enabled:
            METRICS.counter("pool.spawns").inc()
        log.info("pool spawned: %d process(es) for %d worker(s), "
                 "invocation %d", self.pool_size, self.workers,
                 self._pool_invocation)

    def _create_rings(self, pool_size: int) -> List[ShmRing]:
        capacity = ring_capacity_from_env()
        rings: List[ShmRing] = []
        for idx in range(pool_size):
            while True:
                name = (f"repro-pool-{os.getpid()}-{idx}-"
                        f"{next(_RING_SEQ)}")
                try:
                    rings.append(ShmRing(name, capacity, create=True))
                    break
                except FileExistsError:
                    continue
        return rings

    def _drain_pool(self, payloads: Dict[int, WorkerEpochReport]
                    ) -> Tuple[Dict[int, object], List[_PoolChild]]:
        """Read exactly one length-prefixed reply frame per live child
        within the epoch deadline.  EOF means the child died mid-epoch;
        the caller turns that into a squash.  Reports are recorded into
        ``payloads`` as they arrive so telemetry survives failures."""
        deadline = time.monotonic() + self.epoch_timeout
        waiting = {child.rfd: child for child in self._children}
        buffers: Dict[int, bytearray] = {fd: bytearray() for fd in waiting}
        replies: Dict[int, object] = {}
        dead: List[_PoolChild] = []
        sel = selectors.DefaultSelector()
        for fd in waiting:
            sel.register(fd, selectors.EVENT_READ)
        try:
            while waiting:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    wids = sorted(w for child in waiting.values()
                                  for w in child.wids)
                    raise RuntimeError(
                        f"pool backend: worker(s) {wids} did not report "
                        f"within {self.epoch_timeout:.0f}s (deadlocked "
                        f"or wedged pool)")
                for key, _events in sel.select(timeout=remaining):
                    fd = key.fd
                    if fd not in waiting:
                        continue
                    try:
                        chunk = os.read(fd, 1 << 20)
                    except BlockingIOError:
                        continue
                    if not chunk:
                        child = waiting.pop(fd)
                        sel.unregister(fd)
                        dead.append(child)
                        continue
                    buf = buffers[fd]
                    buf.extend(chunk)
                    if len(buf) < _LEN.size:
                        continue
                    (length,) = _LEN.unpack(bytes(buf[:_LEN.size]))
                    if len(buf) < _LEN.size + length:
                        continue
                    child = waiting.pop(fd)
                    sel.unregister(fd)
                    reply = pickle.loads(
                        bytes(buf[_LEN.size:_LEN.size + length]))
                    replies[child.cwid] = reply
                    if isinstance(reply, _PoolReply):
                        for report in reply.reports:
                            payloads[report.wid] = report
        finally:
            sel.close()
        return replies, dead

    def _teardown_children(self) -> None:
        """SIGKILL and reap every resident child and release the
        parent-side channel resources (rings stay up for respawn)."""
        children, self._children = self._children, []
        if not children:
            return
        self._kill_pool({child.cwid: child.pid for child in children})
        for child in children:
            for fd in (child.rfd, child.task_wfd):
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._last_commit_meta = None

    def _shutdown_pool(self) -> None:
        """End-of-run cleanup: tear down the children and close *and
        unlink* every shared-memory ring (the /dev/shm leak check in the
        test suite greps for stragglers)."""
        self._teardown_children()
        rings, self._rings = self._rings, None
        if rings:
            for ring in rings:
                ring.close(unlink=True)

    # -- child side -----------------------------------------------------------

    def _child_main(self, cwid: int, wids: List[int], frame: Frame,
                    task_rfd: int, wfd: int) -> None:
        """Resident child loop: wait for epoch plans on the task pipe,
        run the hosted worker slices, ship replies.  Runs until killed
        (or the task pipe closes / a ``None`` sentinel arrives)."""
        while True:
            data = _read_frame(task_rfd)
            if data is None:
                return
            plan = pickle.loads(data)
            if plan is None:
                return
            reply = self._child_epoch(cwid, wids, frame, plan)
            _write_frame(wfd, pickle.dumps(
                reply, protocol=pickle.HIGHEST_PROTOCOL))

    def _child_epoch(self, cwid: int, wids: List[int], frame: Frame,
                     plan: _PoolEpoch) -> _PoolReply:
        """Execute one epoch plan for every hosted worker id."""
        runtime = self.runtime
        if plan.commit is not None:
            self._child_apply_commit(wids, plan.commit)
        runtime.epoch_start = plan.epoch_start
        # The parent consumed the previous epoch's payloads before it
        # sent this plan: rewind the ring so this epoch's allocations
        # (one per hosted wid) bump from 0 without ever wrapping over
        # a still-live sibling payload.
        self._rings[cwid].begin_epoch()
        reply = _PoolReply(cwid=cwid)
        for w in wids:
            worker = runtime.workers[w]
            report = self._child_slice(worker, frame, plan.epoch_start,
                                       plan.epoch_end, plan.init)
            reply.payloads.append(self._child_ship_fragment(cwid, report))
            reply.reports.append(report)
        # Bound resident-child memory: shipped trace events and deferred
        # output are authoritative parent-side.
        if TRACER.enabled:
            del TRACER.events[:]
        runtime.deferred = DeferredOutput()
        return reply

    def _child_apply_commit(self, wids: List[int],
                            commit: _CommitDelta) -> None:
        """Apply the parent's checkpoint outcome to this child's image:
        patch main memory with the committed content, then perform the
        same per-worker reset the parent's checkpoint did, so resident
        workers enter the next epoch exactly like simulated ones."""
        runtime = self.runtime
        ms = runtime.main_space
        pb = runtime.private_base
        for off, blob in commit.private_runs:
            self._patch_main(ms, pb + off, blob)
        for addr, blob in commit.redux_runs:
            self._patch_main(ms, addr, blob)
        for w in wids:
            worker = runtime.workers[w]
            worker.shadow.reset_after_checkpoint()
            worker.shadow.mark_old_write_runs(
                self._child_prev_spans.get(w, []))
            worker.reset_epoch_tracking()
            runtime._reset_worker_redux(worker)

    @staticmethod
    def _patch_main(space, addr: int, blob: bytes) -> None:
        for s, e, obj in space.covering_pieces(addr, len(blob)):
            obj.data[s - obj.base:e - obj.base] = blob[s - addr:e - addr]

    def _child_ship_fragment(self, cwid: int,
                             report: WorkerEpochReport) -> Optional[tuple]:
        """Pack one slice's fragment payload into the child's ring (or
        the pipe-fallback buffer) and strip it from the report, leaving
        only the small header to pickle."""
        frag = report.fragment
        if frag is None:
            return None
        self._child_prev_spans[frag.wid] = frag.write_spans()
        size = payload_size(
            len(frag.read_live_in_runs), len(frag.write_runs),
            len(frag.epoch_written_runs), len(frag.write_kinds),
            len(frag.write_values))
        ring = self._rings[cwid]
        offset = ring.alloc(size)
        if offset is None:
            buf = bytearray(size)
            pack_fragment_payload(
                buf, 0, frag.read_live_in_runs, frag.write_runs,
                frag.epoch_written_runs, frag.write_kinds,
                frag.write_values)
            desc = ("pipe", bytes(buf))
        else:
            pack_fragment_payload(
                ring.shm.buf, offset, frag.read_live_in_runs,
                frag.write_runs, frag.epoch_written_runs,
                frag.write_kinds, frag.write_values)
            desc = ("ring", offset, size)
        header = (frag.wid, frag.epoch_start, frag.format,
                  frag.redux_elements, frag.dirty_private_pages)
        report.fragment = None
        return (header, desc)
