"""Execution timeline for Figure 5: worker iteration spans, checkpoints,
misspeculation, and recovery, rendered as text."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class TimelineEvent:
    """One Figure 5 timeline entry: kind, worker lane, cycle interval."""
    kind: str           # "iteration" | "checkpoint" | "misspec" | "recovery" | "sequential" | "spawn" | "join"
    worker: Optional[int]
    start: int
    end: int
    label: str = ""


@dataclass
class Timeline:
    """Figure 5 execution timeline: per-worker iteration spans plus
    checkpoint/misspeculation/recovery markers, with ASCII rendering.
    """
    events: List[TimelineEvent] = field(default_factory=list)

    def add(self, kind: str, worker: Optional[int], start: int, end: int,
            label: str = "") -> None:
        self.events.append(TimelineEvent(kind, worker, start, end, label))

    def render(self, width: int = 72) -> str:
        """ASCII rendering in the style of Figure 5: one row per worker,
        checkpoint/misspec/recovery markers below."""
        width = max(1, width)
        if not self.events:
            return "(empty timeline)"
        t_end = max(e.end for e in self.events)
        t_end = max(t_end, 1)
        scale = width / t_end

        def columns(e: TimelineEvent) -> Tuple[int, int]:
            # Clamp into [0, width): a malformed event (negative start,
            # start past t_end, end < start) must never index outside the
            # row buffer — a negative index would silently wrap around and
            # paint the end of the row.
            a = min(width - 1, max(0, int(e.start * scale)))
            b = min(width - 1, max(a, int(e.end * scale) - 1))
            return a, b

        workers = sorted({e.worker for e in self.events if e.worker is not None})
        lines: List[str] = []
        for w in workers:
            row = [" "] * width
            for e in self.events:
                if e.worker != w:
                    continue
                a, b = columns(e)
                ch = {"iteration": "=", "checkpoint": "C", "misspec": "X",
                      "spawn": ".", "recovery": "R",
                      "sequential": "s"}.get(e.kind, "?")
                for i in range(a, b + 1):
                    row[i] = ch
            lines.append(f"worker {w}: [{''.join(row)}]")
        marker_row = [" "] * width
        for e in self.events:
            if e.worker is None:
                a, b = columns(e)
                ch = {"checkpoint": "C", "misspec": "X", "recovery": "R",
                      "sequential": "s", "join": "J",
                      "spawn": "S"}.get(e.kind, "|")
                for i in range(a, b + 1):
                    marker_row[i] = ch
        lines.append(f"events  : [{''.join(marker_row)}]")
        lines.append("legend  : = iteration, C checkpoint, X misspec, "
                     "R recovery, s sequential span, S spawn, J join")
        return "\n".join(lines)
