"""Shared DOALL execution backend interface.

The speculative DOALL machinery — invocation detection, trip counting,
epoch scheduling, checkpoint/commit, misspeculation recovery, cycle
accounting — is backend-independent and lives in
:class:`BaseDOALLExecutor`.  What varies between backends is only *how
one checkpoint epoch executes*:

* the **simulated** backend (:mod:`repro.parallel.executor`) runs the
  workers one at a time on the in-process interpreter — deterministic,
  fully observable, the reference semantics;
* the **process** backend (:mod:`repro.parallel.process_backend`) forks
  one OS process per worker per epoch and executes the worker slices
  concurrently, shipping per-iteration records and a packed
  :class:`~repro.runtime.fragments.EpochFragment` (interval-run format,
  with an explicit version field checked at commit) back over a pipe;
* the **pool** backend (:mod:`repro.parallel.pool_backend`) keeps a
  pool of worker processes resident across epochs (forked once per
  invocation, commit deltas synced between epochs) and ships the
  fragment payload through ``multiprocessing.shared_memory`` rings —
  see docs/BACKENDS.md for the full guide.

Both feed the same :meth:`RuntimeSystem.checkpoint` commit path with
fragments, so committed memory state, ``RuntimeStats`` and
misspeculation behaviour are identical by construction (the parity
suite in ``tests/test_backend_parity.py`` enforces this).

Backend selection: :func:`resolve_backend_name` honours an explicit
name first, then the ``REPRO_BACKEND`` environment variable, defaulting
to ``simulated``; :func:`make_executor` instantiates the corresponding
executor class.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..forensics.recorder import FLIGHT_DIR_ENV, heap_map_of, write_dump
from ..interp.errors import GuestExit, GuestFault, GuestTimeout, Misspeculation
from ..interp.interpreter import BlockBreakpoint, Frame, Hook, Interpreter
from ..ir.instructions import CmpPred, Phi
from ..ir.types import IntType
from ..ir.module import Module
from ..obs.log import get_logger
from ..obs.metrics import METRICS
from ..obs.trace import TRACER
from ..runtime.fragments import EpochFragment
from ..runtime.system import RuntimeSystem, WorkerState
from ..transform.plan import MAX_CHECKPOINT_PERIOD, ParallelPlan
from .costmodel import DEFAULT_COSTS, CostModelConfig
from .stats import ExecutionResult, InvocationResult
from .timeline import Timeline

log = get_logger("executor")

#: Names accepted by ``--backend`` and ``REPRO_BACKEND``.
BACKEND_NAMES = ("simulated", "process", "pool")

#: Environment variable that selects the default backend.
BACKEND_ENV = "REPRO_BACKEND"

_NEGATE = {
    CmpPred.LT: CmpPred.GE, CmpPred.GE: CmpPred.LT,
    CmpPred.LE: CmpPred.GT, CmpPred.GT: CmpPred.LE,
    CmpPred.EQ: CmpPred.NE, CmpPred.NE: CmpPred.EQ,
}


class BackendError(ValueError):
    """Unknown backend name, or a backend unusable on this platform."""


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Resolve the backend to use: explicit choice > ``REPRO_BACKEND``
    environment variable > ``simulated``."""
    resolved = name or os.environ.get(BACKEND_ENV) or "simulated"
    if resolved not in BACKEND_NAMES:
        raise BackendError(
            f"unknown backend {resolved!r} (available: "
            f"{', '.join(BACKEND_NAMES)})")
    return resolved


def make_executor(backend: Optional[str], module: Module,
                  plan: ParallelPlan, **kwargs) -> "BaseDOALLExecutor":
    """Instantiate the executor for ``backend`` (see
    :func:`resolve_backend_name` for the selection rules)."""
    resolved = resolve_backend_name(backend)
    if resolved == "process":
        from .process_backend import ProcessDOALLExecutor

        return ProcessDOALLExecutor(module, plan, **kwargs)
    if resolved == "pool":
        from .pool_backend import PoolDOALLExecutor

        return PoolDOALLExecutor(module, plan, **kwargs)
    from .executor import DOALLExecutor

    return DOALLExecutor(module, plan, **kwargs)


def trip_count(init: int, bound: int, step: int, pred: CmpPred,
               exit_on_true: bool) -> Optional[int]:
    """Number of iterations of a canonical counted loop, or None if it
    cannot be computed (non-standard shape)."""
    cont = _NEGATE[pred] if exit_on_true else pred
    if cont is CmpPred.LT and step > 0:
        return max(0, -(-(bound - init) // step))
    if cont is CmpPred.LE and step > 0:
        return max(0, (bound - init) // step + 1) if bound >= init else 0
    if cont is CmpPred.GT and step < 0:
        return max(0, -(-(init - bound) // -step))
    if cont is CmpPred.GE and step < 0:
        return max(0, (init - bound) // -step + 1) if init >= bound else 0
    if cont is CmpPred.NE:
        delta = bound - init
        if step != 0 and delta % step == 0 and delta // step >= 0:
            return delta // step
    return None


class _RecoveryHook(Hook):
    """Marks stores executed during sequential recovery as committed
    definitions (they must fail later live-in reads)."""

    def __init__(self, runtime: RuntimeSystem):
        self.runtime = runtime

    def on_store(self, interp, inst, addr: int, size: int) -> None:
        self.runtime.note_recovery_write(addr, size)


@dataclass
class IterationRecord:
    """What one worker observed executing one iteration.

    A forked worker ships these back so the parent can replay the exact
    bookkeeping the simulated backend would have done in-process: cycle
    and step increments, validation-cycle attribution, additive
    RuntimeStats counter deltas, deferred output texts, and — if the
    iteration misspeculated — the misspeculation terms.
    """

    iteration: int
    cycles: int
    steps: int
    validation_cycles: int
    stats_delta: Tuple[int, ...]
    io: Tuple[str, ...] = ()
    #: ``(kind, detail, exc_iteration, injected, from_fault)`` when the
    #: iteration ended in a misspeculation; ``from_fault`` distinguishes
    #: guest faults/timeouts (no timeline event, mirroring the simulated
    #: backend).
    misspec: Optional[Tuple[str, str, int, bool, bool]] = None
    #: Forensic conflict context captured in the worker at the point of
    #: misspeculation (plain dict; see
    #: :meth:`repro.runtime.system.RuntimeSystem.capture_conflict_context`).
    misspec_context: Optional[Dict[str, object]] = None


@dataclass
class WorkerEpochReport:
    """Everything one worker produced for one epoch."""

    wid: int
    records: List[IterationRecord] = field(default_factory=list)
    #: Present iff the slice completed without misspeculating.
    fragment: Optional[EpochFragment] = None
    #: Trace events recorded in the worker (empty unless tracing is on).
    trace_events: List[Dict[str, object]] = field(default_factory=list)
    #: In-worker :meth:`MetricsRegistry.dump` for the slice (empty unless
    #: tracing is on); the parent merges it under ``worker.<wid>.*``.
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)


class BaseDOALLExecutor:
    """Backend-independent speculative DOALL driver.

    Subclasses implement :meth:`_execute_epoch`; everything else —
    region detection, sequential fallback, checkpoint commit, recovery,
    final resume — is shared.
    """

    #: Name used for ``--backend`` selection and reporting.
    backend_name = "base"

    def __init__(
        self,
        module: Module,
        plan: ParallelPlan,
        workers: int = 24,
        costs: Optional[CostModelConfig] = None,
        checkpoint_period: Optional[int] = None,
        misspec_period: int = 0,
        misspec_burst: int = 0,
        min_parallel_trips: int = 2,
        record_timeline: bool = False,
        max_steps: int = 2_000_000_000,
        controller=None,
        flight_dir: Optional[str] = None,
    ):
        self.module = module
        self.plan = plan
        self.workers = max(1, workers)
        self.costs = costs or DEFAULT_COSTS
        # None = let the runtime pick a period per invocation ("the runtime
        # selects a checkpoint period k before the parallel invocation").
        self.checkpoint_period = (
            min(checkpoint_period, MAX_CHECKPOINT_PERIOD)
            if checkpoint_period else None
        )
        self.misspec_period = misspec_period
        # 0 = inject forever; N > 0 = only inject within the first N
        # iterations (a bounded "burst", letting adaptive runs demonstrate
        # recovery once the storm passes).
        self.misspec_burst = misspec_burst
        self.min_parallel_trips = min_parallel_trips
        #: Adaptive speculation controller
        #: (:class:`repro.adapt.SpeculationController`); None = fixed policy.
        self.controller = controller
        self.timeline = Timeline() if record_timeline else None

        global_regions = {
            name: kind.base for name, kind in plan.global_placements.items()
        }
        self.interp = Interpreter(module, max_steps=max_steps,
                                  global_regions=global_regions)
        self.runtime = RuntimeSystem(module, plan, self.interp)
        self.interp.block_breakpoints.add(plan.loop.header)
        self.runtime.controller = controller
        if controller is not None:
            controller.recorder = self.runtime.recorder
        #: Directory for flight-recorder dumps; None (and no
        #: ``REPRO_FLIGHT_DIR`` in the environment) disables dumping.
        self.flight_dir = (flight_dir if flight_dir is not None
                           else os.environ.get(FLIGHT_DIR_ENV))
        #: Path of the dump written by the last :meth:`run`, if any.
        self.flight_dump_path: Optional[str] = None
        self._invocations: List[InvocationResult] = []
        self._cycles_in_invocations = 0
        self._header_phi_count = sum(
            1 for inst in plan.loop.header.instructions if isinstance(inst, Phi)
        )

    # -- whole-program run ----------------------------------------------------

    def flight_snapshot(self, crash: bool = False) -> Dict[str, object]:
        """Materialise the flight recorder plus heap map and classifier
        verdicts as one snapshot dict (the explain engine's input)."""
        runtime = self.runtime
        heap_map = (heap_map_of(runtime.main_space)
                    if runtime.recorder.enabled else [])
        return runtime.recorder.snapshot(
            heap_map=heap_map,
            site_heaps=self.plan.assignment.site_heaps,
            crash=crash)

    def _dump_flight(self, crash: bool) -> Optional[Path]:
        """Write the flight dump, if a dump directory is configured."""
        if not self.flight_dir or not self.runtime.recorder.enabled:
            return None
        name = f"{self.module.name}.{self.backend_name}.flight.jsonl"
        path = write_dump(self.flight_snapshot(crash=crash),
                          Path(self.flight_dir) / name)
        self.flight_dump_path = str(path)
        log.info("flight dump written: %s", path)
        return path

    def run(self, entry: str = "main", args: Sequence[object] = ()) -> ExecutionResult:
        """Execute the whole guest program; on misspeculation or crash,
        dump the flight recorder before returning/re-raising."""
        recorder = self.runtime.recorder
        if recorder.enabled:
            recorder.set_metadata(backend=self.backend_name,
                                  module=self.module.name,
                                  workers=self.workers)
        try:
            result = self._run_guest(entry, args)
        except BaseException:
            self._dump_flight(crash=True)
            raise
        if self.runtime.stats.misspec_count() > 0:
            self._dump_flight(crash=False)
        return result

    def _run_guest(self, entry: str, args: Sequence[object]) -> ExecutionResult:
        interp = self.interp
        fn = self.module.function_named(entry)
        interp.push_function(fn, args)
        result: object = None
        try:
            while interp.frames:
                try:
                    result = interp.run_until_event()
                except BlockBreakpoint as bp:
                    if bp.prev in self.plan.loop.blocks:
                        # Back edge during a sequential (fallback) pass of
                        # the loop: just continue.
                        interp.resume_at(bp.frame, bp.target, bp.prev)
                    else:
                        self._run_invocation(bp)
        except GuestExit as e:
            interp.exit_code = e.code
            result = e.code
            interp.frames.clear()
        adapt = None
        if self.controller is not None:
            self.controller.save()
            adapt = self.controller.summary()
        return ExecutionResult(
            return_value=result,
            output=list(interp.output),
            workers=self.workers,
            sequential_cycles_outside=interp.cycles - self._cycles_in_invocations,
            invocations=self._invocations,
            runtime_stats=self.runtime.stats,
            adapt=adapt,
        )

    # -- one parallel-region invocation ------------------------------------------

    def _iv_value(self, i: int, init: int) -> int:
        iv = self.plan.iv
        value = init + i * iv.step
        ty = iv.phi.type
        if isinstance(ty, IntType):
            value = ty.wrap(value)
        return value

    def _execute_epoch(
        self, frame: Frame, inv: InvocationResult, epoch_start: int,
        epoch_end: int, init: int,
    ) -> Tuple[Optional[Tuple[int, Misspeculation]],
               Optional[List[EpochFragment]]]:
        """Execute iterations ``[epoch_start, epoch_end)`` across the
        workers.

        Returns ``(earliest, fragments)``: ``earliest`` is the
        ``(iteration, exception)`` of the earliest misspeculation (or
        None on a clean epoch); ``fragments`` is the per-worker epoch
        state to commit, or None to let the checkpoint extract it from
        the in-process worker states.
        """
        raise NotImplementedError

    def _run_invocation(self, bp: BlockBreakpoint) -> None:
        interp = self.interp
        plan = self.plan
        runtime = self.runtime
        frame = bp.frame
        cycles_at_entry = interp.cycles

        init = int(interp.value_of(frame, plan.iv.init))
        bound = int(interp.value_of(frame, plan.iv.bound))
        trips = trip_count(init, bound, plan.iv.step, plan.iv.pred,
                           plan.iv.exit_on_true)
        if trips is None or trips < self.min_parallel_trips:
            # Not worth (or not able to) parallelize this invocation: run
            # the loop sequentially in place.
            log.debug("sequential fallback: trip count %s below minimum %d",
                      trips, self.min_parallel_trips)
            if TRACER.enabled:
                TRACER.instant("executor.sequential_fallback", cat="executor",
                               trips=trips,
                               min_parallel_trips=self.min_parallel_trips)
            interp.resume_at(frame, bp.target, bp.prev)
            return

        workers = self.workers
        runtime.begin_invocation(workers)
        span = TRACER.span("executor.invocation", cat="executor",
                           invocation=runtime.invocation_index,
                           backend=self.backend_name,
                           trips=trips, workers=workers)
        if TRACER.enabled:
            # Progress gauges polled live by the status endpoint / `top`.
            METRICS.counter("executor.invocations").inc()
            METRICS.gauge("executor.progress.trips").set(trips)
            METRICS.gauge("executor.progress.iteration").set(0)
            METRICS.gauge("executor.workers").set(workers)
        costs = self.costs
        spawn = costs.spawn_time(workers)
        inv = InvocationResult(index=runtime.invocation_index, trips=trips,
                               workers=workers)
        inv.spawn_cycles = spawn
        stats = runtime.stats
        base = {
            "private_read": stats.private_read_cycles,
            "private_write": stats.private_write_cycles,
            "separation": stats.separation_cycles,
            "redux": stats.redux_cycles,
            "misc": stats.misc_validation_cycles,
            "checkpoint": stats.checkpoint_cycles,
        }
        for worker in runtime.workers:
            worker.clock = spawn
        if self.timeline is not None:
            self.timeline.add("spawn", None, 0, spawn)

        main_stack = interp.swap_stack([])
        # Checkpoint period: aim for a handful of checkpoints per
        # invocation, bounded by the metadata-byte limit of 253.
        k = self.checkpoint_period or max(
            2, min(MAX_CHECKPOINT_PERIOD, trips // 5))
        controller = self.controller
        if controller is not None:
            controller.begin_invocation(k)

        next_iter = 0
        while next_iter < trips:
            if controller is not None and controller.should_fallback():
                span_len = controller.begin_fallback()
                seq_end = min(next_iter + span_len, trips)
                self._run_sequential_span(frame, inv, next_iter, seq_end, init)
                controller.end_fallback(seq_end - next_iter)
                next_iter = seq_end
                continue
            if controller is not None:
                k = controller.next_epoch_size()
            epoch_end = min(next_iter + k, trips)
            # One span per checkpoint epoch, in the shared base class, so
            # the simulated / process / pool backends all record the same
            # parent-side span chain (the service tier's per-job traces
            # rely on this being structurally identical across backends).
            epoch_span = TRACER.span("executor.epoch", cat="executor",
                                     invocation=runtime.invocation_index,
                                     epoch_start=next_iter,
                                     epoch_end=epoch_end)
            earliest, fragments = self._execute_epoch(
                frame, inv, next_iter, epoch_end, init)

            if earliest is None:
                ckpt0 = stats.checkpoint_cycles
                try:
                    with TRACER.span("executor.commit", cat="executor",
                                     epoch_start=next_iter,
                                     epoch_end=epoch_end):
                        runtime.checkpoint(next_iter, epoch_end,
                                           fragments=fragments)
                    ckpt_cost = stats.checkpoint_cycles - ckpt0
                    share = ckpt_cost // max(1, workers)
                    for worker in runtime.workers:
                        worker.clock += share
                    inv.checkpoints += 1
                    if TRACER.enabled:
                        METRICS.counter("executor.epochs").inc()
                        METRICS.counter("executor.iterations.committed").inc(
                            epoch_end - next_iter)
                        METRICS.gauge("executor.progress.iteration").set(
                            epoch_end)
                    if self.timeline is not None:
                        t = max(w.clock for w in runtime.workers)
                        self.timeline.add("checkpoint", None, t - share, t,
                                          f"iters [{next_iter},{epoch_end})")
                    epoch_span.end(outcome="committed",
                                   iterations=epoch_end - next_iter)
                    next_iter = epoch_end
                except Misspeculation as exc:
                    runtime.record_misspeculation(exc)
                    at = exc.iteration if exc.iteration >= 0 else next_iter
                    earliest = (min(at, epoch_end - 1), exc)

            if earliest is not None:
                if controller is not None:
                    controller.on_squash(earliest[0] + 1 - next_iter,
                                         earliest[1].kind)
                epoch_span.end(outcome="misspeculated",
                               at_iteration=earliest[0],
                               misspec_kind=earliest[1].kind)
                next_iter = self._recover(frame, inv, next_iter, earliest, init)

        # Join: final state is already committed by the last checkpoint.
        wall = max((w.clock for w in runtime.workers), default=spawn)
        inv.join_cycles = costs.join_time(workers)
        inv.wall_cycles = wall + inv.join_cycles
        if self.timeline is not None:
            self.timeline.add("join", None, wall, inv.wall_cycles)
        inv.validation_cycles = {
            "private_read": stats.private_read_cycles - base["private_read"],
            "private_write": stats.private_write_cycles - base["private_write"],
            "separation": stats.separation_cycles - base["separation"],
            "redux": stats.redux_cycles - base["redux"],
            "misc": stats.misc_validation_cycles - base["misc"],
        }
        inv.checkpoint_cycles = stats.checkpoint_cycles - base["checkpoint"]
        runtime.end_invocation()
        self._invocations.append(inv)
        log.info("invocation %d done: %d trips, %d checkpoint(s), "
                 "%d misspeculation(s), %d wall cycles",
                 inv.index, inv.trips, inv.checkpoints, inv.misspeculations,
                 inv.wall_cycles)
        # Simulated-cycle dual alongside the span's wall-clock duration.
        span.end(wall_cycles=inv.wall_cycles, checkpoints=inv.checkpoints,
                 misspeculations=inv.misspeculations,
                 recovered_iterations=inv.recovered_iterations,
                 checkpoint_period=k)

        # Resume the main thread at the loop exit: the IV phi takes its
        # final value and the header's exit test runs normally.
        interp.swap_stack(main_stack)
        frame.regs[plan.iv.phi] = self._iv_value(trips, init)
        frame.prev_block = frame.block
        frame.block = plan.loop.header
        frame.index = self._header_phi_count
        self._cycles_in_invocations += interp.cycles - cycles_at_entry

    # -- iteration execution -------------------------------------------------------

    def _inject_misspec(self, i: int) -> bool:
        """Should iteration ``i`` raise an injected misspeculation?
        Period 0 disables injection; a non-zero burst limits it to the
        first ``misspec_burst`` iterations of each invocation."""
        if not self.misspec_period or (i + 1) % self.misspec_period != 0:
            return False
        return not self.misspec_burst or i < self.misspec_burst

    def _injected_misspec(self, worker: WorkerState, i: int) -> Misspeculation:
        """Build the injected misspeculation for iteration ``i``, with a
        deterministic forensic context attached (the detail string stays
        exactly ``artificially injected`` so site attribution — and hence
        the controller's demotion policy — is unaffected by injection)."""
        exc = Misspeculation("injected", "artificially injected", i)
        exc.context = self.runtime.injected_conflict_context(worker, i)
        return exc

    def _execute_iteration(self, worker: WorkerState, i: int, init: int) -> None:
        """Run one loop iteration to the next header entry in the worker's
        context, with full speculation support."""
        interp = self.interp
        plan = self.plan
        frame = worker.frame
        self.runtime.begin_iteration(worker, i)
        interp.enter_block(frame, plan.loop.header, fire_breakpoints=False)
        frame.regs[plan.iv.phi] = self._iv_value(i, init)
        while True:
            try:
                interp.run_until_event()
            except BlockBreakpoint as bblk:
                if bblk.target is plan.loop.header and len(interp.frames) == 1:
                    break
                interp.resume_at(bblk.frame, bblk.target, bblk.prev)
                continue
            except GuestExit as e:
                raise Misspeculation(
                    "control", f"guest exit({e.code}) inside speculative "
                    f"region", i) from e
            # run_until_event returned: the frame stack drained without
            # re-entering the loop header.
            raise Misspeculation(
                "control", "loop function returned inside the parallel "
                "region", i)
        self.runtime.end_iteration(worker, i)

    def _execute_iteration_plain(self, frame: Frame, i: int, init: int) -> None:
        """Non-speculative re-execution of one iteration (recovery)."""
        interp = self.interp
        plan = self.plan
        interp.enter_block(frame, plan.loop.header, fire_breakpoints=False)
        frame.regs[plan.iv.phi] = self._iv_value(i, init)
        while True:
            try:
                interp.run_until_event()
            except BlockBreakpoint as bblk:
                if bblk.target is plan.loop.header and len(interp.frames) == 1:
                    return
                interp.resume_at(bblk.frame, bblk.target, bblk.prev)
                continue
            raise GuestFault(
                "loop function returned during non-speculative recovery")

    # -- adaptive sequential fallback ---------------------------------------------------

    def _run_sequential_span(self, frame: Frame, inv: InvocationResult,
                             start: int, end: int, init: int) -> None:
        """Run iterations ``[start, end)`` sequentially and committed
        (non-speculative), as directed by the adaptive controller's
        fallback policy after repeated whole-epoch squashes.  Reuses the
        recovery machinery: stores commit straight to main memory and are
        marked as committed definitions, then speculation resumes at
        ``end`` with freshly forked workers."""
        interp = self.interp
        runtime = self.runtime
        t_start = max(w.clock for w in runtime.workers)
        runtime.begin_sequential_span()
        seq_frame = frame.copy()
        interp.swap_stack([seq_frame])
        hook = _RecoveryHook(runtime)
        interp.hooks.append(hook)
        c0 = interp.cycles
        try:
            for i in range(start, end):
                self._execute_iteration_plain(seq_frame, i, init)
        finally:
            interp.hooks.remove(hook)
            interp.swap_stack([])
        cycles = interp.cycles - c0
        inv.sequential_cycles += cycles
        inv.sequential_iterations += end - start
        runtime.resume_after_recovery(end)
        t_end = t_start + self.costs.recovery_fixed + cycles
        for worker in runtime.workers:
            worker.clock = t_end
        if self.timeline is not None:
            self.timeline.add("sequential", None, t_start, t_end,
                              f"iters [{start},{end})")
        log.info("adaptive fallback: ran iterations [%d,%d) sequentially "
                 "in %d cycles", start, end, cycles)
        if runtime.recorder.enabled:
            runtime.recorder.record("epoch", outcome="sequential",
                                    epoch_start=start, epoch_end=end,
                                    cycles=cycles)
        if TRACER.enabled:
            METRICS.counter("adapt.sequential_iterations").inc(end - start)
            TRACER.instant("executor.sequential_span", cat="executor",
                           start=start, end=end, cycles=cycles)

    # -- recovery -----------------------------------------------------------------------

    def _recover(self, frame: Frame, inv: InvocationResult, epoch_start: int,
                 earliest: Tuple[int, Misspeculation], init: int) -> int:
        """Squash, re-execute [epoch_start, m] sequentially, resume.
        Returns the next iteration to execute speculatively."""
        interp = self.interp
        runtime = self.runtime
        m, _exc = earliest
        inv.misspeculations += 1
        t_abort = max(w.clock for w in runtime.workers)

        runtime.squash_to_recovery(m)
        recovery_frame = frame.copy()
        interp.swap_stack([recovery_frame])
        hook = _RecoveryHook(runtime)
        interp.hooks.append(hook)
        c0 = interp.cycles
        try:
            for i in range(epoch_start, m + 1):
                self._execute_iteration_plain(recovery_frame, i, init)
        finally:
            interp.hooks.remove(hook)
            interp.swap_stack([])
        recovery_cycles = interp.cycles - c0
        inv.recovery_cycles += recovery_cycles
        inv.recovered_iterations += m + 1 - epoch_start

        t_resume = t_abort + self.costs.recovery_fixed + recovery_cycles
        if self.timeline is not None:
            self.timeline.add("recovery", None, t_abort, t_resume,
                              f"iters [{epoch_start},{m}]")
        log.info("recovery: re-executed iterations [%d,%d] in %d cycles",
                 epoch_start, m, recovery_cycles)
        if runtime.recorder.enabled:
            runtime.recorder.record("epoch", outcome="squash",
                                    epoch_start=epoch_start, epoch_end=m + 1,
                                    misspec_iteration=m,
                                    recovered=m + 1 - epoch_start,
                                    cycles=recovery_cycles)
        if TRACER.enabled:
            METRICS.counter("executor.recoveries").inc()
            METRICS.histogram("executor.recovery.cycles").observe(
                recovery_cycles)
            TRACER.instant("executor.recovery", cat="executor",
                           misspec_iteration=m, epoch_start=epoch_start,
                           recovered_iterations=m + 1 - epoch_start,
                           cycles=recovery_cycles)
        runtime.resume_after_recovery(m + 1)
        for worker in runtime.workers:
            worker.clock = t_resume
        return m + 1
