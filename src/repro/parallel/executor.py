"""Simulated-multicore DOALL executor (the deterministic reference
backend).

Drives a transformed module the way the paper's runtime drives worker
processes (Figure 5): the main "process" runs sequentially until it
reaches the parallel region; iterations are distributed round-robin over
simulated workers, each with its own copy-on-write view of memory and its
own shadow heap; checkpoints validate and commit every ``k`` iterations;
misspeculation squashes back to the last checkpoint and re-executes
sequentially before parallel execution resumes.

Workers are simulated one at a time (deterministically), which is
behaviourally equivalent to concurrent execution because workers share no
speculative state — exactly the property Privateer validates.  Timing is
modelled with per-worker cycle clocks; see ``costmodel.py``.  For real
concurrent execution of the same semantics, see
:mod:`repro.parallel.process_backend`; the shared driver lives in
:mod:`repro.parallel.backend`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..interp.errors import GuestFault, GuestTimeout, Misspeculation
from ..interp.interpreter import Frame
from ..runtime.fragments import EpochFragment
from .backend import BaseDOALLExecutor, _RecoveryHook, trip_count  # noqa: F401
from .stats import InvocationResult


class DOALLExecutor(BaseDOALLExecutor):
    """The simulated backend: one in-process interpreter, workers run
    one at a time with per-worker cycle clocks."""

    backend_name = "simulated"

    def _execute_epoch(
        self, frame: Frame, inv: InvocationResult, epoch_start: int,
        epoch_end: int, init: int,
    ) -> Tuple[Optional[Tuple[int, Misspeculation]],
               Optional[List[EpochFragment]]]:
        interp = self.interp
        runtime = self.runtime
        stats = runtime.stats
        workers = self.workers
        main_space = interp.space
        earliest: Optional[Tuple[int, Misspeculation]] = None

        for worker in runtime.workers:
            interp.space = worker.space
            if worker.frame is None:
                worker.frame = frame.copy()
            interp.swap_stack([worker.frame])
            for i in range(epoch_start, epoch_end):
                if i % workers != worker.wid:
                    continue
                if earliest is not None and i > earliest[0]:
                    break
                c0 = interp.cycles
                v0 = stats.validation_cycles()
                t0 = worker.clock
                try:
                    self._execute_iteration(worker, i, init)
                    if self._inject_misspec(i):
                        raise self._injected_misspec(worker, i)
                except Misspeculation as exc:
                    runtime.capture_conflict_context(worker, exc)
                    runtime.record_misspeculation(
                        exc, injected=(exc.kind == "injected"))
                    worker.clock += interp.cycles - c0
                    if earliest is None or i < earliest[0]:
                        earliest = (i, exc)
                    if self.timeline is not None:
                        self.timeline.add("misspec", worker.wid, t0,
                                          worker.clock, exc.kind)
                    break
                except (GuestFault, GuestTimeout) as fault:
                    exc = Misspeculation("fault", str(fault), i)
                    runtime.record_misspeculation(exc)
                    worker.clock += interp.cycles - c0
                    if earliest is None or i < earliest[0]:
                        earliest = (i, exc)
                    break
                delta = interp.cycles - c0
                vdelta = stats.validation_cycles() - v0
                worker.clock += delta
                inv.useful_cycles += max(0, delta - vdelta)
                if self.timeline is not None:
                    self.timeline.add("iteration", worker.wid, t0,
                                      worker.clock, f"i={i}")
            interp.swap_stack([])
        interp.space = main_space
        # fragments=None: the checkpoint extracts them from the live
        # in-process worker states.
        return earliest, None
