"""Serializable per-worker epoch state shipped to the checkpoint.

An :class:`EpochFragment` is everything the commit phase of a checkpoint
(§5.2) needs to know about one worker's epoch: which private bytes it
read apparently-live-in (for phase-two privacy validation), which bytes
it wrote and at which iteration (for the latest-iteration-wins merge),
and the partial results accumulated in its reduction-heap replica.

The simulated backend extracts fragments in-process right before the
commit; the process backend extracts them inside each forked worker and
pickles them back over a pipe.  Both feed the exact same
:meth:`~repro.runtime.system.RuntimeSystem.checkpoint` commit path, so
checkpoint semantics are identical across backends by construction.

Format version 2 (``format`` field): the historical per-byte
``writes: List[(offset, iteration, kind, value)]`` and ``Set[int]``
offset fields are replaced by sorted half-open interval runs plus packed
``bytes`` payloads — ``write_runs`` carries ``(start, end, rel_iter)``
per maximal run of consecutive bytes written at the same iteration,
with the per-byte kinds and values concatenated in run order in
``write_kinds``/``write_values``.  This shrinks the pickled size on the
process-backend pipes from ~60 bytes per written byte to ~1, and lets
the checkpoint validate and merge with slice operations instead of
per-byte loops.  Every field is a plain int/bytes/tuple container, so
fragments still round-trip through :mod:`pickle` with no custom
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from .intervals import runs_from_offsets
from .shadow import MAX_TIMESTAMP, TS_BASE

#: Kinds for one written private byte in :attr:`EpochFragment.write_kinds`.
WRITE_VALUE = 0   #: normal write: carry the byte value to commit
WRITE_FREED = 1   #: the containing object was freed within the epoch
WRITE_LOCAL = 2   #: worker-local allocation, absent from main memory

#: Wire-format version of :class:`EpochFragment`; bump on layout changes
#: so a mixed-version parent/child pairing fails loudly instead of
#: merging garbage.
FRAGMENT_FORMAT = 2


@dataclass
class ReduxElement:
    """One element of a reduction object with its partial result.

    ``operator is None`` marks an element whose object has no reduction
    plan (the runtime still accounts its bytes, but has no merge recipe
    for it — matching the historical checkpoint behaviour).
    """

    addr: int
    size: int
    operator: Optional[str]  # BinOpKind name, e.g. "ADD"/"FADD"/"MUL"
    is_float: bool
    delta: object            # int or float partial result


@dataclass
class EpochFragment:
    """One worker's speculative state for one checkpoint epoch."""

    wid: int
    epoch_start: int
    #: Wire-format version; always :data:`FRAGMENT_FORMAT` for fragments
    #: built by this code.
    format: int = FRAGMENT_FORMAT
    #: Sorted coalesced half-open runs of private-heap byte offsets read
    #: while apparently live-in (phase-2 privacy validation input).
    read_live_in_runs: Tuple[Tuple[int, int], ...] = ()
    #: Sorted ``(start, end, rel_iter)`` runs of written bytes;
    #: ``rel_iter`` is the writing iteration relative to ``epoch_start``.
    #: Runs are maximal over consecutive offsets with the same iteration
    #: (a kind change does *not* split a run).
    write_runs: Tuple[Tuple[int, int, int], ...] = ()
    #: One ``WRITE_*`` code per written byte, concatenated in run order.
    write_kinds: bytes = b""
    #: One committed byte value per written byte, in run order
    #: (0 for :data:`WRITE_FREED`/:data:`WRITE_LOCAL`).
    write_values: bytes = b""
    #: Sorted coalesced runs of every byte offset the worker wrote this
    #: epoch — a superset of ``write_runs`` coverage (prediction restores
    #: count, and freed bytes keep their offsets); cross-worker check
    #: input.
    epoch_written_runs: Tuple[Tuple[int, int], ...] = ()
    #: Reduction partial results, one entry per element.
    redux_elements: List[ReduxElement] = field(default_factory=list)
    #: Dirty private pages, for the checkpoint copy-cost model.
    dirty_private_pages: int = 0

    @classmethod
    def pack(cls, wid: int, epoch_start: int, *,
             read_live_in: Iterable[int] = (),
             writes: Iterable[Tuple[int, int, int, int]] = (),
             epoch_written: Iterable[int] = (),
             redux_elements: Optional[List[ReduxElement]] = None,
             dirty_private_pages: int = 0) -> "EpochFragment":
        """Build a fragment from per-byte inputs (the format-1 shape):
        ``writes`` is ``(offset, absolute iteration, kind, value)`` per
        byte, at most one entry per offset.  This is the oracle/test
        construction path; the vectorized extractor builds the run form
        directly."""
        ordered = sorted(writes)
        runs: List[Tuple[int, int, int]] = []
        kinds = bytearray()
        values = bytearray()
        prev_offset = None
        for offset, iteration, kind, value in ordered:
            if offset == prev_offset:
                raise ValueError(f"duplicate write offset {offset}")
            prev_offset = offset
            rel = iteration - epoch_start
            if not 0 <= rel <= MAX_TIMESTAMP - TS_BASE:
                raise ValueError(
                    f"iteration {iteration} out of range for epoch start "
                    f"{epoch_start}")
            if runs and offset == runs[-1][1] and rel == runs[-1][2]:
                start, _end, _rel = runs[-1]
                runs[-1] = (start, offset + 1, rel)
            else:
                runs.append((offset, offset + 1, rel))
            kinds.append(kind)
            values.append(value)
        return cls(
            wid=wid, epoch_start=epoch_start,
            read_live_in_runs=tuple(runs_from_offsets(read_live_in)),
            write_runs=tuple(runs),
            write_kinds=bytes(kinds),
            write_values=bytes(values),
            epoch_written_runs=tuple(runs_from_offsets(epoch_written)),
            redux_elements=redux_elements if redux_elements is not None else [],
            dirty_private_pages=dirty_private_pages)

    # -- per-byte views (oracle, forensics, and test paths) -----------------

    def iter_writes(self) -> Iterator[Tuple[int, int, int, int]]:
        """Yield ``(offset, absolute iteration, kind, value)`` per written
        byte, in offset order — the format-1 view of the packed runs."""
        pos = 0
        kinds = self.write_kinds
        values = self.write_values
        for start, end, rel in self.write_runs:
            iteration = self.epoch_start + rel
            for b in range(start, end):
                yield b, iteration, kinds[pos], values[pos]
                pos += 1

    def write_spans(self) -> List[Tuple[int, int]]:
        """The ``(start, end)`` extents of :attr:`write_runs`."""
        return [(start, end) for start, end, _rel in self.write_runs]

    def write_offsets(self) -> Set[int]:
        out: Set[int] = set()
        for start, end, _rel in self.write_runs:
            out.update(range(start, end))
        return out

    def write_byte_count(self) -> int:
        return len(self.write_kinds)

    def read_live_in_offsets(self) -> Set[int]:
        out: Set[int] = set()
        for start, end in self.read_live_in_runs:
            out.update(range(start, end))
        return out

    def epoch_written_offsets(self) -> Set[int]:
        out: Set[int] = set()
        for start, end in self.epoch_written_runs:
            out.update(range(start, end))
        return out

    def iteration_of(self, offset: int) -> Optional[int]:
        """Absolute iteration that wrote ``offset``, or None if this
        fragment did not write it.  Misspeculation-path only."""
        for start, end, rel in self.write_runs:
            if start <= offset < end:
                return self.epoch_start + rel
        return None
