"""Serializable per-worker epoch state shipped to the checkpoint.

An :class:`EpochFragment` is everything the commit phase of a checkpoint
(§5.2) needs to know about one worker's epoch: which private bytes it
read apparently-live-in (for phase-two privacy validation), which bytes
it wrote and at which iteration (for the latest-iteration-wins merge),
and the partial results accumulated in its reduction-heap replica.

The simulated backend extracts fragments in-process right before the
commit; the process backend extracts them inside each forked worker and
pickles them back over a pipe.  Both feed the exact same
:meth:`~repro.runtime.system.RuntimeSystem.checkpoint` commit path, so
checkpoint semantics are identical across backends by construction.
Every field is a plain int/str/tuple/set container, so fragments
round-trip through :mod:`pickle` with no custom machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

#: Kinds for one written private byte in :attr:`EpochFragment.writes`.
WRITE_VALUE = 0   #: normal write: carry the byte value to commit
WRITE_FREED = 1   #: the containing object was freed within the epoch
WRITE_LOCAL = 2   #: worker-local allocation, absent from main memory


@dataclass
class ReduxElement:
    """One element of a reduction object with its partial result.

    ``operator is None`` marks an element whose object has no reduction
    plan (the runtime still accounts its bytes, but has no merge recipe
    for it — matching the historical checkpoint behaviour).
    """

    addr: int
    size: int
    operator: Optional[str]  # BinOpKind name, e.g. "ADD"/"FADD"/"MUL"
    is_float: bool
    delta: object            # int or float partial result


@dataclass
class EpochFragment:
    """One worker's speculative state for one checkpoint epoch."""

    wid: int
    epoch_start: int
    #: Private-heap byte offsets read while apparently live-in (phase-2
    #: privacy validation input).
    read_live_in: Set[int] = field(default_factory=set)
    #: ``(offset, absolute iteration, kind, value)`` per written private
    #: byte; ``kind`` is one of the ``WRITE_*`` codes, ``value`` is the
    #: byte to commit for :data:`WRITE_VALUE` (0 otherwise).
    writes: List[Tuple[int, int, int, int]] = field(default_factory=list)
    #: All byte offsets the worker wrote this epoch (cross-worker check).
    epoch_written: Set[int] = field(default_factory=set)
    #: Reduction partial results, one entry per element.
    redux_elements: List[ReduxElement] = field(default_factory=list)
    #: Dirty private pages, for the checkpoint copy-cost model.
    dirty_private_pages: int = 0

    def write_offsets(self) -> Set[int]:
        return {w[0] for w in self.writes}
