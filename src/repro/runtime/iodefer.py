"""I/O deferral (§6.1): stream output issued inside the speculative
region is buffered per iteration and committed — in iteration order —
only when the covering checkpoint is marked non-speculative."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple


class DeferredOutput:
    """Per-invocation buffer of (iteration, sequence, text) records."""

    def __init__(self) -> None:
        self._records: Dict[int, List[str]] = {}
        self.deferred_count = 0

    def emit(self, iteration: int, text: str) -> None:
        self._records.setdefault(iteration, []).append(text)
        self.deferred_count += 1

    def squash_from(self, iteration: int) -> None:
        """Discard speculative output at or beyond ``iteration``."""
        for key in [i for i in self._records if i >= iteration]:
            del self._records[key]

    def commit_range(self, start: int, end: int,
                     sink: Callable[[str], None]) -> int:
        """Flush output for iterations in [start, end) in order; returns
        the number of records committed."""
        committed = 0
        for i in range(start, end):
            for text in self._records.pop(i, ()):  # type: ignore[arg-type]
                sink(text)
                committed += 1
        return committed

    def records_for(self, iteration: int) -> Tuple[str, ...]:
        """The texts buffered for one iteration (a forked worker ships
        these back so the parent can commit them at the checkpoint)."""
        return tuple(self._records.get(iteration, ()))

    def absorb(self, iteration: int, texts) -> None:
        """Append texts shipped back from a worker process, preserving
        the per-iteration ordering the worker emitted them in."""
        for text in texts:
            self.emit(iteration, text)

    def pending(self) -> int:
        return sum(len(v) for v in self._records.values())
