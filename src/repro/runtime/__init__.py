"""Privateer runtime support system: logical heaps, speculative
validation, checkpoints, and recovery (§5)."""

from .intervals import IntervalSet
from .iodefer import DeferredOutput
from .shadow import (
    LIVE_IN,
    MAX_TIMESTAMP,
    OLD_WRITE,
    READ_LIVE_IN,
    SHADOW_ENV,
    TS_BASE,
    ReferenceShadowHeap,
    ShadowHeap,
    make_shadow,
    timestamp_for,
    use_reference,
)
from .stats import CheckpointRecord, MisspecEvent, RuntimeStats
from .system import RuntimeSystem, WorkerState

__all__ = [
    "CheckpointRecord", "DeferredOutput", "IntervalSet", "LIVE_IN",
    "MAX_TIMESTAMP", "MisspecEvent", "OLD_WRITE", "READ_LIVE_IN",
    "ReferenceShadowHeap", "RuntimeStats", "RuntimeSystem", "SHADOW_ENV",
    "ShadowHeap", "TS_BASE", "WorkerState", "make_shadow", "timestamp_for",
    "use_reference",
]
