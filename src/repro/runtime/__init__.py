"""Privateer runtime support system: logical heaps, speculative
validation, checkpoints, and recovery (§5)."""

from .iodefer import DeferredOutput
from .shadow import (
    LIVE_IN,
    MAX_TIMESTAMP,
    OLD_WRITE,
    READ_LIVE_IN,
    TS_BASE,
    ShadowHeap,
    timestamp_for,
)
from .stats import CheckpointRecord, MisspecEvent, RuntimeStats
from .system import RuntimeSystem, WorkerState

__all__ = [
    "CheckpointRecord", "DeferredOutput", "LIVE_IN", "MAX_TIMESTAMP",
    "MisspecEvent", "OLD_WRITE", "READ_LIVE_IN", "RuntimeStats",
    "RuntimeSystem", "ShadowHeap", "TS_BASE", "WorkerState", "timestamp_for",
]
