"""Half-open interval runs over private-heap byte offsets.

The vectorized shadow/checkpoint layers never enumerate individual byte
offsets on the hot path; they carry ``(start, end)`` half-open runs and
operate on ``bytes``/``bytearray`` slices.  This module is the shared
vocabulary: a lazily-coalescing :class:`IntervalSet` (the bulk
replacement for the per-byte ``Set[int]`` bookkeeping in
``WorkerState``/``ShadowHeap``) plus the run algebra the checkpoint
needs (coalescing, union, first-overlap intersection) and the two
byte-scan helpers that split a metadata window into runs at C speed
(``bytes.translate`` + ``find`` for a single value; the ``lstrip`` trick
for maximal constant-value runs).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Run = Tuple[int, int]


def coalesce(runs: Iterable[Run]) -> List[Run]:
    """Sort and merge overlapping/adjacent half-open runs."""
    merged: List[Run] = []
    for start, end in sorted(runs):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            if end > last_end:
                merged[-1] = (last_start, end)
        else:
            merged.append((start, end))
    return merged


def runs_from_offsets(offsets: Iterable[int]) -> List[Run]:
    """Group a set of byte offsets into maximal consecutive runs."""
    ordered = sorted(set(offsets))
    runs: List[Run] = []
    for b in ordered:
        if runs and b == runs[-1][1]:
            runs[-1] = (runs[-1][0], b + 1)
        else:
            runs.append((b, b + 1))
    return runs


def union_runs(run_lists: Iterable[Sequence[Run]]) -> List[Run]:
    """Coalesced union of several run lists."""
    flat: List[Run] = []
    for runs in run_lists:
        flat.extend(runs)
    return coalesce(flat)


def first_overlap(a: Sequence[Run], b: Sequence[Run]) -> Optional[int]:
    """Lowest byte offset contained in both sorted coalesced run lists,
    or None when they are disjoint.  Two-pointer sweep: O(len(a)+len(b))
    regardless of how many bytes the runs cover."""
    i = j = 0
    while i < len(a) and j < len(b):
        a0, a1 = a[i]
        b0, b1 = b[j]
        lo = max(a0, b0)
        if lo < min(a1, b1):
            return lo
        if a1 <= b1:
            i += 1
        else:
            j += 1
    return None


_EQ_TABLES: Dict[int, bytes] = {}


def _eq_table(value: int) -> bytes:
    """Translate table mapping ``value`` -> 0 and everything else -> 1."""
    table = _EQ_TABLES.get(value)
    if table is None:
        table = bytes(0 if i == value else 1 for i in range(256))
        _EQ_TABLES[value] = table
    return table


def value_runs(chunk: bytes, value: int, base: int = 0) -> List[Run]:
    """Maximal runs (absolute offsets, ``base`` + index) where ``chunk``
    equals ``value``.  One translate pass plus ``find`` jumps — no
    per-byte Python loop."""
    flags = chunk.translate(_eq_table(value))
    runs: List[Run] = []
    n = len(flags)
    i = flags.find(0)
    while i >= 0:
        j = flags.find(1, i + 1)
        if j < 0:
            j = n
        runs.append((base + i, base + j))
        i = flags.find(0, j + 1)
    return runs


def constant_runs(chunk: bytes, base: int = 0) -> List[Tuple[int, int, int]]:
    """Split ``chunk`` into maximal runs of one repeated byte value,
    returned as ``(start, end, value)`` with absolute offsets.

    ``lstrip(first_byte)`` finds the end of each constant prefix inside
    the C library, so the Python loop runs once per *run*, not per byte.
    """
    runs: List[Tuple[int, int, int]] = []
    i, n = 0, len(chunk)
    while i < n:
        rest = chunk[i:]
        stripped = rest.lstrip(rest[:1])
        j = n - len(stripped)
        runs.append((base + i, base + j, chunk[i]))
        i = j
    return runs


class IntervalSet:
    """Mutable set of byte offsets stored as half-open runs.

    Built for the two access patterns the runtime actually has: a hot
    ``add_range`` on every private write (sequential writes extend the
    last pending run in O(1)), and occasional whole-set reads at
    checkpoint/misspec time (``runs()`` coalesces lazily and caches).
    ``update`` accepts a ``range`` or any iterable of ints so existing
    tests and callers that thought in offsets keep working.
    """

    __slots__ = ("_pending", "_runs")

    #: Coalesce eagerly once this many un-merged pending runs pile up, so
    #: pathological scatter patterns stay O(n log n) overall.
    _COMPACT_THRESHOLD = 512

    def __init__(self) -> None:
        self._pending: List[Run] = []
        self._runs: Optional[List[Run]] = None

    def add_range(self, start: int, end: int) -> None:
        """Add the half-open byte range ``[start, end)``."""
        if end <= start:
            return
        pending = self._pending
        if pending:
            last_start, last_end = pending[-1]
            if last_start <= start and end <= last_end:
                return  # already covered: common for repeated writes
            if last_start <= start <= last_end:
                pending[-1] = (last_start, end if end > last_end else last_end)
                self._runs = None
                return
        pending.append((start, end))
        self._runs = None
        if len(pending) > self._COMPACT_THRESHOLD:
            self._pending = coalesce(pending)

    def update(self, offsets: Iterable[int]) -> None:
        """Add offsets from a ``range`` (fast path) or any int iterable."""
        if isinstance(offsets, range) and offsets.step == 1:
            self.add_range(offsets.start, offsets.stop)
            return
        for start, end in runs_from_offsets(offsets):
            self.add_range(start, end)

    def clear(self) -> None:
        self._pending.clear()
        self._runs = None

    def runs(self) -> List[Run]:
        """Sorted, coalesced runs.  Cached until the next mutation; the
        returned list must not be mutated by callers."""
        if self._runs is None:
            self._runs = coalesce(self._pending)
            self._pending = list(self._runs)
        return self._runs

    def offsets(self) -> set:
        """Materialize as a plain set of ints (oracle/test paths only)."""
        out: set = set()
        for start, end in self.runs():
            out.update(range(start, end))
        return out

    def min_offset(self) -> Optional[int]:
        runs = self.runs()
        return runs[0][0] if runs else None

    def __bool__(self) -> bool:
        return bool(self._pending)

    def __contains__(self, offset: int) -> bool:
        for start, end in self.runs():
            if start > offset:
                return False
            if offset < end:
                return True
        return False

    def __repr__(self) -> str:
        return f"IntervalSet({self.runs()!r})"
