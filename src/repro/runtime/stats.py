"""Runtime statistics: everything Table 3 and Figure 8 report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class MisspecEvent:
    kind: str
    iteration: int
    detail: str = ""
    injected: bool = False


@dataclass
class CheckpointRecord:
    """One retired checkpoint (§5.2)."""

    invocation: int
    start_iteration: int
    end_iteration: int
    private_bytes_copied: int = 0
    dirty_pages: int = 0
    redux_bytes_merged: int = 0
    io_records_committed: int = 0
    speculative: bool = True  # flipped off once validated


@dataclass
class RuntimeStats:
    """Counters accumulated by the runtime validation system."""

    invocations: int = 0
    checkpoints: int = 0
    misspeculations: List[MisspecEvent] = field(default_factory=list)
    recoveries: int = 0

    # Privacy validation (Table 3's Priv R / Priv W are byte totals).
    private_read_calls: int = 0
    private_read_bytes: int = 0
    private_write_calls: int = 0
    private_write_bytes: int = 0

    separation_checks: int = 0
    redux_updates: int = 0
    predictions_checked: int = 0
    lifetime_checks: int = 0
    io_deferred: int = 0

    # Cycle attribution for the Figure 8 overhead breakdown.
    private_read_cycles: int = 0
    private_write_cycles: int = 0
    separation_cycles: int = 0
    checkpoint_cycles: int = 0
    redux_cycles: int = 0
    misc_validation_cycles: int = 0

    checkpoint_records: List[CheckpointRecord] = field(default_factory=list)

    def misspec_count(self, include_injected: bool = True) -> int:
        return sum(
            1 for m in self.misspeculations if include_injected or not m.injected
        )

    def validation_cycles(self) -> int:
        return (self.private_read_cycles + self.private_write_cycles
                + self.separation_cycles + self.redux_cycles
                + self.misc_validation_cycles)

    def table3_row(self) -> Dict[str, object]:
        return {
            "invocations": self.invocations,
            "checkpoints": self.checkpoints,
            "private_bytes_read": self.private_read_bytes,
            "private_bytes_written": self.private_write_bytes,
        }
