"""Runtime statistics: everything Table 3 and Figure 8 report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: The purely additive counters, snapshot/delta-able so a worker process
#: can ship per-iteration increments back to the parent (the remaining
#: fields — invocations, checkpoints, recoveries, misspeculations,
#: checkpoint_records — are only ever updated by the parent).
COUNTER_FIELDS: Tuple[str, ...] = (
    "private_read_calls", "private_read_bytes",
    "private_write_calls", "private_write_bytes",
    "separation_checks", "redux_updates", "predictions_checked",
    "lifetime_checks", "io_deferred",
    "private_read_cycles", "private_write_cycles", "separation_cycles",
    "checkpoint_cycles", "redux_cycles", "misc_validation_cycles",
)


@dataclass
class MisspecEvent:
    """One recorded misspeculation: kind, iteration, detail, and
    whether it was artificially injected.
    """
    kind: str
    iteration: int
    detail: str = ""
    injected: bool = False


@dataclass
class CheckpointRecord:
    """One retired checkpoint (§5.2)."""

    invocation: int
    start_iteration: int
    end_iteration: int
    private_bytes_copied: int = 0
    dirty_pages: int = 0
    redux_bytes_merged: int = 0
    io_records_committed: int = 0
    speculative: bool = True  # flipped off once validated


@dataclass
class RuntimeStats:
    """Counters accumulated by the runtime validation system."""

    invocations: int = 0
    checkpoints: int = 0
    misspeculations: List[MisspecEvent] = field(default_factory=list)
    recoveries: int = 0

    # Privacy validation (Table 3's Priv R / Priv W are byte totals).
    private_read_calls: int = 0
    private_read_bytes: int = 0
    private_write_calls: int = 0
    private_write_bytes: int = 0

    separation_checks: int = 0
    redux_updates: int = 0
    predictions_checked: int = 0
    lifetime_checks: int = 0
    io_deferred: int = 0

    # Cycle attribution for the Figure 8 overhead breakdown.
    private_read_cycles: int = 0
    private_write_cycles: int = 0
    separation_cycles: int = 0
    checkpoint_cycles: int = 0
    redux_cycles: int = 0
    misc_validation_cycles: int = 0

    checkpoint_records: List[CheckpointRecord] = field(default_factory=list)

    def counter_snapshot(self) -> Tuple[int, ...]:
        """Current values of the additive counters, in COUNTER_FIELDS
        order."""
        return tuple(getattr(self, f) for f in COUNTER_FIELDS)

    def counter_delta(self, base: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-counter increments since ``base`` (a prior snapshot)."""
        return tuple(cur - prev
                     for cur, prev in zip(self.counter_snapshot(), base))

    def apply_counter_delta(self, delta: Tuple[int, ...]) -> None:
        """Add a shipped increment vector onto the additive counters."""
        for name, d in zip(COUNTER_FIELDS, delta):
            setattr(self, name, getattr(self, name) + d)

    def misspec_count(self, include_injected: bool = True) -> int:
        return sum(
            1 for m in self.misspeculations if include_injected or not m.injected
        )

    def validation_cycles(self) -> int:
        return (self.private_read_cycles + self.private_write_cycles
                + self.separation_cycles + self.redux_cycles
                + self.misc_validation_cycles)

    def table3_row(self) -> Dict[str, object]:
        return {
            "invocations": self.invocations,
            "checkpoints": self.checkpoints,
            "private_bytes_read": self.private_read_bytes,
            "private_bytes_written": self.private_write_bytes,
        }
