"""Checkpoint-time phase-two privacy validation and private-state merge
(§5.2), over packed :class:`~repro.runtime.fragments.EpochFragment` runs.

Two implementations of each step share a result type so
:meth:`~repro.runtime.system.RuntimeSystem.checkpoint` and the perf
harness can swap them freely:

* the default vectorized path — sorted-interval intersections for the
  cross-worker check, ``find`` scans of the committed-definition
  metadata for the committed-old-write check, and latest-iteration-wins
  merge as bulk slice stores ordered by iteration;
* a ``*_ref`` per-byte oracle matching the historical nested loops
  byte for byte, selected by ``REPRO_SHADOW=ref`` (and used as the
  baseline for the perf harness's ``shadow`` section).

Both orders ties identically: the merge scans fragments in list (wid)
order and a later fragment only wins a byte with a strictly greater
iteration, and validation reports the violation the per-byte scan would
have found first (lowest offset of the first failing fragment, committed
check before the cross-worker check at equal offsets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .fragments import EpochFragment, WRITE_FREED, WRITE_LOCAL, WRITE_VALUE
from .intervals import first_overlap, value_runs

#: Sentinel kind for merge-buffer bytes no fragment wrote (not a valid
#: ``WRITE_*`` code).
KIND_NONE = 0xFF


@dataclass
class Phase2Violation:
    """The first phase-two privacy violation, in per-byte scan order."""

    kind: str                 # "committed" | "cross-worker"
    offset: int               # private-heap byte offset
    reader_wid: int
    writer_wid: Optional[int] = None
    writer_iteration: Optional[int] = None


@dataclass
class MergeOutcome:
    """Latest-iteration-wins merge result over the written extent.

    ``kinds``/``values`` cover ``[base, base + len(kinds))`` with one
    byte per offset; bytes no fragment wrote hold :data:`KIND_NONE`.
    """

    base: int = 0
    kinds: bytes = b""
    values: bytes = b""
    merged_bytes: int = 0
    freed_bytes: int = 0
    local_bytes: int = 0

    def value_runs(self) -> List[Tuple[int, int]]:
        """Absolute ``(start, end)`` runs of winning WRITE_VALUE bytes —
        the slices the checkpoint commits into main memory."""
        return value_runs(self.kinds, WRITE_VALUE, self.base)


def find_phase2_violation(fragments: Sequence[EpochFragment],
                          committed_meta: bytearray
                          ) -> Optional[Phase2Violation]:
    """Vectorized phase-two validation: for each fragment in order, scan
    its live-in read runs against the committed-definition metadata
    (``find`` of the committed marker) and against every other worker's
    epoch-written runs (two-pointer interval intersection).  Returns the
    violation the per-byte reference scan reports, or None."""
    limit = len(committed_meta)
    for frag in fragments:
        # (offset, priority): committed check outranks the cross-worker
        # check at the same offset, and lower writer index wins below it,
        # matching the nested per-byte loop's discovery order.
        candidates: List[Tuple[int, int]] = []
        for start, end in frag.read_live_in_runs:
            clamped_end = min(end, limit)
            if start >= clamped_end:
                continue
            hit = committed_meta.find(1, start, clamped_end)
            if hit >= 0:
                candidates.append((hit, -1))
                break
        for index, other in enumerate(fragments):
            if other.wid == frag.wid:
                continue
            hit = first_overlap(frag.read_live_in_runs,
                                other.epoch_written_runs)
            if hit is not None:
                candidates.append((hit, index))
        if not candidates:
            continue
        offset, priority = min(candidates)
        if priority < 0:
            return Phase2Violation("committed", offset, frag.wid)
        writer = fragments[priority]
        return Phase2Violation("cross-worker", offset, frag.wid,
                               writer_wid=writer.wid,
                               writer_iteration=writer.iteration_of(offset))
    return None


def find_phase2_violation_ref(fragments: Sequence[EpochFragment],
                              committed_meta: bytearray
                              ) -> Optional[Phase2Violation]:
    """Per-byte oracle: the historical nested loops, byte for byte."""
    written_sets = [(other, other.epoch_written_offsets())
                    for other in fragments]
    for frag in fragments:
        for b in sorted(frag.read_live_in_offsets()):
            if b < len(committed_meta) and committed_meta[b] == 1:
                return Phase2Violation("committed", b, frag.wid)
            for other, written in written_sets:
                if other.wid != frag.wid and b in written:
                    return Phase2Violation(
                        "cross-worker", b, frag.wid, writer_wid=other.wid,
                        writer_iteration=other.iteration_of(b))
    return None


def merge_fragments(fragments: Sequence[EpochFragment]) -> MergeOutcome:
    """Vectorized latest-iteration-wins merge: decompose every write run
    into ``(iteration, -fragment_index)``-sorted slices and store them in
    ascending order, so the last store per byte is exactly the winner the
    per-byte dict scan picks (strictly greater iteration beats; the
    earlier fragment keeps ties)."""
    starts = [run[0] for frag in fragments for run in frag.write_runs]
    if not starts:
        return MergeOutcome()
    base = min(starts)
    top = max(run[1] for frag in fragments for run in frag.write_runs)
    kinds = bytearray(bytes((KIND_NONE,)) * (top - base))
    values = bytearray(top - base)
    slices: List[Tuple[int, int, int, int, int, EpochFragment]] = []
    for index, frag in enumerate(fragments):
        pos = 0
        for start, end, rel in frag.write_runs:
            slices.append((frag.epoch_start + rel, -index,
                           start, end, pos, frag))
            pos += end - start
    slices.sort(key=lambda item: (item[0], item[1]))
    for _iteration, _neg_index, start, end, pos, frag in slices:
        length = end - start
        kinds[start - base:end - base] = frag.write_kinds[pos:pos + length]
        values[start - base:end - base] = frag.write_values[pos:pos + length]
    return MergeOutcome(
        base=base, kinds=bytes(kinds), values=bytes(values),
        merged_bytes=kinds.count(WRITE_VALUE),
        freed_bytes=kinds.count(WRITE_FREED),
        local_bytes=kinds.count(WRITE_LOCAL))


def merge_fragments_ref(fragments: Sequence[EpochFragment]) -> MergeOutcome:
    """Per-byte oracle: the historical best-iteration dict, packed into
    the same outcome buffers for comparison and commit."""
    best: Dict[int, Tuple[int, int, int]] = {}
    for frag in fragments:
        for b, iteration, kind, value in frag.iter_writes():
            cur = best.get(b)
            if cur is None or iteration > cur[0]:
                best[b] = (iteration, kind, value)
    if not best:
        return MergeOutcome()
    base = min(best)
    top = max(best) + 1
    kinds = bytearray(bytes((KIND_NONE,)) * (top - base))
    values = bytearray(top - base)
    merged = freed = local = 0
    for b, (_iteration, kind, value) in best.items():
        kinds[b - base] = kind
        values[b - base] = value
        if kind == WRITE_VALUE:
            merged += 1
        elif kind == WRITE_FREED:
            freed += 1
        else:
            local += 1
    return MergeOutcome(base=base, kinds=bytes(kinds), values=bytes(values),
                        merged_bytes=merged, freed_bytes=freed,
                        local_bytes=local)
