"""The Privateer runtime support system (§5).

Manages the logical heaps, validates speculative separation and privacy,
coordinates checkpoints, and supports recovery.  It plugs into the
interpreter by overriding the runtime intrinsics (``h_alloc``,
``check_heap``, ``private_read`` …) and is driven through its invocation
lifecycle by the DOALL executor (:mod:`repro.parallel.executor`).

Substitutions vs. the paper (see DESIGN.md):

* worker processes + fork/COW  ->  per-worker ``AddressSpace`` overlays;
* mmap page-table tricks for replacement transparency  ->  overlays keep
  every virtual address identical, so transparency holds by construction;
* wall-clock time  ->  deterministic cycle accounting.
"""

from __future__ import annotations

import re
import struct as _struct
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.reduction import apply_operator
from ..classify.heaps import HeapKind, tag_matches
from ..forensics.explain import summarize_context
from ..forensics.recorder import FlightRecorder
from ..interp.errors import Misspeculation
from ..interp.interpreter import Interpreter
from ..interp.memory import AddressSpace, MemoryObject, PAGE_SIZE, heap_tag_of
from ..ir.instructions import BinOpKind
from ..obs.log import get_logger
from ..obs.metrics import METRICS
from ..obs.trace import TRACER
from ..transform.plan import ParallelPlan, ReduxObjectPlan
from .fragments import (
    FRAGMENT_FORMAT,
    WRITE_FREED,
    WRITE_LOCAL,
    WRITE_VALUE,
    EpochFragment,
    ReduxElement,
)
from .intervals import IntervalSet, union_runs
from .iodefer import DeferredOutput
from .merge import (
    find_phase2_violation,
    find_phase2_violation_ref,
    merge_fragments,
    merge_fragments_ref,
)
from .shadow import TS_BASE, make_shadow, timestamp_for, use_reference
from .stats import CheckpointRecord, MisspecEvent, RuntimeStats

log = get_logger("runtime")

#: Cycle cost of updating one byte of shadow metadata (on top of the
#: fixed call cost charged by the interpreter's intrinsic dispatch).
PRIVATE_BYTE_COST = 1
REDUX_BYTE_COST = 1
SEPARATION_CHECK_COST = 2
#: Checkpoint costing: copying one dirty private page, and the fixed
#: per-worker overhead of acquiring/joining a checkpoint object.
CHECKPOINT_PAGE_COST = 600
CHECKPOINT_FIXED_COST = 1200
CHECKPOINT_BYTE_COST = 1


class WorkerState:
    """One simulated worker process."""

    def __init__(self, wid: int, parent_space: AddressSpace, shadow_size: int):
        self.wid = wid
        self.space = AddressSpace(parent=parent_space)
        self.shadow = make_shadow(shadow_size)
        self.frame = None  # interpreter Frame, installed by the executor
        self.clock = 0     # simulated cycles, relative to region start
        self.iterations = 0
        self.shortlived_live = 0
        self.redux_written: Set[Tuple[int, int]] = set()  # (addr, size)
        self.redux_copies: Dict[int, Tuple[MemoryObject, ReduxObjectPlan]] = {}
        self.epoch_written_offsets = IntervalSet()

    def reset_epoch_tracking(self) -> None:
        self.redux_written.clear()
        self.epoch_written_offsets.clear()
        self.space.dirty_pages.clear()


class RuntimeSystem:
    """The speculative runtime (§5): owns the logical heaps, per-worker
    COW replicas and shadow metadata, performs two-phase privacy
    validation, checkpoint commit, reduction merge, deferred I/O, and
    squash/recovery bookkeeping.
    """
    def __init__(self, module, plan: ParallelPlan, interp: Interpreter):
        self.module = module
        self.plan = plan
        self.interp = interp
        self.main_space = interp.space
        self.stats = RuntimeStats()
        self.deferred = DeferredOutput()

        self.speculating = False
        self.workers: List[WorkerState] = []
        self.current_worker: Optional[WorkerState] = None
        self.current_iteration = 0
        self.epoch_start = 0
        self.invocation_index = -1

        self.private_base = HeapKind.PRIVATE.base
        self.redux_base = HeapKind.REDUX.base
        #: Adaptive speculation controller
        #: (:class:`repro.adapt.SpeculationController`); None runs the
        #: fixed policy.  Installed by the executor, fed from
        #: :meth:`record_misspeculation` and :meth:`checkpoint`.
        self.controller = None
        #: Forensic flight recorder (bounded ring; dumped by the executor
        #: only when a misspeculation or crash occurs).
        self.recorder = FlightRecorder()
        self.committed_meta = bytearray()
        self._protected: List[MemoryObject] = []
        self._default_printf = None
        self._default_puts = None
        self.install()

    # -- intrinsic installation --------------------------------------------

    def install(self) -> None:
        intr = self.interp.intrinsics
        self._default_printf = intr["printf"]
        self._default_puts = intr["puts"]
        intr["h_alloc"] = self._i_h_alloc
        intr["h_dealloc"] = self._i_h_dealloc
        intr["check_heap"] = self._i_check_heap
        intr["private_read"] = self._i_private_read
        intr["private_write"] = self._i_private_write
        intr["redux_update"] = self._i_redux_update
        intr["predict_value"] = self._i_predict_value
        intr["misspec"] = self._i_misspec
        intr["printf"] = self._i_printf
        intr["puts"] = self._i_puts

    # -- heap allocation -----------------------------------------------------

    def _i_h_alloc(self, interp, inst, args):
        size = int(args[0])
        kind = HeapKind(int(args[1]))
        site = inst.meta.get("replaced_site", inst.site_id())
        obj = interp.space.allocate(
            max(size, 1), f"{site}#h", "logical", kind.base, site=site
        )
        interp.notify_alloc(obj, inst)
        if self.speculating and self.current_worker is not None:
            if kind is HeapKind.SHORTLIVED:
                self.current_worker.shortlived_live += 1
        return obj.base

    def _i_h_dealloc(self, interp, inst, args):
        addr = int(args[0])
        if addr == 0:
            return None
        kind = HeapKind(int(args[1])) if len(args) > 1 else None
        if self.speculating and kind is not None and not tag_matches(addr, kind):
            raise Misspeculation(
                "separation", f"h_dealloc expected {kind}, pointer tag is "
                f"{heap_tag_of(addr)}", self.current_iteration)
        obj = interp.space.free(addr)
        interp.notify_free(obj, inst)
        if self.speculating and self.current_worker is not None:
            if kind is HeapKind.SHORTLIVED:
                self.current_worker.shortlived_live -= 1
        return None

    # -- validation intrinsics (§5.1) -------------------------------------------

    def _i_check_heap(self, interp, inst, args):
        if not self.speculating:
            return None
        self.stats.separation_checks += 1
        self.stats.separation_cycles += SEPARATION_CHECK_COST + 4
        if TRACER.enabled:
            METRICS.counter("runtime.separation_checks").inc()
        addr = int(args[0])
        kind = HeapKind(int(args[1]))
        if not tag_matches(addr, kind):
            raise Misspeculation(
                "separation",
                f"pointer 0x{addr:x} (tag {heap_tag_of(addr)}) is not in "
                f"heap {kind}", self.current_iteration)
        return None

    def _ts(self) -> int:
        return timestamp_for(self.current_iteration, self.epoch_start)

    def _i_private_read(self, interp, inst, args):
        if not self.speculating or self.current_worker is None:
            return None
        addr, size = int(args[0]), int(args[1])
        offset = addr - self.private_base
        if offset < 0:
            raise Misspeculation(
                "separation", f"private_read outside private heap 0x{addr:x}",
                self.current_iteration)
        cost = 8 + PRIVATE_BYTE_COST * size
        interp.cycles += PRIVATE_BYTE_COST * size
        self.stats.private_read_calls += 1
        self.stats.private_read_bytes += size
        self.stats.private_read_cycles += cost
        if TRACER.enabled:
            METRICS.counter("runtime.shadow.bytes_read").inc(size)
        self.current_worker.shadow.on_read(offset, size, self._ts(),
                                           self.current_iteration)
        return None

    def _i_private_write(self, interp, inst, args):
        if not self.speculating or self.current_worker is None:
            return None
        addr, size = int(args[0]), int(args[1])
        offset = addr - self.private_base
        if offset < 0:
            raise Misspeculation(
                "separation", f"private_write outside private heap 0x{addr:x}",
                self.current_iteration)
        cost = 8 + PRIVATE_BYTE_COST * size
        interp.cycles += PRIVATE_BYTE_COST * size
        self.stats.private_write_calls += 1
        self.stats.private_write_bytes += size
        self.stats.private_write_cycles += cost
        if TRACER.enabled:
            METRICS.counter("runtime.shadow.bytes_written").inc(size)
        worker = self.current_worker
        worker.shadow.on_write(offset, size, self._ts(), self.current_iteration)
        worker.epoch_written_offsets.add_range(offset, offset + size)
        return None

    def _i_redux_update(self, interp, inst, args):
        if not self.speculating or self.current_worker is None:
            return None
        addr, size = int(args[0]), int(args[1])
        self.stats.redux_updates += 1
        self.stats.redux_cycles += 4 + REDUX_BYTE_COST * size
        if TRACER.enabled:
            METRICS.counter("runtime.redux.bytes_updated").inc(size)
        interp.cycles += REDUX_BYTE_COST * size
        self.current_worker.redux_written.add((addr, size))
        return None

    def _i_predict_value(self, interp, inst, args):
        if not self.speculating:
            return None
        addr, size, expected = int(args[0]), int(args[1]), int(args[2])
        self.stats.predictions_checked += 1
        self.stats.misc_validation_cycles += 4
        actual = interp.space.read_int(addr, size, signed=False)
        mask = (1 << (size * 8)) - 1
        if actual != (expected & mask):
            raise Misspeculation(
                "value", f"predicted {expected & mask:#x} at 0x{addr:x}, "
                f"found {actual:#x}", self.current_iteration)
        return None

    def _i_misspec(self, interp, inst, args):
        if not self.speculating:
            return None
        raise Misspeculation(
            "control", "execution left the profiled region",
            self.current_iteration)

    # -- deferred I/O ---------------------------------------------------------------

    def _i_printf(self, interp, inst, args):
        if not self.speculating:
            return self._default_printf(interp, inst, args)
        from ..interp.intrinsics import format_printf

        fmt = interp.space.read_cstring(int(args[0]))
        text = format_printf(interp, fmt, args[1:])
        self.deferred.emit(self.current_iteration, text)
        self.stats.io_deferred += 1
        return len(text)

    def _i_puts(self, interp, inst, args):
        if not self.speculating:
            return self._default_puts(interp, inst, args)
        text = interp.space.read_cstring(int(args[0]))
        self.deferred.emit(self.current_iteration, text + "\n")
        self.stats.io_deferred += 1
        return 0

    # -- invocation lifecycle -----------------------------------------------------------

    def private_extent(self) -> int:
        return self.main_space.region_cursor(self.private_base) - self.private_base

    def begin_invocation(self, worker_count: int) -> None:
        self.invocation_index += 1
        self.stats.invocations += 1
        extent = self.private_extent()
        if len(self.committed_meta) < extent:
            self.committed_meta.extend(b"\x00" * (extent - len(self.committed_meta)))
        self._protect_readonly()
        self.workers = [
            WorkerState(w, self.main_space, extent) for w in range(worker_count)
        ]
        for worker in self.workers:
            self._init_worker_redux(worker)
        self.deferred = DeferredOutput()
        self.epoch_start = 0
        self.speculating = True
        if self.recorder.enabled:
            self.recorder.record("invocation", index=self.invocation_index,
                                 workers=worker_count, private_extent=extent)
        log.info("invocation %d: %d worker(s), private extent %d bytes",
                 self.invocation_index, worker_count, extent)

    def refork_workers(self) -> None:
        """After recovery: discard all speculative worker state and fork
        fresh workers from the (now updated) main memory."""
        count = len(self.workers)
        extent = self.private_extent()
        self.workers = [
            WorkerState(w, self.main_space, extent) for w in range(count)
        ]
        for worker in self.workers:
            self._init_worker_redux(worker)

    def end_invocation(self) -> None:
        self.speculating = False
        self.current_worker = None
        self._unprotect_readonly()
        self.workers = []
        # Between invocations the heaps behave as normal memory; the
        # committed metadata is per-invocation state.
        self.committed_meta = bytearray()

    def _protect_readonly(self) -> None:
        self._protected = [
            obj for obj in self.main_space.live_objects()
            if obj.tag == int(HeapKind.READONLY) and obj.writable
        ]
        for obj in self._protected:
            obj.writable = False

    def _unprotect_readonly(self) -> None:
        for obj in self._protected:
            obj.writable = True
        self._protected = []

    # -- reduction heap management ---------------------------------------------------------

    def _redux_objects(self) -> List[Tuple[MemoryObject, ReduxObjectPlan]]:
        out = []
        for obj in self.main_space.live_objects():
            if obj.tag != int(HeapKind.REDUX):
                continue
            rplan = self.plan.redux_objects.get(obj.site)
            if rplan is not None:
                out.append((obj, rplan))
        return out

    @staticmethod
    def _identity_bytes(rplan: ReduxObjectPlan, size: int) -> bytes:
        es = rplan.element_size
        if rplan.operator == "MUL":
            elem = (1).to_bytes(es, "little")
        elif rplan.operator == "FMUL":
            elem = _struct.pack("<d", 1.0) if es == 8 else _struct.pack("<f", 1.0)
        elif rplan.operator == "AND":
            elem = b"\xff" * es
        else:  # ADD, FADD, OR, XOR: identity is all-zero bytes
            elem = b"\x00" * es
        reps, rem = divmod(size, es)
        return elem * reps + b"\x00" * rem

    def _init_worker_redux(self, worker: WorkerState) -> None:
        """Give the worker an identity-initialized copy of every reduction
        object (the paper initializes the replaced reduction pages with the
        operator's identity, §3.2)."""
        for obj, rplan in self._redux_objects():
            copy = MemoryObject(obj.base, obj.size, obj.name, obj.kind,
                                obj.site, writable=True)
            copy.data[:] = self._identity_bytes(rplan, obj.size)
            worker.space._cow_copies[obj.base] = copy
            worker.space._register(copy)
            worker.redux_copies[obj.base] = (copy, rplan)

    def _reset_worker_redux(self, worker: WorkerState) -> None:
        for base, (copy, rplan) in worker.redux_copies.items():
            copy.data[:] = self._identity_bytes(rplan, copy.size)

    # -- per-iteration hooks (driven by the executor) -----------------------------------------

    def begin_iteration(self, worker: WorkerState, iteration: int) -> None:
        self.current_worker = worker
        self.current_iteration = iteration
        self.restore_predictions(worker, iteration)

    def restore_predictions(self, worker: WorkerState, iteration: int) -> None:
        """Write the predicted values at iteration start so predicted
        loads see them; routed through the privacy machinery like any
        other private write."""
        for vp in self.plan.predictions:
            gv = self.module.global_named(vp.obj_site[len("global:"):])
            addr = self.interp.global_addrs[gv] + vp.offset
            offset = addr - self.private_base
            if offset >= 0:
                worker.shadow.on_write(offset, vp.size, self._ts(), iteration)
                worker.epoch_written_offsets.add_range(
                    offset, offset + vp.size)
            worker.space.write_int(addr, vp.value, vp.size)
            self.stats.misc_validation_cycles += 4

    def end_iteration(self, worker: WorkerState, iteration: int) -> None:
        """Validate object-lifetime speculation: no short-lived object may
        outlive its iteration (§5.1)."""
        self.stats.lifetime_checks += 1
        self.stats.misc_validation_cycles += 2
        if worker.shortlived_live != 0:
            live = worker.shortlived_live
            worker.shortlived_live = 0
            raise Misspeculation(
                "lifetime",
                f"{live} short-lived object(s) live at iteration end",
                iteration)
        worker.iterations += 1

    # -- checkpoints (§5.2) ----------------------------------------------------------------------

    def extract_fragment(self, worker: WorkerState,
                         epoch_start: int) -> EpochFragment:
        """Snapshot one worker's epoch state as a serializable fragment.

        Pure read: neither the worker nor main memory is mutated, so the
        simulated backend can extract in-process right before the commit
        and a forked worker can extract and pickle the result without
        perturbing its parent.

        The default path works run-at-a-time: constant-timestamp runs
        come straight off the shadow, and each run is classified
        (freed / worker-local / value) by intersecting it with the
        worker-space and main-space object extents, with byte values
        copied out as slices.  ``REPRO_SHADOW=ref`` routes through the
        per-byte oracle instead; both produce the identical canonical
        packed fragment.
        """
        if use_reference():
            return self._extract_fragment_ref(worker, epoch_start)
        pb = self.private_base
        write_runs: List[Tuple[int, int, int]] = []
        kinds = bytearray()
        values = bytearray()
        freed_fill = bytes((WRITE_FREED,))
        local_fill = bytes((WRITE_LOCAL,))
        value_fill = bytes((WRITE_VALUE,))
        for start, end, code in worker.shadow.write_ts_runs():
            write_runs.append((start, end, code - TS_BASE))
            addr, addr_end = pb + start, pb + end
            cursor = addr
            for s, e, obj in worker.space.covering_pieces(addr, end - start):
                if s > cursor:
                    # written then freed within the epoch
                    kinds.extend(freed_fill * (s - cursor))
                    values.extend(bytes(s - cursor))
                piece_cursor = s
                for ms, me, _mobj in self.main_space.covering_pieces(s, e - s):
                    if ms > piece_cursor:
                        # worker-local private allocation
                        kinds.extend(local_fill * (ms - piece_cursor))
                        values.extend(bytes(ms - piece_cursor))
                    off = ms - obj.base
                    kinds.extend(value_fill * (me - ms))
                    values.extend(obj.data[off:off + (me - ms)])
                    piece_cursor = me
                if piece_cursor < e:
                    kinds.extend(local_fill * (e - piece_cursor))
                    values.extend(bytes(e - piece_cursor))
                cursor = e
            if cursor < addr_end:
                kinds.extend(freed_fill * (addr_end - cursor))
                values.extend(bytes(addr_end - cursor))
        redux_elements, dirty_pages = self._extract_redux(worker)
        return EpochFragment(
            wid=worker.wid, epoch_start=epoch_start,
            read_live_in_runs=tuple(worker.shadow.read_live_in_runs()),
            write_runs=tuple(write_runs),
            write_kinds=bytes(kinds), write_values=bytes(values),
            epoch_written_runs=tuple(worker.epoch_written_offsets.runs()),
            redux_elements=redux_elements, dirty_private_pages=dirty_pages)

    def _extract_fragment_ref(self, worker: WorkerState,
                              epoch_start: int) -> EpochFragment:
        """Per-byte oracle extraction (``REPRO_SHADOW=ref``): the
        historical one-lookup-per-byte loop, packed into the same
        canonical fragment form."""
        writes: List[Tuple[int, int, int, int]] = []
        for b, iteration in sorted(worker.shadow.write_iterations(epoch_start)):
            addr = self.private_base + b
            found = worker.space.try_find(addr)
            if found is None:
                # written then freed within the epoch
                writes.append((b, iteration, WRITE_FREED, 0))
                continue
            obj, off = found
            if self.main_space.try_find(addr) is None:
                # worker-local private allocation
                writes.append((b, iteration, WRITE_LOCAL, 0))
            else:
                writes.append((b, iteration, WRITE_VALUE, obj.data[off]))
        redux_elements, dirty_pages = self._extract_redux(worker)
        return EpochFragment.pack(
            wid=worker.wid, epoch_start=epoch_start,
            read_live_in=worker.shadow.read_live_in_offsets(),
            writes=writes,
            epoch_written=worker.epoch_written_offsets.offsets(),
            redux_elements=redux_elements, dirty_private_pages=dirty_pages)

    def _extract_redux(self, worker: WorkerState
                       ) -> Tuple[List[ReduxElement], int]:
        """Reduction partial results and dirty-page count for a fragment
        (shared by both extraction paths)."""
        redux_elements: List[ReduxElement] = []
        elements: Set[Tuple[int, int]] = set()
        for addr, size in worker.redux_written:
            base_entry = worker.redux_copies.get(self._redux_object_base(addr))
            es = base_entry[1].element_size if base_entry else size
            for e in range(addr, addr + size, es):
                elements.add((e, es))
        for addr, es in sorted(elements):
            entry = worker.redux_copies.get(self._redux_object_base(addr))
            if entry is None:
                redux_elements.append(ReduxElement(addr, es, None, False, 0))
                continue
            _copy, rplan = entry
            if rplan.is_float:
                delta: object = worker.space.read_float(addr, es)
            else:
                signed = rplan.operator in ("ADD", "MUL")
                delta = worker.space.read_int(addr, es, signed)
            redux_elements.append(
                ReduxElement(addr, es, rplan.operator, rplan.is_float, delta))
        dirty_pages = len({
            p for p in worker.space.dirty_pages
            if (p << 12) >= self.private_base
            and (p << 12) < self.private_base + (1 << 44)
        })
        return redux_elements, dirty_pages

    def checkpoint(self, epoch_start: int, epoch_end: int,
                   fragments: Optional[List[EpochFragment]] = None
                   ) -> CheckpointRecord:
        """Collect all workers' speculative state, run phase-two privacy
        validation, merge, and commit into main memory.

        ``fragments`` is the per-worker epoch state in wid order.  When
        ``None`` (the simulated backend), fragments are extracted from
        the in-process worker states; the process backend passes the
        fragments its forked workers shipped back.  Either way the same
        validation/merge/commit code runs below.
        """
        if fragments is None:
            fragments = [self.extract_fragment(w, epoch_start)
                         for w in self.workers]
        for frag in fragments:
            if frag.format != FRAGMENT_FORMAT:
                raise ValueError(
                    f"fragment format {frag.format} from worker {frag.wid} "
                    f"does not match this runtime's format "
                    f"{FRAGMENT_FORMAT}")
        record = CheckpointRecord(self.invocation_index, epoch_start, epoch_end)

        # Phase 2 privacy: a byte that some worker read as live-in must not
        # have been defined since the invocation began (committed old-write)
        # nor written by any other worker during this epoch.  Without a
        # read-iteration timestamp this is conservative, as in the paper.
        ref_mode = use_reference()
        violation = (find_phase2_violation_ref if ref_mode
                     else find_phase2_violation)(fragments, self.committed_meta)
        if violation is not None:
            b = violation.offset
            if violation.kind == "committed":
                exc = Misspeculation(
                    "privacy",
                    f"live-in read of byte private+{b} defined in an "
                    f"earlier checkpoint epoch", epoch_start)
            else:
                exc = Misspeculation(
                    "privacy",
                    f"cross-worker flow: worker {violation.writer_wid} wrote "
                    f"private+{b}, worker {violation.reader_wid} read it "
                    f"live-in", epoch_start)
            if self.recorder.enabled:
                ctx = self._base_context(None, self.private_base + b,
                                         b, "phase2")
                ctx["reader_wid"] = violation.reader_wid
                if violation.kind == "cross-worker":
                    ctx["writer_wid"] = violation.writer_wid
                    ctx["writer_iteration"] = violation.writer_iteration
                exc.context = ctx
            raise exc

        # Merge private state: per byte, latest iteration wins.  The
        # outcome buffers cover the written extent; winning WRITE_VALUE
        # runs commit as slice stores, walking main-memory object
        # extents instead of resolving each byte.
        outcome = (merge_fragments_ref if ref_mode
                   else merge_fragments)(fragments)
        merged = outcome.merged_bytes
        committed_limit = len(self.committed_meta)
        for start, end in outcome.value_runs():
            pos = start
            while pos < end:
                tobj, toff = self.main_space.find(self.private_base + pos)
                length = min(end - pos, tobj.size - toff)
                src = pos - outcome.base
                tobj.data[toff:toff + length] = \
                    outcome.values[src:src + length]
                pos += length
            clamped = min(end, committed_limit)
            if start < clamped:
                self.committed_meta[start:clamped] = \
                    b"\x01" * (clamped - start)
        if outcome.freed_bytes or outcome.local_bytes:
            log.debug("checkpoint: skipped %d freed and %d worker-local "
                      "private byte(s) during merge",
                      outcome.freed_bytes, outcome.local_bytes)
        record.private_bytes_copied = merged

        # Merge reduction partial results, in worker order (float merge
        # order is part of the observable semantics).
        redux_bytes = 0
        for frag in fragments:
            for el in frag.redux_elements:
                self._apply_redux_element(el)
                redux_bytes += el.size
        record.redux_bytes_merged = redux_bytes

        # Commit deferred output in iteration order.
        record.io_records_committed = self.deferred.commit_range(
            epoch_start, epoch_end, self.interp.emit_output)

        # Reset per-epoch state and cost the copies.  The shadow reset
        # must leave this epoch's writes marked old-write in each
        # worker's replica shadow: the simulated backend's persistent
        # shadows get that from reset_after_checkpoint, while the
        # process backend's parent-side replicas (whose shadows never
        # saw the writes) get it from mark_old_writes, so freshly
        # forked children inherit identical phase-1 behaviour.
        dirty_total = 0
        for frag in fragments:
            worker = self.workers[frag.wid]
            dirty_total += frag.dirty_private_pages
            record.dirty_pages += frag.dirty_private_pages
            worker.shadow.reset_after_checkpoint()
            worker.shadow.mark_old_write_runs(frag.write_spans())
            worker.reset_epoch_tracking()
            self._reset_worker_redux(worker)

        cost = (CHECKPOINT_FIXED_COST * len(self.workers)
                + CHECKPOINT_PAGE_COST * dirty_total
                + CHECKPOINT_BYTE_COST * (merged + redux_bytes))
        self.stats.checkpoint_cycles += cost
        record.speculative = False
        self.stats.checkpoints += 1
        self.stats.checkpoint_records.append(record)
        self.epoch_start = epoch_end
        log.info("checkpoint [%d,%d): %d private byte(s), %d redux byte(s), "
                 "%d dirty page(s), %d cycles",
                 epoch_start, epoch_end, merged, redux_bytes,
                 record.dirty_pages, cost)
        if TRACER.enabled:
            METRICS.counter("runtime.checkpoints").inc()
            METRICS.histogram("runtime.checkpoint.cycles").observe(cost)
            METRICS.counter("runtime.checkpoint.private_bytes").inc(merged)
            METRICS.counter("runtime.checkpoint.redux_bytes").inc(redux_bytes)
            TRACER.instant(
                "runtime.checkpoint", cat="runtime",
                invocation=self.invocation_index,
                epoch_start=epoch_start, epoch_end=epoch_end,
                private_bytes=merged, redux_bytes=redux_bytes,
                dirty_pages=record.dirty_pages,
                io_records=record.io_records_committed, cycles=cost)
        if self.recorder.enabled:
            self.recorder.record(
                "epoch", outcome="commit", invocation=self.invocation_index,
                epoch_start=epoch_start, epoch_end=epoch_end,
                private_bytes=merged, redux_bytes=redux_bytes,
                dirty_pages=record.dirty_pages, cycles=cost)
            self.recorder.note_site_accesses(
                self._site_byte_counts(
                    union_runs(frag.write_spans() for frag in fragments)),
                self._site_byte_counts(
                    union_runs(frag.read_live_in_runs
                               for frag in fragments)))
        if self.controller is not None:
            self.controller.note_commit(epoch_start, epoch_end)
        return record

    def _redux_object_base(self, addr: int) -> int:
        found = self.main_space.try_find(addr)
        return found[0].base if found else addr

    def _apply_redux_element(self, el: ReduxElement) -> None:
        """Fold one worker's partial result into main memory."""
        if el.operator is None:
            return
        op = BinOpKind[el.operator]
        if el.is_float:
            current = self.main_space.read_float(el.addr, el.size)
            self.main_space.write_float(
                el.addr, apply_operator(op, current, el.delta), el.size)
        else:
            signed = el.operator in ("ADD", "MUL")
            current = self.main_space.read_int(el.addr, el.size, signed)
            merged = apply_operator(op, current, el.delta)
            self.main_space.write_int(el.addr, merged, el.size)

    # -- misspeculation & recovery (§5.3) ------------------------------------------------------------

    def record_misspeculation(self, exc: Misspeculation,
                              injected: bool = False) -> None:
        self.stats.misspeculations.append(
            MisspecEvent(exc.kind, exc.iteration, exc.detail, injected))
        log.warning("misspeculation (%s) at iteration %d: %s%s",
                    exc.kind, exc.iteration, exc.detail,
                    " [injected]" if injected else "")
        if TRACER.enabled:
            METRICS.counter(f"runtime.misspec.{exc.kind}").inc()
            TRACER.instant("runtime.misspec", cat="runtime", kind=exc.kind,
                           iteration=exc.iteration, detail=exc.detail,
                           injected=injected)
        if self.recorder.enabled:
            self.recorder.record("misspec", kind=exc.kind,
                                 iteration=exc.iteration, detail=exc.detail,
                                 injected=injected, context=exc.context)
        if self.controller is not None:
            diagnosis = (summarize_context(exc.kind, exc.detail, exc.context)
                         if exc.context is not None else None)
            self.controller.note_misspec(exc.kind, exc.iteration,
                                         self._attribute_site(exc.detail),
                                         diagnosis)

    def _attribute_site(self, detail: str) -> Optional[str]:
        """Allocation site of the object a misspeculation detail string
        refers to, or None when no address can be recovered.  Feeds the
        controller's demotion policy: the site identifies the object class
        whose speculative classification caused the misprediction."""
        match = re.search(r"private\+(\d+)", detail)
        if match:
            addr = self.private_base + int(match.group(1))
        else:
            match = re.search(r"0x([0-9a-f]+)", detail)
            if not match:
                return None
            addr = int(match.group(1), 16)
        found = self.main_space.try_find(addr)
        return found[0].site if found else None

    # -- conflict forensics ----------------------------------------------------------

    def _base_context(self, worker: Optional[WorkerState], addr: int,
                      offset: Optional[int], source: str) -> Dict[str, object]:
        """Common conflict-context fields: named object, heap tag, and the
        raw shadow bytes around the conflict (phase-1 only: a worker's
        shadow replica is what detected the conflict)."""
        ctx: Dict[str, object] = {
            "source": source,
            "address": addr,
            "offset": offset,
            "heap_tag": heap_tag_of(addr),
            "epoch_start": self.epoch_start,
            "object": None, "site": None,
            "object_base": None, "object_size": None,
            "shadow_code": None, "shadow_window": None, "window_start": None,
            "writer_iteration": None, "reader_iteration": None,
            "writer_wid": None, "reader_wid": None,
        }
        space = worker.space if worker is not None else self.main_space
        found = space.try_find(addr)
        if found is None and space is not self.main_space:
            found = self.main_space.try_find(addr)
        if found is not None:
            obj, _off = found
            ctx["object"] = obj.name
            ctx["site"] = obj.site
            ctx["object_base"] = f"0x{obj.base:x}"
            ctx["object_size"] = obj.size
        if (worker is not None and offset is not None
                and 0 <= offset < worker.shadow.size):
            meta = worker.shadow.meta
            lo = max(0, offset - 16)
            hi = min(len(meta), offset + 17)
            ctx["shadow_code"] = meta[offset]
            ctx["shadow_window"] = bytes(meta[lo:hi]).hex()
            ctx["window_start"] = lo
        return ctx

    def capture_conflict_context(self, worker: Optional[WorkerState],
                                 exc: Misspeculation) -> Misspeculation:
        """Attach a forensic context dict to a phase-1 misspeculation.

        Idempotent and cheap: a no-op when the flight recorder is off,
        when a context is already attached (process-backend replay of a
        child-captured context), or when the detail string names no
        address.  The context is a plain picklable dict so the process
        backend can ship it over the report pipe unchanged.
        """
        if exc.context is not None or not self.recorder.enabled:
            return exc
        match = re.search(r"private\+(\d+)", exc.detail)
        offset = None
        addr = None
        if match:
            offset = int(match.group(1))
            addr = self.private_base + offset
        else:
            match = re.search(r"0x([0-9a-f]+)", exc.detail)
            if match:
                addr = int(match.group(1), 16)
                if heap_tag_of(addr) == int(HeapKind.PRIVATE):
                    offset = addr - self.private_base
        if addr is None:
            return exc
        ctx = self._base_context(worker, addr, offset, "phase1")
        ts = re.search(r"written ts=(\d+), read ts=(\d+)", exc.detail)
        if ts:
            ctx["writer_iteration"] = self.epoch_start + int(ts.group(1)) - TS_BASE
            ctx["reader_iteration"] = self.epoch_start + int(ts.group(2)) - TS_BASE
        elif "before the last checkpoint" in exc.detail:
            ctx["reader_iteration"] = exc.iteration
        elif "read-live-in" in exc.detail:
            ctx["writer_iteration"] = exc.iteration
        exc.context = ctx
        return exc

    def injected_conflict_context(self, worker: WorkerState,
                                  iteration: int) -> Optional[Dict[str, object]]:
        """Deterministic conflict context for an injected misspeculation.

        Anchored at the lowest private-heap byte the worker has written
        this epoch (prediction restores count), so both backends name the
        same site/object/tag for the same injection point — the forensics
        parity tests rely on that.
        """
        if not self.recorder.enabled:
            return None
        offset = (worker.epoch_written_offsets.min_offset()
                  if worker.epoch_written_offsets else 0)
        ctx = self._base_context(worker, self.private_base + offset,
                                 offset, "injected")
        ctx["writer_iteration"] = iteration
        ctx["reader_iteration"] = iteration
        return ctx

    def _site_byte_counts(self, runs) -> Dict[str, int]:
        """Bytes-per-allocation-site histogram for coalesced runs of
        private-heap offsets.  Attribution is per object extent, not per
        byte: one address-space intersection per run, so the
        per-checkpoint recording cost stays well under the flight
        recorder's 2% clean-run budget as dirty bytes grow."""
        counts: Dict[str, int] = {}
        pb = self.private_base
        for start, end in runs:
            for s, e, obj in self.main_space.covering_pieces(
                    pb + start, end - start):
                site = obj.site or obj.name
                counts[site] = counts.get(site, 0) + (e - s)
        return counts

    def squash_to_recovery(self, misspec_iteration: int) -> None:
        """Discard all speculative state newer than the last checkpoint."""
        self.stats.recoveries += 1
        log.info("squash to recovery: re-executing [%d,%d] sequentially",
                 self.epoch_start, misspec_iteration)
        self.deferred.squash_from(self.epoch_start)
        self.speculating = False
        self.current_worker = None
        # Recovery may legally write read-only-classified objects.
        self._unprotect_readonly()

    def begin_sequential_span(self) -> None:
        """Leave speculation for an adaptive sequential-fallback span.

        Entered only at an epoch boundary (right after a recovery
        resumed), so there is no uncommitted speculative state to squash:
        the freshly forked workers are discarded wholesale when
        :meth:`resume_after_recovery` re-forks at span end.  While the
        span runs, stores commit directly to main memory (the executor's
        recovery hook marks them as committed definitions) and I/O
        bypasses the deferral queue.
        """
        self.speculating = False
        self.current_worker = None
        # Like recovery, the span may legally write read-only objects.
        self._unprotect_readonly()

    def resume_after_recovery(self, next_iteration: int) -> None:
        self._protect_readonly()
        self.refork_workers()
        self.epoch_start = next_iteration
        self.speculating = True

    def note_recovery_write(self, addr: int, size: int) -> None:
        """Called for stores executed during sequential recovery: they are
        committed definitions, so later live-in reads of them must fail
        phase-2 validation."""
        if heap_tag_of(addr) != int(HeapKind.PRIVATE):
            return
        offset = addr - self.private_base
        end = offset + size
        if end > len(self.committed_meta):
            self.committed_meta.extend(b"\x00" * (end - len(self.committed_meta)))
        self.committed_meta[offset:end] = b"\x01" * size
