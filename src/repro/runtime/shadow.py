"""Per-worker shadow heap: LRPD-style metadata generalized to arbitrary
objects (§5.1, Table 2).

One metadata byte per private-heap byte.  Codes:

* ``0`` live-in — untouched since the last checkpoint;
* ``1`` old-write — defined by an earlier iteration (before the last
  checkpoint);
* ``2`` read-live-in — read while apparently live-in; needs the phase-two
  (checkpoint-time) cross-worker check;
* ``3 + (i - i0)`` — written at iteration ``i`` (``i0`` = first iteration
  after the last checkpoint).

The transition rules implemented here are exactly the paper's Table 2,
including the documented conservative false positive: overwriting a
read-live-in byte before the checkpoint resolves it misspeculates, because
a precise answer would need a second timestamp per byte.
"""

from __future__ import annotations

from typing import Iterator, List, Set, Tuple

from ..interp.errors import Misspeculation

LIVE_IN = 0
OLD_WRITE = 1
READ_LIVE_IN = 2
TS_BASE = 3
MAX_TIMESTAMP = 255


class ShadowHeap:
    """Metadata for one worker's view of the private heap."""

    __slots__ = ("size", "meta", "written", "read_live_in")

    def __init__(self, size: int):
        self.size = size
        self.meta = bytearray(size)
        #: Byte offsets touched since the last checkpoint, for interval-
        #: based checkpointing (avoids scanning the whole heap).
        self.written: Set[Tuple[int, int]] = set()
        self.read_live_in: Set[Tuple[int, int]] = set()

    def _grow(self, needed: int) -> None:
        if needed > self.size:
            self.meta.extend(b"\x00" * (needed - self.size))
            self.size = needed

    # -- fast-phase checks (§5.1) -------------------------------------------

    def on_read(self, offset: int, size: int, ts: int, iteration: int) -> None:
        """Validate and update metadata for a private read."""
        end = offset + size
        if end > self.size:
            self._grow(end)
        meta = self.meta
        chunk = meta[offset:end]
        # Fast path: the whole range was written this iteration.
        if chunk.count(ts) == size:
            return
        # Record the interval before validating so a misspeculation part
        # way through leaves no untracked read-live-in bytes (the offsets
        # accessor filters by actual metadata value).
        self.read_live_in.add((offset, size))
        for b in range(offset, end):
            code = meta[b]
            if code == ts:
                continue
            if code == LIVE_IN:
                meta[b] = READ_LIVE_IN
            elif code == READ_LIVE_IN:
                pass
            elif code == OLD_WRITE:
                raise Misspeculation(
                    "privacy", f"read of value defined before the last "
                    f"checkpoint at private+{b}", iteration)
            else:  # a timestamp from an earlier iteration in this epoch
                raise Misspeculation(
                    "privacy", f"loop-carried flow dependence at private+{b} "
                    f"(written ts={code}, read ts={ts})", iteration)

    def on_write(self, offset: int, size: int, ts: int, iteration: int) -> None:
        """Validate and update metadata for a private write."""
        end = offset + size
        if end > self.size:
            self._grow(end)
        meta = self.meta
        chunk = meta[offset:end]
        if READ_LIVE_IN in chunk:
            b = offset + chunk.index(READ_LIVE_IN)
            raise Misspeculation(
                "privacy", f"overwrite of read-live-in byte at "
                f"private+{b} (conservative)", iteration)
        meta[offset:end] = bytes((ts,)) * size
        self.written.add((offset, size))

    # -- checkpoint support ---------------------------------------------------

    def written_offsets(self) -> Set[int]:
        out: Set[int] = set()
        for offset, size in self.written:
            out.update(range(offset, offset + size))
        return out

    def read_live_in_offsets(self) -> Set[int]:
        out: Set[int] = set()
        for offset, size in self.read_live_in:
            for b in range(offset, offset + size):
                if self.meta[b] == READ_LIVE_IN:
                    out.add(b)
        return out

    def write_iterations(self, epoch_start: int) -> Iterator[Tuple[int, int]]:
        """Yield (offset, absolute iteration) for every byte written since
        the last checkpoint."""
        for b in self.written_offsets():
            code = self.meta[b]
            if code >= TS_BASE:
                yield b, epoch_start + (code - TS_BASE)

    def reset_after_checkpoint(self) -> None:
        """Table 2 footnote: writes before the checkpoint become old-write;
        validated read-live-in bytes return to live-in."""
        meta = self.meta
        for offset, size in self.written:
            for b in range(offset, offset + size):
                if meta[b] >= TS_BASE:
                    meta[b] = OLD_WRITE
        for offset, size in self.read_live_in:
            for b in range(offset, offset + size):
                if meta[b] == READ_LIVE_IN:
                    meta[b] = LIVE_IN
        self.written.clear()
        self.read_live_in.clear()

    def mark_old_writes(self, offsets) -> None:
        """Force the given byte offsets to old-write.

        Used when replaying a checkpoint from shipped
        :class:`~repro.runtime.fragments.EpochFragment` state: the
        parent-side replica shadow never saw the forked worker's writes,
        but after the commit those bytes must read as old-write exactly
        as they would in a persistent in-process shadow.  Idempotent on
        shadows that already went through ``reset_after_checkpoint``.
        """
        for b in offsets:
            if b >= self.size:
                self._grow(b + 1)
            self.meta[b] = OLD_WRITE


def timestamp_for(iteration: int, epoch_start: int) -> int:
    """Encode an iteration as a metadata timestamp; the checkpoint period
    bounds ``iteration - epoch_start`` so this always fits one byte."""
    ts = TS_BASE + (iteration - epoch_start)
    if not TS_BASE <= ts <= MAX_TIMESTAMP:
        raise ValueError(
            f"timestamp overflow: iteration {iteration} with epoch start "
            f"{epoch_start} (checkpoint period too large)")
    return ts
