"""Per-worker shadow heap: LRPD-style metadata generalized to arbitrary
objects (§5.1, Table 2).

One metadata byte per private-heap byte.  Codes:

* ``0`` live-in — untouched since the last checkpoint;
* ``1`` old-write — defined by an earlier iteration (before the last
  checkpoint);
* ``2`` read-live-in — read while apparently live-in; needs the phase-two
  (checkpoint-time) cross-worker check;
* ``3 + (i - i0)`` — written at iteration ``i`` (``i0`` = first iteration
  after the last checkpoint).

The transition rules implemented here are exactly the paper's Table 2,
including the documented conservative false positive: overwriting a
read-live-in byte before the checkpoint resolves it misspeculates, because
a precise answer would need a second timestamp per byte.

Two implementations share the contract:

* :class:`ShadowHeap` — the default.  Table 2 transitions are applied to
  whole ``[offset, offset+size)`` windows with cached 256-byte
  ``bytes.translate`` tables, ``find``/``count`` scans, and slice
  stores; the per-byte Python loop only runs on the (rare)
  misspeculation path to name the exact failing byte.
* :class:`ReferenceShadowHeap` — the original per-byte loops, kept as a
  differential oracle.  Select it process-wide with ``REPRO_SHADOW=ref``
  (see :func:`make_shadow`); ``tests/test_shadow_vectorized.py`` drives
  both and asserts identical metadata and misspeculations.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from ..interp.errors import Misspeculation
from .intervals import IntervalSet, constant_runs, runs_from_offsets, value_runs

LIVE_IN = 0
OLD_WRITE = 1
READ_LIVE_IN = 2
TS_BASE = 3
MAX_TIMESTAMP = 255

#: Environment variable selecting the shadow implementation; value
#: ``"ref"`` selects the per-byte reference oracle (and, in
#: :mod:`repro.runtime.system`, the per-byte extract/validate/merge
#: paths that go with it).
SHADOW_ENV = "REPRO_SHADOW"
REFERENCE_MODE = "ref"


def use_reference() -> bool:
    """True when ``REPRO_SHADOW=ref`` selects the per-byte oracle."""
    return os.environ.get(SHADOW_ENV, "") == REFERENCE_MODE


#: Translate table for a validated read window: live-in bytes become
#: read-live-in, every other code is left alone.
_PROMOTE_READ = bytes(
    READ_LIVE_IN if code == LIVE_IN else code for code in range(256))
#: Checkpoint reset over written runs: timestamps demote to old-write.
_RESET_WRITES = bytes(
    OLD_WRITE if code >= TS_BASE else code for code in range(256))
#: Checkpoint reset over read runs: validated read-live-in returns to
#: live-in.
_RESET_READS = bytes(
    LIVE_IN if code == READ_LIVE_IN else code for code in range(256))

#: Per-timestamp read-classification tables: 0 = acceptable (own ts,
#: live-in, read-live-in), 1 = old-write, 2 = a different timestamp
#: (loop-carried flow).  Built lazily, one 256-byte table per distinct
#: ts seen (the checkpoint period bounds that at 253).
_READ_CLASS: Dict[int, bytes] = {}


def _read_class_table(ts: int) -> bytes:
    table = _READ_CLASS.get(ts)
    if table is None:
        table = bytes(
            0 if code in (ts, LIVE_IN, READ_LIVE_IN)
            else (1 if code == OLD_WRITE else 2)
            for code in range(256))
        _READ_CLASS[ts] = table
    return table


class ShadowHeap:
    """Metadata for one worker's view of the private heap (vectorized)."""

    __slots__ = ("size", "meta", "written", "read_live_in")

    def __init__(self, size: int):
        self.size = size
        self.meta = bytearray(size)
        #: Byte intervals touched since the last checkpoint, for interval-
        #: based checkpointing (avoids scanning the whole heap).
        self.written = IntervalSet()
        self.read_live_in = IntervalSet()

    def _grow(self, needed: int) -> None:
        if needed > self.size:
            self.meta.extend(b"\x00" * (needed - self.size))
            self.size = needed

    # -- fast-phase checks (§5.1) -------------------------------------------

    def on_read(self, offset: int, size: int, ts: int, iteration: int) -> None:
        """Validate and update metadata for a private read."""
        end = offset + size
        if end > self.size:
            self._grow(end)
        meta = self.meta
        chunk = bytes(meta[offset:end])
        # Fast path: the whole range was written this iteration.
        if chunk.count(ts) == size:
            return
        # Record the interval before validating so a misspeculation part
        # way through leaves no untracked read-live-in bytes (the offsets
        # accessor filters by actual metadata value).
        self.read_live_in.add_range(offset, end)
        flags = chunk.translate(_read_class_table(ts))
        bad_old = flags.find(1)
        bad_flow = flags.find(2)
        if bad_old >= 0 or bad_flow >= 0:
            bad = min(i for i in (bad_old, bad_flow) if i >= 0)
            # Bytes before the failing one were accepted and (if live-in)
            # promoted, exactly as the per-byte loop leaves them.
            if bad:
                meta[offset:offset + bad] = chunk[:bad].translate(_PROMOTE_READ)
            b = offset + bad
            if bad == bad_old:
                raise Misspeculation(
                    "privacy", f"read of value defined before the last "
                    f"checkpoint at private+{b}", iteration)
            raise Misspeculation(
                "privacy", f"loop-carried flow dependence at private+{b} "
                f"(written ts={chunk[bad]}, read ts={ts})", iteration)
        meta[offset:end] = chunk.translate(_PROMOTE_READ)

    def on_write(self, offset: int, size: int, ts: int, iteration: int) -> None:
        """Validate and update metadata for a private write."""
        end = offset + size
        if end > self.size:
            self._grow(end)
        meta = self.meta
        b = meta.find(READ_LIVE_IN, offset, end)
        if b >= 0:
            raise Misspeculation(
                "privacy", f"overwrite of read-live-in byte at "
                f"private+{b} (conservative)", iteration)
        meta[offset:end] = bytes((ts,)) * size
        self.written.add_range(offset, end)

    # -- checkpoint support ---------------------------------------------------

    def written_offsets(self) -> Set[int]:
        return self.written.offsets()

    def read_live_in_offsets(self) -> Set[int]:
        out: Set[int] = set()
        for start, end in self.read_live_in_runs():
            out.update(range(start, end))
        return out

    def read_live_in_runs(self) -> List[Tuple[int, int]]:
        """Coalesced runs of bytes currently marked read-live-in."""
        meta = self.meta
        out: List[Tuple[int, int]] = []
        for start, end in self.read_live_in.runs():
            out.extend(value_runs(bytes(meta[start:end]), READ_LIVE_IN, start))
        return out

    def write_ts_runs(self) -> List[Tuple[int, int, int]]:
        """Maximal ``(start, end, ts)`` runs of bytes written this epoch
        that still carry a timestamp code.  The basis for bulk fragment
        extraction: one entry per constant-timestamp run, not per byte."""
        meta = self.meta
        out: List[Tuple[int, int, int]] = []
        for start, end in self.written.runs():
            for run_start, run_end, code in constant_runs(
                    bytes(meta[start:end]), start):
                if code >= TS_BASE:
                    out.append((run_start, run_end, code))
        return out

    def write_iterations(self, epoch_start: int) -> Iterator[Tuple[int, int]]:
        """Yield (offset, absolute iteration) for every byte written since
        the last checkpoint."""
        for start, end, code in self.write_ts_runs():
            iteration = epoch_start + (code - TS_BASE)
            for b in range(start, end):
                yield b, iteration

    def reset_after_checkpoint(self) -> None:
        """Table 2 footnote: writes before the checkpoint become old-write;
        validated read-live-in bytes return to live-in."""
        meta = self.meta
        for start, end in self.written.runs():
            meta[start:end] = bytes(meta[start:end]).translate(_RESET_WRITES)
        for start, end in self.read_live_in.runs():
            meta[start:end] = bytes(meta[start:end]).translate(_RESET_READS)
        self.written.clear()
        self.read_live_in.clear()

    def mark_old_writes(self, offsets: Iterable[int]) -> None:
        """Force the given byte offsets to old-write.

        Used when replaying a checkpoint from shipped
        :class:`~repro.runtime.fragments.EpochFragment` state: the
        parent-side replica shadow never saw the forked worker's writes,
        but after the commit those bytes must read as old-write exactly
        as they would in a persistent in-process shadow.  Idempotent on
        shadows that already went through ``reset_after_checkpoint``.
        """
        self.mark_old_write_runs(runs_from_offsets(offsets))

    def mark_old_write_runs(self, runs: Sequence[Tuple[int, int]]) -> None:
        """Run-based :meth:`mark_old_writes`: grows once to the highest
        end offset, then marks each run with one slice store."""
        if not runs:
            return
        top = max(end for _start, end in runs)
        if top > self.size:
            self._grow(top)
        meta = self.meta
        for start, end in runs:
            meta[start:end] = bytes((OLD_WRITE,)) * (end - start)


class ReferenceShadowHeap:
    """The original per-byte Table 2 implementation, kept verbatim as a
    differential oracle for the vectorized :class:`ShadowHeap` (selected
    with ``REPRO_SHADOW=ref``).  Deliberately slow; do not use outside
    tests and the perf harness baseline."""

    __slots__ = ("size", "meta", "written", "read_live_in")

    def __init__(self, size: int):
        self.size = size
        self.meta = bytearray(size)
        self.written: Set[Tuple[int, int]] = set()
        self.read_live_in: Set[Tuple[int, int]] = set()

    def _grow(self, needed: int) -> None:
        if needed > self.size:
            self.meta.extend(b"\x00" * (needed - self.size))
            self.size = needed

    def on_read(self, offset: int, size: int, ts: int, iteration: int) -> None:
        """Validate and update metadata for a private read (per byte)."""
        end = offset + size
        if end > self.size:
            self._grow(end)
        meta = self.meta
        chunk = meta[offset:end]
        if chunk.count(ts) == size:
            return
        self.read_live_in.add((offset, size))
        for b in range(offset, end):
            code = meta[b]
            if code == ts:
                continue
            if code == LIVE_IN:
                meta[b] = READ_LIVE_IN
            elif code == READ_LIVE_IN:
                pass
            elif code == OLD_WRITE:
                raise Misspeculation(
                    "privacy", f"read of value defined before the last "
                    f"checkpoint at private+{b}", iteration)
            else:  # a timestamp from an earlier iteration in this epoch
                raise Misspeculation(
                    "privacy", f"loop-carried flow dependence at private+{b} "
                    f"(written ts={code}, read ts={ts})", iteration)

    def on_write(self, offset: int, size: int, ts: int, iteration: int) -> None:
        """Validate and update metadata for a private write (per byte)."""
        end = offset + size
        if end > self.size:
            self._grow(end)
        meta = self.meta
        chunk = meta[offset:end]
        if READ_LIVE_IN in chunk:
            b = offset + chunk.index(READ_LIVE_IN)
            raise Misspeculation(
                "privacy", f"overwrite of read-live-in byte at "
                f"private+{b} (conservative)", iteration)
        meta[offset:end] = bytes((ts,)) * size
        self.written.add((offset, size))

    def written_offsets(self) -> Set[int]:
        out: Set[int] = set()
        for offset, size in self.written:
            out.update(range(offset, offset + size))
        return out

    def read_live_in_offsets(self) -> Set[int]:
        out: Set[int] = set()
        for offset, size in self.read_live_in:
            for b in range(offset, offset + size):
                if self.meta[b] == READ_LIVE_IN:
                    out.add(b)
        return out

    def write_iterations(self, epoch_start: int) -> Iterator[Tuple[int, int]]:
        """Yield (offset, absolute iteration) for every byte written since
        the last checkpoint."""
        for b in self.written_offsets():
            code = self.meta[b]
            if code >= TS_BASE:
                yield b, epoch_start + (code - TS_BASE)

    def reset_after_checkpoint(self) -> None:
        """Table 2 footnote: per-byte demotion after a checkpoint."""
        meta = self.meta
        for offset, size in self.written:
            for b in range(offset, offset + size):
                if meta[b] >= TS_BASE:
                    meta[b] = OLD_WRITE
        for offset, size in self.read_live_in:
            for b in range(offset, offset + size):
                if meta[b] == READ_LIVE_IN:
                    meta[b] = LIVE_IN
        self.written.clear()
        self.read_live_in.clear()

    def mark_old_writes(self, offsets: Iterable[int]) -> None:
        """Force the given byte offsets to old-write (grows once)."""
        offsets = list(offsets)
        if not offsets:
            return
        top = max(offsets)
        if top >= self.size:
            self._grow(top + 1)
        for b in offsets:
            self.meta[b] = OLD_WRITE

    def mark_old_write_runs(self, runs: Sequence[Tuple[int, int]]) -> None:
        """Run-based entry point, expanded back to offsets per byte."""
        offsets: List[int] = []
        for start, end in runs:
            offsets.extend(range(start, end))
        self.mark_old_writes(offsets)


def make_shadow(size: int):
    """Construct the configured shadow implementation (``REPRO_SHADOW``)."""
    if use_reference():
        return ReferenceShadowHeap(size)
    return ShadowHeap(size)


def timestamp_for(iteration: int, epoch_start: int) -> int:
    """Encode an iteration as a metadata timestamp; the checkpoint period
    bounds ``iteration - epoch_start`` so this always fits one byte."""
    ts = TS_BASE + (iteration - epoch_start)
    if not TS_BASE <= ts <= MAX_TIMESTAMP:
        raise ValueError(
            f"timestamp overflow: iteration {iteration} with epoch start "
            f"{epoch_start} (checkpoint period too large)")
    return ts
