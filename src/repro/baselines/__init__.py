"""Comparison systems: non-speculative DOALL (Figure 7), the LRPD
applicability model (Table 1), and naive dependence speculation (§2)."""

from .depspec import DepSpecEstimate, estimate_dependence_speculation
from .doall_only import (
    DOALLCandidate,
    DOALLOnlyExecutor,
    DOALLOnlyResult,
    analyze_loops,
    run_doall_only,
    select_compatible,
)
from .lrpd import LRPDVerdict, judge_hot_loop, lrpd_applicable

__all__ = [
    "DOALLCandidate", "DOALLOnlyExecutor", "DOALLOnlyResult",
    "DepSpecEstimate", "LRPDVerdict", "analyze_loops",
    "estimate_dependence_speculation", "judge_hot_loop", "lrpd_applicable",
    "run_doall_only", "select_compatible",
]
