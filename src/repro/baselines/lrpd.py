"""LRPD-style baseline (Table 1): speculative run-time parallelization of
loops *with array-restricted memory layout*.

The LRPD test [22] evaluates the privatization criterion speculatively
with shadow arrays, but its memory layout is limited to arrays and scalar
variables with statically known base and size.  This module models that
applicability frontier:

* ``applicable`` — every memory access in the loop region resolves
  statically to a named global array/scalar (no pointers loaded from
  memory, no dynamic allocation, no recursive structures);
* when applicable, LRPD can privatize and reduce exactly like Privateer
  (the criterion is the same); when not, the loop is out of scope.

Used by the Table 1 capability-matrix bench: LRPD passes on the array
feature probe and fails on every linked/dynamic-structure program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..analysis.loops import Loop
from ..analysis.pointsto import PointsToAnalysis
from ..frontend.lower import compile_minic
from ..ir.instructions import Call, Load, Store
from ..ir.module import Module
from ..profiling.data import LoopRef
from ..profiling.looptracker import LoopInfoCache
from ..profiling.timeprof import profile_execution_time
from ..transform.selection import region_functions


@dataclass
class LRPDVerdict:
    """Whether an LRPD-style array-only speculative test could handle
    this loop, with the disqualifying reasons (Table 1).
    """
    ref: LoopRef
    applicable: bool
    reasons: List[str] = field(default_factory=list)


def lrpd_applicable(module: Module, ref: LoopRef) -> LRPDVerdict:
    """Can the LRPD test even express this loop's memory layout?"""
    reasons: List[str] = []
    cache = LoopInfoCache(module)
    fn = module.function_named(ref.function)
    loop = cache.info(fn).loop_with_header(ref.header)
    pta = PointsToAnalysis(module)

    region_fns = [fn, *region_functions(module, fn, loop)]
    blocks = list(loop.blocks)
    for g in region_fns[1:]:
        blocks.extend(g.blocks)

    for bb in blocks:
        for inst in bb.instructions:
            if isinstance(inst, Call) and inst.callee.name in (
                "malloc", "calloc", "free", "h_alloc", "h_dealloc"
            ):
                reasons.append(
                    f"dynamic allocation at {inst.site_id()} — object count "
                    f"and sizes unknown to an array-based layout")
                continue
            if not isinstance(inst, (Load, Store)):
                continue
            pointer = inst.pointer  # type: ignore[union-attr]
            pts = pta.points_to(pointer)
            if pts.is_top:
                reasons.append(
                    f"access {inst.site_id()} through an unanalyzable "
                    f"pointer — not a named array")
            else:
                for obj in pts.objects:
                    if obj.kind == "heap":
                        reasons.append(
                            f"access {inst.site_id()} targets heap object "
                            f"{obj.name} — outside the array model")
    # Deduplicate while keeping order.
    seen = set()
    unique = [r for r in reasons if not (r in seen or seen.add(r))]
    return LRPDVerdict(ref, not unique, unique[:8])


def judge_hot_loop(source: str, name: str, entry: str = "main",
                   args: Sequence[object] = ()) -> LRPDVerdict:
    """Compile, find the hottest loop, and judge LRPD applicability."""
    module = compile_minic(source, name)
    report = profile_execution_time(module, entry, tuple(args))
    hottest = report.hottest(top_level_only=False)
    if not hottest:
        return LRPDVerdict(LoopRef(entry, "?"), False, ["no loops executed"])
    return lrpd_applicable(module, hottest[0].ref)
