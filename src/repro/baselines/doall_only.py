"""DOALL-only baseline (Figure 7): non-speculative parallelization.

This models the comparison system in §6.1 — a DOALL transform with *no*
privatization, *no* reductions, and *no* speculation.  Loops must be
proven parallel by static analysis alone (:func:`doall_legal_static`), so:

* dijkstra / enc-md5: nothing is parallelizable (real false dependences
  through the reused structures);
* swaptions: the loop is parallelizable in truth but cannot be *proven*
  so (linked matrices defeat the points-to analysis);
* blackscholes: only the inner per-option loop is provable;
* alvinn: only deeply nested inner loops are provable, and spawning
  workers for them costs more than they gain — the slowdown in Figure 7.

Execution: legal loops run their iterations round-robin over workers
*directly in main memory* (no isolation needed — independence is proven),
paying spawn/join per invocation but no checkpoint or validation costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.depgraph import doall_legal_static
from ..analysis.loops import InductionVariable, Loop
from ..analysis.modref import ModRefAnalysis
from ..analysis.pointsto import PointsToAnalysis
from ..frontend.lower import compile_minic
from ..interp.errors import GuestExit
from ..interp.interpreter import BlockBreakpoint, Frame, Interpreter
from ..ir.instructions import Phi
from ..ir.module import BasicBlock, Module
from ..parallel.costmodel import DEFAULT_COSTS, CostModelConfig
from ..parallel.executor import trip_count
from ..profiling.data import LoopRef
from ..profiling.looptracker import LoopInfoCache
from ..profiling.timeprof import profile_execution_time
from ..transform.selection import loops_may_be_simultaneously_active


#: Minimum profiled cycles per invocation for a loop to be worth a
#: spawn/join round trip — the profitability cutoff every production
#: DOALL compiler applies before dispatching worker threads.
MIN_INVOCATION_CYCLES = 2500


@dataclass
class DOALLCandidate:
    """A loop the non-speculative DOALL baseline considered: its
    induction variable, profiled cycles, and static legality verdict.
    """
    ref: LoopRef
    loop: Loop
    iv: InductionVariable
    cycles: int
    invocations: int
    legal: bool
    reasons: List[str] = field(default_factory=list)

    @property
    def cycles_per_invocation(self) -> float:
        return self.cycles / self.invocations if self.invocations else 0.0


@dataclass
class DOALLOnlyResult:
    """Execution result of the DOALL-only baseline (Fig. 7): output
    plus parallel/sequential cycle accounting.
    """
    return_value: object
    output: List[str]
    workers: int
    wall_cycles: int
    parallel_cycles: int
    sequential_cycles_outside: int
    invocations: int
    selected: List[LoopRef] = field(default_factory=list)
    candidates: List[DOALLCandidate] = field(default_factory=list)

    def speedup_over(self, sequential_cycles: int) -> float:
        return sequential_cycles / self.wall_cycles if self.wall_cycles else 0.0


def analyze_loops(module: Module, entry: str = "main",
                  args: Sequence[object] = ()) -> List[DOALLCandidate]:
    """Statically judge every profiled-hot loop; returns candidates with
    legality verdicts, hottest first."""
    report = profile_execution_time(module, entry, tuple(args))
    cache = LoopInfoCache(module)
    pta = PointsToAnalysis(module)
    modref = ModRefAnalysis(module, pta)
    out: List[DOALLCandidate] = []
    for rec in report.hottest(top_level_only=False):
        fn = module.function_named(rec.ref.function)
        info = cache.info(fn)
        loop = info.loop_with_header(rec.ref.header)
        iv = info.find_induction_variable(loop)
        verdict = doall_legal_static(module, loop, info, pta, modref)
        out.append(DOALLCandidate(
            ref=rec.ref, loop=loop, iv=iv, cycles=rec.cycles,
            invocations=rec.invocations,
            legal=bool(verdict) and iv is not None,
            reasons=verdict.reasons,
        ))
    return out


def select_compatible(
    module: Module,
    candidates: List[DOALLCandidate],
    min_invocation_cycles: int = MIN_INVOCATION_CYCLES,
) -> List[DOALLCandidate]:
    """Greedy largest-first selection of legal loops that are never
    simultaneously active (no nested parallelism), subject to a
    profitability cutoff per invocation."""
    selected: List[DOALLCandidate] = []
    for cand in sorted(candidates, key=lambda c: c.cycles, reverse=True):
        if not cand.legal or cand.iv is None:
            continue
        if cand.cycles_per_invocation < min_invocation_cycles:
            continue
        if any(
            loops_may_be_simultaneously_active(
                module, cand.ref, cand.loop, other.ref, other.loop)
            for other in selected
        ):
            continue
        selected.append(cand)
    return selected


class DOALLOnlyExecutor:
    """Executes the selected loops' iterations round-robin over simulated
    workers, directly against main memory."""

    def __init__(self, module: Module, selected: List[DOALLCandidate],
                 workers: int = 24, costs: Optional[CostModelConfig] = None,
                 min_parallel_trips: int = 2):
        self.module = module
        self.selected = {c.loop.header: c for c in selected}
        self.workers = max(1, workers)
        self.costs = costs or DEFAULT_COSTS
        self.min_parallel_trips = min_parallel_trips
        self.interp = Interpreter(module)
        for header in self.selected:
            self.interp.block_breakpoints.add(header)
        self.parallel_cycles = 0
        self.cycles_in_invocations = 0
        self.invocations = 0

    def run(self, entry: str = "main", args: Sequence[object] = ()) -> DOALLOnlyResult:
        interp = self.interp
        interp.push_function(self.module.function_named(entry), args)
        result: object = None
        try:
            while interp.frames:
                try:
                    result = interp.run_until_event()
                except BlockBreakpoint as bp:
                    cand = self.selected.get(bp.target)
                    if cand is None or bp.prev in cand.loop.blocks:
                        interp.resume_at(bp.frame, bp.target, bp.prev)
                    else:
                        self._run_invocation(bp, cand)
        except GuestExit as e:
            result = e.code
            interp.frames.clear()
        seq_outside = interp.cycles - self.cycles_in_invocations
        return DOALLOnlyResult(
            return_value=result,
            output=list(interp.output),
            workers=self.workers,
            wall_cycles=seq_outside + self.parallel_cycles,
            parallel_cycles=self.parallel_cycles,
            sequential_cycles_outside=seq_outside,
            invocations=self.invocations,
            selected=[c.ref for c in self.selected.values()],
        )

    def _run_invocation(self, bp: BlockBreakpoint, cand: DOALLCandidate) -> None:
        interp = self.interp
        frame = bp.frame
        iv = cand.iv
        cycles_at_entry = interp.cycles
        init = int(interp.value_of(frame, iv.init))
        bound = int(interp.value_of(frame, iv.bound))
        trips = trip_count(init, bound, iv.step, iv.pred, iv.exit_on_true)
        if trips is None or trips < self.min_parallel_trips:
            interp.resume_at(frame, bp.target, bp.prev)
            return

        self.invocations += 1
        workers = self.workers
        spawn = self.costs.spawn_time(workers)
        clocks = [spawn] * workers
        header = cand.loop.header
        phi_count = sum(1 for i in header.instructions if isinstance(i, Phi))

        main_stack = interp.swap_stack([])
        worker_frames: List[Optional[Frame]] = [None] * workers
        for i in range(trips):
            w = i % workers
            if worker_frames[w] is None:
                worker_frames[w] = frame.copy()
            wframe = worker_frames[w]
            interp.swap_stack([wframe])
            c0 = interp.cycles
            self._execute_iteration(wframe, cand, init, i)
            clocks[w] += interp.cycles - c0
            interp.swap_stack([])

        wall = max(clocks) + self.costs.join_time(workers)
        self.parallel_cycles += wall
        self.cycles_in_invocations += interp.cycles - cycles_at_entry

        interp.swap_stack(main_stack)
        ty = iv.phi.type
        final = init + trips * iv.step
        frame.regs[iv.phi] = ty.wrap(final) if hasattr(ty, "wrap") else final
        frame.prev_block = frame.block
        frame.block = header
        frame.index = phi_count

    def _execute_iteration(self, wframe: Frame, cand: DOALLCandidate,
                           init: int, i: int) -> None:
        interp = self.interp
        iv = cand.iv
        interp.enter_block(wframe, cand.loop.header, fire_breakpoints=False)
        ty = iv.phi.type
        value = init + i * iv.step
        wframe.regs[iv.phi] = ty.wrap(value) if hasattr(ty, "wrap") else value
        while True:
            try:
                interp.run_until_event()
            except BlockBreakpoint as bblk:
                if bblk.target is cand.loop.header and len(interp.frames) == 1:
                    return
                interp.resume_at(bblk.frame, bblk.target, bblk.prev)


def run_doall_only(source: str, name: str, entry: str = "main",
                   args: Sequence[object] = (), workers: int = 24,
                   costs: Optional[CostModelConfig] = None) -> DOALLOnlyResult:
    """Compile, statically select, and run under the DOALL-only baseline."""
    module = compile_minic(source, name)
    candidates = analyze_loops(module, entry, args)
    selected = select_compatible(module, candidates)
    executor = DOALLOnlyExecutor(module, selected, workers=workers, costs=costs)
    result = executor.run(entry, tuple(args))
    result.candidates = candidates
    return result
