"""Naive dependence-speculation baseline (§2).

Dependence speculation removes a dependence by *predicting it never
manifests* and squashing when it does.  The paper's motivation: for
programs like dijkstra, the false dependences on reused structures
manifest on **every** iteration, so a dependence-speculating system
misspeculates constantly, while privatization succeeds.

This module estimates, from the loop profile, how often each
privatization-removable dependence would actually manifest under naive
dependence speculation, and models the resulting performance: every
iteration that touches a reused location after another iteration wrote it
triggers a squash-and-replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..frontend.lower import compile_minic
from ..interp.interpreter import Hook, Interpreter
from ..ir.instructions import Call, Instruction
from ..ir.module import Module
from ..profiling.data import LoopRef
from ..profiling.looptracker import ActiveLoop, LoopInfoCache, LoopTracker


class _ManifestHook(Hook):
    """Counts iterations in which *any* same-location cross-iteration
    dependence (flow, anti, or output) manifests."""

    def __init__(self, module: Module, ref: LoopRef):
        self.ref = ref
        self.cache = LoopInfoCache(module)
        self.tracker = LoopTracker(self.cache, on_enter=self._enter,
                                   on_iterate=self._iterate, on_exit=self._exit)
        self.active = None
        self.iteration_touched = False
        self.iterations = 0
        self.conflicting_iterations = 0
        self.last_touch: Dict[int, int] = {}  # address -> iteration

    def _enter(self, active: ActiveLoop) -> None:
        if active.ref == self.ref and self.active is None:
            self.active = active
            self.last_touch.clear()
            self.iteration_touched = False

    def _iterate(self, active: ActiveLoop) -> None:
        if active is self.active:
            self.iterations += 1
            if self.iteration_touched:
                self.conflicting_iterations += 1
            self.iteration_touched = False

    def _exit(self, active: ActiveLoop, cycles: int) -> None:
        if active is self.active:
            self.active = None

    def _touch(self, addr: int, size: int, is_write: bool) -> None:
        if self.active is None:
            return
        it = self.active.iteration
        for b in range(addr, addr + size, max(1, size)):
            prev = self.last_touch.get(b)
            if prev is not None and prev != it:
                self.iteration_touched = True
            if is_write:
                self.last_touch[b] = it

    def on_load(self, interp, inst, addr, size) -> None:
        self._touch(addr, size, is_write=False)

    def on_store(self, interp, inst, addr, size) -> None:
        self._touch(addr, size, is_write=True)

    def on_branch(self, interp, inst, target) -> None:
        self.tracker.handle_branch(interp, inst, target)

    def on_return(self, interp, fn) -> None:
        self.tracker.handle_return(interp, fn)


@dataclass
class DepSpecEstimate:
    """Profiled misspeculation rate for naive dependence speculation
    on one loop: conflicting iterations over total iterations (§2).
    """
    ref: LoopRef
    iterations: int
    conflicting_iterations: int

    @property
    def misspec_rate(self) -> float:
        if not self.iterations:
            return 0.0
        return self.conflicting_iterations / self.iterations

    def projected_speedup(self, workers: int, replay_factor: float = 2.0) -> float:
        """Optimistic model: conflict-free iterations scale linearly;
        each conflicting iteration serializes and pays a replay."""
        if not self.iterations:
            return 1.0
        clean = self.iterations - self.conflicting_iterations
        time = clean / workers + self.conflicting_iterations * replay_factor
        return self.iterations / time if time else float(workers)


def estimate_dependence_speculation(
    source: str, name: str, ref: LoopRef = None,  # type: ignore[assignment]
    entry: str = "main", args: Sequence[object] = (),
) -> DepSpecEstimate:
    """Measure how often cross-iteration dependences manifest in the hot
    loop (they manifest on ~100% of iterations for dijkstra-like reuse)."""
    module = compile_minic(source, name)
    if ref is None:
        from ..profiling.timeprof import profile_execution_time

        report = profile_execution_time(module, entry, tuple(args))
        ref = report.hottest(top_level_only=False)[0].ref
    interp = Interpreter(module)
    hook = _ManifestHook(module, ref)
    interp.hooks.append(hook)
    interp.run(entry, tuple(args))
    return DepSpecEstimate(ref, hook.iterations, hook.conflicting_iterations)
