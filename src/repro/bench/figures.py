"""Regeneration of every table and figure in the paper's evaluation.

Each ``figureN_data`` / ``tableN_data`` function returns plain data
structures; ``render_*`` helpers print them in the shape the paper
reports.  The benchmark harness under ``benchmarks/`` drives these and
records paper-vs-measured in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..baselines.doall_only import run_doall_only
from ..baselines.lrpd import judge_hot_loop
from ..bench.pipeline import PreparedProgram
from ..workloads import ALL_WORKLOADS, Workload

#: Worker counts used throughout the evaluation (§6.2).
WORKER_COUNTS = (4, 8, 12, 16, 20, 24)

#: Figure 9 injected misspeculation rates (fraction of iterations).  The
#: paper sweeps 0..1%; with our scaled-down iteration counts (~10^2 per
#: invocation vs ~10^5) the equivalent *checkpoint-failure* fractions land
#: at these rates — e.g. paper 0.1% ~ "1 in 4 checkpoints fails" ~ our 1%.
MISSPEC_RATES = (0.0, 0.01, 0.02, 0.05)


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


class ProgramCache:
    """Shares the expensive profile->classify->transform pipeline across
    experiments (one prepare per workload per session)."""

    def __init__(self, use_ref: bool = True):
        self.use_ref = use_ref
        self._prepared: Dict[str, PreparedProgram] = {}

    def get(self, workload: Workload) -> PreparedProgram:
        if workload.name not in self._prepared:
            self._prepared[workload.name] = workload.prepare(use_ref=self.use_ref)
        return self._prepared[workload.name]


# -- Figure 6: whole-program speedups --------------------------------------


def figure6_data(
    cache: ProgramCache,
    workloads: Optional[Sequence[Workload]] = None,
    worker_counts: Sequence[int] = WORKER_COUNTS,
) -> Dict[str, Dict[int, float]]:
    """Speedup over best sequential for each program at each worker count,
    plus the 'geomean' pseudo-program."""
    out: Dict[str, Dict[int, float]] = {}
    for w in workloads or ALL_WORKLOADS:
        prog = cache.get(w)
        out[w.name] = {}
        for workers in worker_counts:
            result = prog.execute(workers=workers)
            out[w.name][workers] = prog.speedup(result)
    out["geomean"] = {
        workers: geomean(out[w.name][workers] for w in (workloads or ALL_WORKLOADS))
        for workers in worker_counts
    }
    return out


def render_figure6(data: Dict[str, Dict[int, float]]) -> str:
    workers = sorted(next(iter(data.values())).keys())
    head = "program        " + "".join(f"{w:>8d}" for w in workers)
    lines = [head, "-" * len(head)]
    for name, series in data.items():
        lines.append(
            f"{name:<15s}" + "".join(f"{series[w]:8.2f}" for w in workers))
    return "\n".join(lines)


# -- Figure 7: enabling effect at 24 workers ----------------------------------


def figure7_data(
    cache: ProgramCache,
    workloads: Optional[Sequence[Workload]] = None,
    workers: int = 24,
) -> Dict[str, Dict[str, float]]:
    """Privateer vs non-speculative DOALL-only at ``workers``."""
    out: Dict[str, Dict[str, float]] = {}
    for w in workloads or ALL_WORKLOADS:
        prog = cache.get(w)
        priv = prog.speedup(prog.execute(workers=workers))
        base = run_doall_only(w.source, w.name, args=prog.ref_args,
                              workers=workers)
        out[w.name] = {
            "privateer": priv,
            "doall_only": base.speedup_over(prog.sequential.cycles),
            "doall_loops": len(base.selected),
        }
    names = list(out)
    out["geomean"] = {
        "privateer": geomean(out[n]["privateer"] for n in names),
        "doall_only": geomean(out[n]["doall_only"] for n in names),
        "doall_loops": 0,
    }
    return out


def render_figure7(data: Dict[str, Dict[str, float]]) -> str:
    lines = [f"{'program':<15s}{'DOALL-only':>12s}{'Privateer':>12s}"]
    for name, row in data.items():
        lines.append(
            f"{name:<15s}{row['doall_only']:12.2f}{row['privateer']:12.2f}")
    return "\n".join(lines)


# -- Figure 8: overhead breakdown ------------------------------------------------


def figure8_data(
    cache: ProgramCache,
    workloads: Optional[Sequence[Workload]] = None,
    worker_counts: Sequence[int] = WORKER_COUNTS,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    out: Dict[str, Dict[int, Dict[str, float]]] = {}
    for w in workloads or ALL_WORKLOADS:
        prog = cache.get(w)
        out[w.name] = {}
        for workers in worker_counts:
            result = prog.execute(workers=workers)
            out[w.name][workers] = result.overhead_breakdown()
    return out


def render_figure8(data: Dict[str, Dict[int, Dict[str, float]]]) -> str:
    lines: List[str] = []
    for name, per_w in data.items():
        lines.append(f"{name}:")
        lines.append(f"  {'workers':>8s}{'useful':>9s}{'priv R':>9s}"
                     f"{'priv W':>9s}{'ckpt':>9s}{'other':>9s}"
                     f"{'spawn/join':>11s}")
        for workers, bd in sorted(per_w.items()):
            lines.append(
                f"  {workers:>8d}{bd['useful']:9.3f}{bd['private_read']:9.3f}"
                f"{bd['private_write']:9.3f}{bd['checkpoint']:9.3f}"
                f"{bd.get('other_validation', 0.0):9.3f}"
                f"{bd['spawn_join']:11.3f}")
    return "\n".join(lines)


# -- Figure 9: misspeculation sensitivity ---------------------------------------------


def figure9_data(
    cache: ProgramCache,
    workloads: Optional[Sequence[Workload]] = None,
    rates: Sequence[float] = MISSPEC_RATES,
    workers: int = 24,
) -> Dict[str, Dict[float, float]]:
    """Speedup at each injected misspeculation rate (fraction of
    iterations that misspeculate)."""
    out: Dict[str, Dict[float, float]] = {}
    for w in workloads or ALL_WORKLOADS:
        prog = cache.get(w)
        out[w.name] = {}
        for rate in rates:
            period = 0 if rate <= 0 else max(2, round(1.0 / rate))
            result = prog.execute(workers=workers, misspec_period=period)
            out[w.name][rate] = prog.speedup(result)
    return out


def render_figure9(data: Dict[str, Dict[float, float]]) -> str:
    rates = sorted(next(iter(data.values())).keys())
    head = "program        " + "".join(f"{r * 100:>9.2f}%" for r in rates)
    lines = [head, "-" * len(head)]
    for name, series in data.items():
        lines.append(f"{name:<15s}"
                     + "".join(f"{series[r]:10.2f}" for r in rates))
    return "\n".join(lines)


# -- Table 3: program details ------------------------------------------------------------


def table3_row(prog: PreparedProgram, result) -> Dict[str, object]:
    stats = result.runtime_stats
    counts = prog.assignment.counts()
    return {
        "program": prog.name,
        "invocations": stats.invocations,
        "checkpoints": stats.checkpoints,
        "private_bytes_read": stats.private_read_bytes,
        "private_bytes_written": stats.private_write_bytes,
        "private_sites": counts["private"],
        "short_lived_sites": counts["short_lived"],
        "read_only_sites": counts["read_only"],
        "redux_sites": counts["redux"],
        "unrestricted_sites": counts["unrestricted"],
        "extras": ", ".join(prog.assignment.extras()) or "-",
    }


def table3_data(cache: ProgramCache,
                workloads: Optional[Sequence[Workload]] = None,
                workers: int = 24) -> List[Dict[str, object]]:
    rows = []
    for w in workloads or ALL_WORKLOADS:
        prog = cache.get(w)
        result = prog.execute(workers=workers)
        rows.append(table3_row(prog, result))
    return rows


def render_table3(rows: List[Dict[str, object]]) -> str:
    cols = [
        ("program", "program", 13),
        ("invocations", "invoc", 7),
        ("checkpoints", "ckpts", 7),
        ("private_bytes_read", "privR(B)", 10),
        ("private_bytes_written", "privW(B)", 10),
        ("private_sites", "priv", 6),
        ("short_lived_sites", "short", 6),
        ("read_only_sites", "ro", 4),
        ("redux_sites", "redux", 6),
        ("unrestricted_sites", "unrest", 7),
        ("extras", "extras", 20),
    ]
    head = " ".join(f"{label:>{width}s}" for _k, label, width in cols)
    lines = [head]
    for row in rows:
        lines.append(" ".join(
            f"{str(row[key])[:width]:>{width}s}" for key, _l, width in cols))
    return "\n".join(lines)


# -- Table 1: capability matrix -----------------------------------------------------------


def table1_data() -> List[Dict[str, object]]:
    """Capability matrix over three feature probes: an array loop, a
    linked-list loop, and a reduction loop.  'privateer' results come from
    running our pipeline; 'lrpd' from the array-layout applicability
    model; 'doall_only' from static legality."""
    from .probes import run_capability_probes

    return run_capability_probes()


def render_table1(rows: List[Dict[str, object]]) -> str:
    lines = [f"{'technique':<12s}{'probe':<16s}{'handles it':>12s}  reason"]
    for row in rows:
        lines.append(
            f"{str(row['technique']):<12s}{str(row['probe']):<16s}"
            f"{('yes' if row['handles'] else 'no'):>12s}  {row['reason']}")
    return "\n".join(lines)
