"""End-to-end Privateer pipeline: compile, profile, classify, transform,
and execute — the driver used by examples, tests, and benchmarks.

Profiling results (the sequential baseline plus every profiler pass) are
memoized on disk via :mod:`repro.bench.cache`; repeated invocations on
the same module + inputs skip guest re-execution entirely.  Disable with
``use_cache=False`` (CLI: ``--no-cache``) or point ``$REPRO_CACHE_DIR``
at a scratch directory.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..adapt import (
    AdaptConfig,
    PolicyStore,
    SpeculationController,
    apply_demotions,
    resolve_adapt_enabled,
)
from ..classify.classifier import HeapAssignment, classify
from ..frontend.lower import compile_minic
from ..interp.interpreter import Interpreter
from ..ir.module import Module
from ..obs.trace import TRACER
from ..parallel.backend import BackendError, make_executor, resolve_backend_name
from ..parallel.costmodel import CostModelConfig
from ..parallel.stats import ExecutionResult
from ..profiling.data import HotLoopReport, LoopProfile, LoopRef
from ..profiling.loopprof import profile_loop
from ..profiling.serialize import (
    hot_report_from_dict,
    hot_report_to_dict,
    profile_from_dict,
    profile_to_dict,
)
from ..profiling.timeprof import profile_execution_time
from ..transform.plan import ParallelPlan, SelectionError
from ..transform.privatize import PrivateerTransform
from . import cache as profile_cache


@dataclass
class SequentialBaseline:
    """Best sequential execution of the unmodified program."""

    cycles: int
    return_value: object
    output: List[str]


@dataclass
class PreparedProgram:
    """A program taken through profile -> classify -> transform.

    Following the paper's methodology, profiling uses the *train* input
    and performance evaluation uses the *ref* input (§6).
    """

    name: str
    source: str
    entry: str
    train_args: tuple
    ref_args: tuple
    sequential: SequentialBaseline
    module: Module               # the transformed module
    hot_report: HotLoopReport
    profile: LoopProfile
    assignment: HeapAssignment
    plan: ParallelPlan
    rejected: Dict[LoopRef, List[str]] = field(default_factory=dict)
    #: Pre-transform module fingerprint (the profile-cache key component);
    #: also keys the adaptive policy store.
    fingerprint: str = ""
    #: Whether :func:`prepare` resolved adaptation on (and applied any
    #: persisted demotions before the transform).
    adapt_enabled: bool = False
    #: Demotions from the policy store that prepare() applied, per loop.
    applied_demotions: List[str] = field(default_factory=list)

    def make_controller(
        self, adapt_config: Optional[AdaptConfig] = None,
        store: Optional[PolicyStore] = None,
    ) -> SpeculationController:
        """A speculation controller bound to this program's fingerprint
        and selected loop (``store=None`` uses the default policy dir)."""
        return SpeculationController(
            key=self.fingerprint, loop=str(self.plan.ref),
            workload=self.name, config=adapt_config,
            store=store if store is not None else PolicyStore())

    def execute(
        self,
        workers: int = 24,
        checkpoint_period: Optional[int] = None,
        misspec_period: int = 0,
        misspec_burst: int = 0,
        costs: Optional[CostModelConfig] = None,
        record_timeline: bool = False,
        args: Optional[Sequence[object]] = None,
        backend: Optional[str] = None,
        pool_workers: Optional[int] = None,
        adapt: Optional[bool] = None,
        adapt_config: Optional[AdaptConfig] = None,
        flight_dir: Optional[str] = None,
        flight: Optional[bool] = None,
    ) -> ExecutionResult:
        """Run the transformed program under the speculative DOALL
        executor on the ref input; each call uses a fresh machine.

        ``backend`` selects the execution backend (``"simulated"``,
        ``"process"`` or ``"pool"``); None defers to ``REPRO_BACKEND``
        and then the simulated default.  ``pool_workers`` sizes the
        persistent pool (pool backend only; see docs/BACKENDS.md).
        ``adapt`` enables the adaptive speculation controller (None
        inherits :func:`prepare`'s resolution; False fully bypasses the
        subsystem).  ``flight_dir`` overrides ``$REPRO_FLIGHT_DIR`` as
        the destination for flight-recorder dumps; ``flight=False``
        disables the recorder entirely (for overhead measurement).
        """
        enabled = adapt if adapt is not None else self.adapt_enabled
        controller = self.make_controller(adapt_config) if enabled else None
        extra = {}
        if pool_workers is not None:
            if resolve_backend_name(backend) != "pool":
                raise BackendError(
                    "--pool-workers only applies to the pool backend "
                    "(pass --backend pool or REPRO_BACKEND=pool)")
            extra["pool_workers"] = pool_workers
        executor = make_executor(
            backend,
            self.module,
            self.plan,
            workers=workers,
            checkpoint_period=checkpoint_period,
            misspec_period=misspec_period,
            misspec_burst=misspec_burst,
            costs=costs,
            record_timeline=record_timeline,
            controller=controller,
            flight_dir=flight_dir,
            **extra,
        )
        if flight is False:
            executor.runtime.recorder.enabled = False
        else:
            from .. import __version__

            run_meta = {
                "repro_version": __version__,
                "workload": self.name,
                "fingerprint": self.fingerprint,
                "adapt": enabled,
                "argv": list(sys.argv),
            }
            executor.runtime.recorder.set_metadata(**run_meta)
            if TRACER.enabled:
                TRACER.set_run_metadata(
                    **run_meta, backend=executor.backend_name)
        with TRACER.span("pipeline.execute", cat="pipeline",
                         program=self.name, workers=workers,
                         backend=executor.backend_name) as sp:
            result = executor.run(self.entry, tuple(args) if args is not None
                                  else self.ref_args)
            if TRACER.enabled:
                stats = result.runtime_stats
                sp.set(wall_cycles=result.total_wall_cycles,
                       invocations=stats.invocations,
                       checkpoints=stats.checkpoints,
                       misspeculations=stats.misspec_count())
        result.timeline = executor.timeline  # type: ignore[attr-defined]
        result.forensics = (  # type: ignore[attr-defined]
            executor.flight_snapshot())
        result.flight_dump = (  # type: ignore[attr-defined]
            executor.flight_dump_path)
        return result

    def speedup(self, result: ExecutionResult) -> float:
        return result.speedup_over(self.sequential.cycles)


def run_sequential(source: str, name: str, entry: str = "main",
                   args: Sequence[object] = ()) -> SequentialBaseline:
    """Compile and run the unmodified program (the clang -O3 stand-in)."""
    module = compile_minic(source, name)
    interp = Interpreter(module)
    rv = interp.run(entry, tuple(args))
    return SequentialBaseline(interp.cycles, rv, list(interp.output))


def prepare(
    source: str,
    name: str,
    entry: str = "main",
    args: Sequence[object] = (),
    ref_args: Optional[Sequence[object]] = None,
    checkpoint_period: Optional[int] = None,
    min_coverage: float = 0.10,
    max_candidates: int = 6,
    use_cache: bool = True,
    adapt: Optional[bool] = None,
) -> PreparedProgram:
    """Run the full Privateer compiler pipeline on MiniC source.

    Profiles hot loops with the train input (``args``), selects the
    hottest transformable loop, and applies the privatization
    transformation.  The sequential baseline is measured on the ref input
    (``ref_args``, defaulting to the train input).  Raises
    :class:`SelectionError` if no loop can be parallelized.

    With ``use_cache`` (the default) profiling observations are memoized
    on disk keyed by module fingerprint + inputs; the classification and
    transformation always run fresh (they mutate the module).

    With ``adapt`` resolved on (explicit flag > ``REPRO_ADAPT``), any
    demotions the adaptive controller persisted for this module are
    applied to each candidate's classification before the transform —
    the re-plan either proceeds without speculating on the demoted
    objects or rejects the loop and falls through to the next candidate.
    """
    train_args = tuple(args)
    eval_args = tuple(ref_args) if ref_args is not None else train_args
    prepare_span = TRACER.span("pipeline.prepare", cat="pipeline",
                               program=name, train_args=list(train_args),
                               ref_args=list(eval_args))

    # The profiling/transform module is compiled *before* the baseline
    # run so its instruction uids — and hence its cache fingerprint —
    # don't depend on whether the warm path skips the baseline compile.
    module = compile_minic(source, name)
    # Key and fingerprint are captured now, before any transform mutates
    # the module in place.
    ckey = profile_cache.cache_key(module, entry, train_args, eval_args)
    fingerprint = profile_cache.module_fingerprint(module)

    cached = profile_cache.load_entry(ckey, fingerprint) if use_cache else None
    if TRACER.enabled:
        TRACER.instant("pipeline.cache."
                       + ("hit" if cached is not None else "miss"),
                       cat="pipeline", program=name, use_cache=use_cache)
    profiles: Dict[str, LoopProfile] = {}
    if cached is not None:
        seq = cached["sequential"]
        sequential = SequentialBaseline(
            seq["cycles"], seq["return_value"], list(seq["output"]))
        hot_report = hot_report_from_dict(cached["hot_report"])
        for key, pdata in cached["profiles"].items():
            try:
                profiles[key] = profile_from_dict(pdata)
            except ValueError:
                pass  # stale per-candidate entry: re-profile below
    else:
        sequential = run_sequential(source, name, entry, eval_args)
        hot_report = profile_execution_time(module, entry, train_args)

    def _persist() -> None:
        if not use_cache or cached is not None:
            return
        profile_cache.store_entry(ckey, fingerprint, {
            "sequential": {
                "cycles": sequential.cycles,
                "return_value": sequential.return_value,
                "output": sequential.output,
            },
            "hot_report": hot_report_to_dict(hot_report),
            # The entry-level fingerprint covers the profiles; they are
            # serialized without their own (the module may already be
            # mutated by the time this runs).
            "profiles": {
                key: profile_to_dict(p)
                for key, p in profiles.items()
            },
        })

    rejected: Dict[LoopRef, List[str]] = {}
    candidates = [
        rec for rec in hot_report.hottest(top_level_only=False)
        if hot_report.coverage(rec.ref) >= min_coverage
    ][:max_candidates]

    adapt_enabled = resolve_adapt_enabled(adapt)
    policy_store = PolicyStore() if adapt_enabled else None

    last_error: Optional[SelectionError] = None
    for rec in candidates:
        profile = profiles.get(str(rec.ref))
        if profile is None:
            profile = profile_loop(module, rec.ref, entry, train_args)
            profiles[str(rec.ref)] = profile
        assignment = classify(profile)
        applied: List[str] = []
        if policy_store is not None:
            applied = apply_demotions(
                assignment,
                policy_store.demotions_for(fingerprint, str(rec.ref)))
            if applied and TRACER.enabled:
                TRACER.instant("pipeline.demotions_applied", cat="pipeline",
                               program=name, loop=str(rec.ref), sites=applied)
        period = checkpoint_period or _default_period(profile)
        try:
            plan = PrivateerTransform(module, rec.ref, profile, assignment,
                                      checkpoint_period=period).run()
        except SelectionError as e:
            rejected[rec.ref] = e.reasons
            last_error = e
            continue
        _persist()
        prepare_span.end(selected=str(rec.ref), rejected=len(rejected),
                         cache_hit=cached is not None)
        return PreparedProgram(
            name=name, source=source, entry=entry, train_args=train_args,
            ref_args=eval_args, sequential=sequential, module=module,
            hot_report=hot_report, profile=profile, assignment=assignment,
            plan=plan, rejected=rejected, fingerprint=fingerprint,
            adapt_enabled=adapt_enabled, applied_demotions=applied,
        )
    _persist()
    prepare_span.end(selected=None, rejected=len(rejected),
                     cache_hit=cached is not None)
    raise last_error or SelectionError(
        LoopRef(entry, "?"), ["no hot loop candidates found"])


def _default_period(profile: LoopProfile) -> int:
    """Checkpoint period: the paper uses k <= 253; with our scaled-down
    iteration counts we aim for a handful of checkpoints per invocation,
    which is the same *rate* relative to total work."""
    per_invocation = max(1, profile.iterations // max(1, profile.invocations))
    return max(2, min(250, per_invocation // 5))
