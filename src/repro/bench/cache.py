"""Disk cache for pipeline profiling results.

``prepare()`` spends nearly all of its time executing the guest program:
once for the sequential baseline and once per profiler pass.  Those
observations depend only on (module structure, entry point, input
arguments, profiler semantics), so this module memoizes them on disk
keyed by:

* the module fingerprint from :func:`repro.profiling.serialize.module_fingerprint`
  (which pins the exact instruction uids the cached site ids refer to),
* the entry point and the full train/ref argument tuples (the workload
  input-generator seed travels inside the argument tuple, so a different
  seed is a different key),
* :data:`repro.profiling.serialize.PROFILER_VERSION` and
  :data:`repro.profiling.serialize.FORMAT_VERSION`.

Cache location: ``$REPRO_CACHE_DIR`` if set, else
``~/.cache/repro-profiles``.  Entries are standalone JSON files; a
corrupt or stale entry is treated as a miss and rewritten.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Sequence

from ..ir.module import Module
from ..profiling.serialize import (
    FORMAT_VERSION,
    PROFILER_VERSION,
    hot_report_from_dict,
    hot_report_to_dict,
    module_fingerprint,
    profile_from_dict,
    profile_to_dict,
)

CACHE_ENV_VAR = "REPRO_CACHE_DIR"


def cache_dir() -> Path:
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-profiles"


def cache_key(module: Module, entry: str, train_args: Sequence[object],
              ref_args: Sequence[object]) -> str:
    """Cache key for one pipeline invocation.

    Must be computed on the *pre-transform* module: transforms mutate the
    IR in place, so a key taken afterwards would never match the next
    cold run's freshly-compiled module.
    """
    h = hashlib.sha256()
    h.update(module_fingerprint(module).encode())
    h.update(b"|")
    h.update(entry.encode())
    h.update(b"|")
    h.update(repr(tuple(train_args)).encode())
    h.update(b"|")
    h.update(repr(tuple(ref_args)).encode())
    h.update(f"|p{PROFILER_VERSION}|f{FORMAT_VERSION}".encode())
    return h.hexdigest()[:24]


def _entry_path(key: str) -> Path:
    return cache_dir() / f"profile-{key}.json"


def load_entry(key: str, fingerprint: str) -> Optional[Dict]:
    """Return the decoded cache payload for ``key``, or None on a miss /
    unreadable or version-stale entry."""
    path = _entry_path(key)
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if data.get("profiler_version") != PROFILER_VERSION:
        return None
    if data.get("fingerprint") != fingerprint:
        return None
    return data


def store_entry(key: str, fingerprint: str, payload: Dict) -> None:
    """Write ``payload`` (already JSON-serializable) under ``key``;
    failures to write are silent — the cache is best-effort."""
    payload = dict(payload)
    payload["profiler_version"] = PROFILER_VERSION
    payload["fingerprint"] = fingerprint
    path = _entry_path(key)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)
    except OSError:
        pass


__all__ = [
    "CACHE_ENV_VAR",
    "cache_dir",
    "cache_key",
    "load_entry",
    "store_entry",
    "hot_report_to_dict",
    "hot_report_from_dict",
    "profile_to_dict",
    "profile_from_dict",
]
