"""Benchmark harness: the end-to-end pipeline plus regeneration of every
table and figure in the paper's evaluation."""

from .figures import (
    MISSPEC_RATES,
    WORKER_COUNTS,
    ProgramCache,
    figure6_data,
    figure7_data,
    figure8_data,
    figure9_data,
    geomean,
    render_figure6,
    render_figure7,
    render_figure8,
    render_figure9,
    render_table1,
    render_table3,
    table1_data,
    table3_data,
)
from .pipeline import (
    PreparedProgram,
    SequentialBaseline,
    prepare,
    run_sequential,
)
from .probes import PROBES, run_capability_probes

__all__ = [
    "MISSPEC_RATES", "PROBES", "PreparedProgram", "ProgramCache",
    "SequentialBaseline", "WORKER_COUNTS", "figure6_data", "figure7_data",
    "figure8_data", "figure9_data", "geomean", "prepare",
    "render_figure6", "render_figure7", "render_figure8", "render_figure9",
    "render_table1", "render_table3", "run_capability_probes",
    "run_sequential", "table1_data", "table3_data",
]
