"""Generate EXPERIMENTS.md: paper-vs-measured for every table and figure.

Run:  python -m repro.bench.report > EXPERIMENTS.md

This performs the full evaluation (several minutes of simulation); the
benchmark suite under ``benchmarks/`` asserts the same shapes as tests.
"""

from __future__ import annotations

import sys
from typing import Dict, List

from ..baselines import run_doall_only
from ..workloads import ALL_WORKLOADS
from .figures import (
    MISSPEC_RATES,
    ProgramCache,
    figure9_data,
    geomean,
    render_figure6,
    render_figure7,
    render_figure8,
    render_figure9,
    render_table1,
    render_table3,
    table1_data,
    table3_row,
)

SWEEP = (4, 8, 12, 16, 20, 24)

HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction of every table and figure in the evaluation (§6) of
*Speculative Separation for Privatization and Reductions* (PLDI 2012).
All measurements are deterministic simulated cycles (see DESIGN.md for the
substitution rules); the claims below are about *shape* — who wins, by
roughly what factor, where the crossovers fall — not absolute numbers,
because the substrate is an interpreter-based simulator, not the authors'
24-core Xeon X7460.

Regenerate with `python -m repro.bench.report > EXPERIMENTS.md`
or assert the same shapes with `pytest benchmarks/ --benchmark-only`.
"""


def block(text: str) -> str:
    return "```\n" + text + "\n```\n"


def main() -> None:
    out: List[str] = [HEADER]
    cache = ProgramCache(use_ref=True)

    # Warm every program once.
    programs = {w.name: cache.get(w) for w in ALL_WORKLOADS}
    results: Dict[str, Dict[int, object]] = {
        name: {} for name in programs
    }
    for w in ALL_WORKLOADS:
        for n in SWEEP:
            results[w.name][n] = programs[w.name].execute(workers=n)

    # ---- Figure 6 -------------------------------------------------------
    fig6 = {
        w.name: {n: programs[w.name].speedup(results[w.name][n]) for n in SWEEP}
        for w in ALL_WORKLOADS
    }
    fig6["geomean"] = {
        n: geomean(fig6[w.name][n] for w in ALL_WORKLOADS) for n in SWEEP
    }
    out.append("## Figure 6 — whole-program speedup vs. best sequential\n")
    out.append(
        "* **Paper:** all five programs scale to 24 cores; geomean "
        "whole-program speedup **11.4x** at 24 workers.\n"
        f"* **Measured:** geomean **{fig6['geomean'][24]:.1f}x** at 24 "
        "simulated workers; every program beats sequential and scales "
        "monotonically from 4 to 24 workers. Output of every parallel run "
        "is byte-identical to sequential execution.\n")
    out.append(block(render_figure6(fig6)))

    # ---- Figure 7 -------------------------------------------------------
    fig7: Dict[str, Dict[str, float]] = {}
    for w in ALL_WORKLOADS:
        prog = programs[w.name]
        base = run_doall_only(w.source, w.name, args=prog.ref_args, workers=24)
        fig7[w.name] = {
            "privateer": fig6[w.name][24],
            "doall_only": base.speedup_over(prog.sequential.cycles),
        }
    fig7["geomean"] = {
        "privateer": geomean(v["privateer"] for k, v in fig7.items()
                             if k != "geomean"),
        "doall_only": geomean(v["doall_only"] for k, v in fig7.items()
                              if k != "geomean"),
    }
    out.append("## Figure 7 — enabling effect of Privateer at 24 workers\n")
    out.append(
        "* **Paper:** non-speculative DOALL-only achieves **0.93x** geomean "
        "(slowdown on 052.alvinn from parallelizing a deeply nested inner "
        "loop; no loops at all in dijkstra and enc-md5; swaptions "
        "parallelizable in truth but unprovable; a small win on "
        "blackscholes' inner loop), vs **11.4x** with Privateer.\n"
        f"* **Measured:** DOALL-only geomean "
        f"**{fig7['geomean']['doall_only']:.2f}x** vs Privateer "
        f"**{fig7['geomean']['privateer']:.1f}x**. Static analysis proves "
        "no loop in swaptions or enc-md5; alvinn and dijkstra parallelize "
        "only small inner loops and pay spawn/join for them; blackscholes' "
        "inner loop gives the baseline its only real win.\n")
    out.append(block(render_figure7(fig7)))

    # ---- Figure 8 -------------------------------------------------------
    fig8 = {
        w.name: {n: results[w.name][n].overhead_breakdown() for n in SWEEP}
        for w in ALL_WORKLOADS
    }
    out.append("## Figure 8 — overhead breakdown\n")
    out.append(
        "* **Paper:** parallelized applications spend most capacity on "
        "useful work; privacy validation is the next largest overhead and "
        "stays a roughly constant fraction as workers grow; alvinn and "
        "dijkstra lose significant capacity to spawn/join imbalance.\n"
        "* **Measured:** same shape — useful work dominates at low worker "
        "counts, privacy validation is the dominant validation cost "
        "(largest for dijkstra, zero private reads for blackscholes), and "
        "the spawn/join share grows with worker count, worst for alvinn "
        "(one invocation per epoch).\n")
    out.append(block(render_figure8(fig8)))

    # ---- Figure 9 -------------------------------------------------------
    fig9 = figure9_data(cache)
    out.append("## Figure 9 — performance degradation with misspeculation\n")
    out.append(
        "* **Paper:** four of five programs lose half their speedup at a "
        "0.1% misspeculation rate (one in four checkpoints fails; recovery "
        "is checkpoint-granular).\n"
        "* **Measured:** with rates scaled to the same checkpoint-failure "
        "fraction (our invocations run ~10^2 iterations, the paper's "
        "~10^5), speedups degrade monotonically and at least four of five "
        "programs lose half their speedup by the highest rate. Every "
        "misspeculating run recovers and produces byte-identical output.\n")
    out.append(block(render_figure9(fig9)))

    # ---- Table 1 --------------------------------------------------------
    out.append("## Table 1 — capability comparison\n")
    out.append(
        "* **Paper:** prior schemes split along two axes — the "
        "privatization criterion and the memory-layout model. Array-based "
        "systems (PD/LRPD/R-LRPD, Hybrid Analysis, array "
        "expansion/ASSA/DSA) cannot express pointer/dynamic layouts; "
        "non-privatizing systems handle none of it; Privateer handles "
        "pointers, dynamic allocation, privatization, and reductions.\n"
        "* **Measured:** regenerated as a capability matrix over three "
        "feature probes (array loop, linked-list loop, reduction loop) "
        "judged by our implementations of each scheme's applicability "
        "model.\n")
    out.append(block(render_table1(table1_data())))

    # ---- Table 3 --------------------------------------------------------
    rows = [table3_row(programs[w.name], results[w.name][24])
            for w in ALL_WORKLOADS]
    out.append("## Table 3 — program details\n")
    out.append(
        "* **Paper:** per-program invocation/checkpoint counts, private "
        "bytes read/written, static allocation sites per heap, and extra "
        "speculation kinds.\n"
        "* **Measured:** heap-population shapes match the paper for all "
        "five programs; the 052.alvinn row matches **exactly** (Private 4, "
        "Short-Lived 0, Read-Only 4, Redux 3, Unrestricted 0), alvinn is "
        "invoked once per epoch, dijkstra's private reads dominate its "
        "writes, blackscholes has zero private reads, and the extras "
        "columns include the paper's Value/Control/I-O entries. Absolute "
        "byte counts and site counts are smaller because the inputs are "
        "interpreter-scaled (DESIGN.md).\n")
    out.append(block(render_table3(rows)))

    # ---- §6.3 misspeculation --------------------------------------------
    total_misspec = sum(
        results[w.name][24].runtime_stats.misspec_count() for w in ALL_WORKLOADS)
    out.append("## §6.3 — misspeculation on the evaluated programs\n")
    out.append(
        "* **Paper:** \"No programs experienced misspeculation during "
        "evaluation.\"\n"
        f"* **Measured:** {total_misspec} misspeculations across all five "
        "ref-input runs at 24 workers.\n")

    out.append(REAL_PARALLEL)
    out.append(POOL_VS_FORK)
    out.append(SHADOW_METHODOLOGY)

    sys.stdout.write("\n".join(out))


REAL_PARALLEL = """## Real-parallel methodology (process backend)

Everything above is measured on the deterministic **simulated** backend,
whose speedups are ratios of simulated cycles — that is what makes the
paper's *shapes* reproducible bit-for-bit.  The repository also has a
**process** backend (`--backend process` / `REPRO_BACKEND=process`,
see docs/BACKENDS.md) that forks one OS worker process per
checkpoint epoch and executes worker slices genuinely concurrently.
It exists to check the claim the cost model cannot: that the design
actually parallelizes on real hardware.

* **Correctness:** the process backend is parity-checked against the
  simulated backend — identical final memory state, `RuntimeStats`
  (including the Table 3 row), misspeculation counts, and timelines on
  all five workloads (`tests/test_backend_parity.py`); epoch
  squash-and-recover behaviour is pinned by
  `tests/test_epoch_recovery.py` on both backends.
* **Measurement:** `python -m repro perf --backend process` sweeps
  worker counts (1, 2, 4; best of 2 repeats per point) over the
  workloads, timing `PreparedProgram.execute()` with `time.perf_counter`
  and recording per-point wall seconds, wall-clock speedup vs. the
  1-worker run, and the simulated-cycle speedup for comparison, into the
  `process_backend` section of `BENCH_interp.json`.
* **Interpretation:** wall-clock curves are *noisy* (they include fork,
  pickling, and pipe costs amortized against interpreter-speed
  iterations, on whatever cores the host has) and are **not** the
  paper's Figure 6 — the simulated-cycle curves above remain the
  apples-to-apples reproduction.  Expect the wall-clock speedup to be
  well below the simulated speedup at these interpreter-scaled input
  sizes, growing with the work per epoch; the signal to look for is
  monotonic improvement as workers increase.
"""

POOL_VS_FORK = """## Pool-vs-fork methodology (`pool` section)

The **pool** backend (`--backend pool` / `REPRO_BACKEND=pool`, see
docs/BACKENDS.md) keeps worker processes resident across checkpoint
epochs — one fork per parallel invocation instead of one per epoch —
and ships epoch fragments through per-worker shared-memory rings
instead of pickled pipes.  `python -m repro perf --backend pool`
records a `pool` section into `BENCH_interp.json` with two
measurements:

* **Scaling curve:** the same worker-count sweep as the process
  backend (1, 2, 4 workers; best-of wall times via
  `time.perf_counter`), run on the pool backend, with per-point wall
  seconds, wall-clock speedup vs. the 1-worker run, and the
  simulated-cycle speedup for comparison.  `--pool-workers N` caps the
  resident process count for the sweep.
* **Pool vs fork-per-epoch:** the same prepared program executed on
  both real backends under a deliberately *multi-epoch* configuration
  (checkpoint period 4, so an invocation spans many epochs — the
  regime where fork-per-epoch pays its fork + pickle tax repeatedly
  and the pool pays one fork plus per-epoch commit deltas).  Best-of
  wall times for each backend, the epoch count, and the pool/fork
  speedup are recorded.

**Cold vs warm epochs:** the pool's first epoch of an invocation is
*cold* (it forks the pool) and every later epoch is *warm* (plan +
commit delta to resident children).  Fork-per-epoch runs every epoch
cold.  The comparison therefore sharpens as epochs-per-invocation
grows and converges to parity at one epoch per invocation.

**Gate:** on the multi-epoch dijkstra configuration the pool backend
must be at least as fast as fork-per-epoch, or `python -m repro perf`
fails.  Both backends remain bit-exact with the simulated reference
throughout (`tests/test_backend_parity.py`), so this is a pure
performance comparison over identical work.
"""

SHADOW_METHODOLOGY = """## Shadow-memory vectorization methodology (`shadow` section)

The runtime's Table 2 validation and checkpoint merge are implemented
as bulk range operations over `bytes` (docs/ARCHITECTURE.md §4); the
original per-byte implementation is preserved as a reference oracle
(`REPRO_SHADOW=ref`).  `python -m repro perf` benchmarks both in one
process and records a `shadow` section into `BENCH_interp.json`:

* **Phase-1 validation throughput:** a synthetic privatization epoch
  loop (write-then-read scratch region, read-only live-in region,
  periodic checkpoint resets) drives `on_write`/`on_read` through both
  shadow implementations over an identical access sequence; the final
  metadata must be bit-identical, and bytes-validated-per-second is
  reported for each (best of N repeats).
* **Checkpoint-merge throughput:** packed fragments with interleaved
  per-worker write runs (iteration varying per run) are pushed through
  phase-two privacy validation, the latest-iteration-wins merge, and
  the commit store, vectorized vs. per-byte; the committed buffers
  must be identical, and written-bytes-per-second is reported.
* **Gate:** the run fails unless the vectorized merge is **≥ 5x** the
  per-byte oracle on every configuration.  The default configuration
  uses 64-byte runs over a 256 KiB merge footprint (the evaluated
  workloads' scale); `--stress` adds a multi-KB configuration (4 KiB
  operations, 4 MiB merge footprint, 8 workers).  Representative
  quick-run numbers: validation ~5–20x, merge ~15x (default) to
  ~300x (stress) over the oracle.
"""


if __name__ == "__main__":
    main()
