"""Feature probes for the Table 1 capability matrix.

Three tiny programs isolate the dimensions Table 1 compares: an
array-only privatizable loop (everything handles it), a linked-list /
dynamic-allocation loop (only Privateer handles it), and a reduction loop
(handled by systems with reduction support).
"""

from __future__ import annotations

from typing import Dict, List

from ..baselines.doall_only import analyze_loops, select_compatible
from ..baselines.lrpd import judge_hot_loop
from ..bench.pipeline import prepare
from ..classify.heaps import HeapKind
from ..frontend.lower import compile_minic
from ..transform.plan import SelectionError

ARRAY_PROBE = """
int scratch[16];
int out[64];

int main(int n, int seed) {
    rand_seed(seed);
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 16; j++) { scratch[j] = i + j; }
        int acc = 0;
        for (int j = 0; j < 16; j++) { acc = acc + scratch[j] * scratch[j]; }
        out[i] = acc;
    }
    int total = 0;
    for (int i = 0; i < n; i++) { total = total + out[i]; }
    printf("%d\\n", total);
    return 0;
}
"""

LINKED_PROBE = """
struct cell { int v; struct cell* next; };
struct cell* stack;
int out[64];

void push(int v) {
    struct cell* c = (struct cell*)malloc(sizeof(struct cell));
    c->v = v;
    c->next = stack;
    stack = c;
}

int pop() {
    struct cell* c = stack;
    int v = c->v;
    stack = c->next;
    free(c);
    return v;
}

int main(int n, int seed) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 8; j++) { push(i * j + 1); }
        int acc = 0;
        while (stack != 0) { acc = acc + pop(); }
        out[i] = acc;
    }
    int total = 0;
    for (int i = 0; i < n; i++) { total = total + out[i]; }
    printf("%d\\n", total);
    return 0;
}
"""

REDUX_PROBE = """
int data[64];
long total;

int main(int n, int seed) {
    rand_seed(seed);
    for (int i = 0; i < n; i++) { data[i] = rand_int() % 100; }
    for (int i = 0; i < n; i++) {
        total += data[i] * data[i];
    }
    printf("%ld\\n", total);
    return 0;
}
"""

PROBES = {
    "array": ARRAY_PROBE,
    "linked-list": LINKED_PROBE,
    "reduction": REDUX_PROBE,
}
PROBE_ARGS = (48, 3)


def _privateer_handles(name: str, source: str) -> Dict[str, object]:
    try:
        prog = prepare(source, f"probe_{name}", args=PROBE_ARGS)
    except SelectionError as e:
        return {"handles": False, "reason": "; ".join(e.reasons)[:90]}
    kinds = {k for k in prog.assignment.site_heaps.values()}
    detail = ", ".join(sorted(str(k) for k in kinds))
    return {"handles": True, "reason": f"heaps used: {detail}"}


def _lrpd_handles(name: str, source: str) -> Dict[str, object]:
    verdict = judge_hot_loop(source, f"probe_{name}", args=PROBE_ARGS)
    reason = "array/scalar layout expressible" if verdict.applicable \
        else (verdict.reasons[0] if verdict.reasons else "inapplicable")
    return {"handles": verdict.applicable, "reason": reason[:90]}


def _doall_handles(name: str, source: str) -> Dict[str, object]:
    module = compile_minic(source, f"probe_{name}")
    candidates = analyze_loops(module, args=PROBE_ARGS)
    hot = candidates[0] if candidates else None
    if hot is not None and hot.legal:
        return {"handles": True, "reason": "statically proven independent"}
    reason = "; ".join(hot.reasons)[:90] if hot else "no loops"
    return {"handles": False, "reason": reason}


def run_capability_probes() -> List[Dict[str, object]]:
    """Judge each technique on each probe; rows for Table 1."""
    rows: List[Dict[str, object]] = []
    judges = {
        "privateer": _privateer_handles,
        "lrpd": _lrpd_handles,
        "doall_only": _doall_handles,
    }
    for probe_name, source in PROBES.items():
        for technique, judge in judges.items():
            verdict = judge(probe_name, source)
            rows.append({
                "technique": technique,
                "probe": probe_name,
                "handles": verdict["handles"],
                "reason": verdict["reason"],
            })
    return rows
