"""``python -m repro bench-check`` — the bench regression sentinel.

Compares the *latest* entry of the ``BENCH_interp.json`` trajectory
against the median of the prior entries, per gated metric, and fails on
a >15% regression — so perf drift becomes a red build instead of a
silent trend in the trajectory file.

Gated metrics are the throughput numbers the perf harness already
gates point-in-time (``python -m repro perf``), now held against their
own history:

* ``interp.<workload>.fast_ips`` — compiled fast-path instructions/s;
* ``trace.tracing_off_ips`` — fast path with observability disarmed
  (the ≤2% tracing-off budget's absolute side);
* ``shadow.<label>.phase1_mbps`` / ``shadow.<label>.merge_mbps`` —
  vectorized shadow validation and checkpoint-merge throughput;
* ``service.cold_rps`` / ``service.warm_rps`` / ``service.cache_hit_rps``
  — job-API requests/second (the harness additionally hard-gates
  ``warm_rps >= cold_rps`` point-in-time; here the history gate keeps
  all three from silently eroding, min-history skipping the fresh
  section);
* ``service.<tier>_p99_s`` — job-API tail-latency SLOs per cache tier,
  the one *lower-is-better* family: a p99 that grows past the inverted
  gate is the regression.

Entries are only compared against history recorded under the same
``quick`` flag (train vs ref inputs are not comparable).  Metrics with
fewer than ``--min-history`` prior samples are reported but not gated,
so a freshly added section never fails its first run.

The higher-is-better gate is ``latest >= min(median * (1 - threshold),
min(history))``: a run only fails when it is both >15% below the
trajectory median *and* worse than every sample ever recorded —
single-machine trajectories are noisy, and a value inside the
historical range is not a regression.  Lower-is-better metrics invert
it: ``latest <= max(median * (1 + threshold), max(history))``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from statistics import median
from typing import Dict, List, Optional, Sequence

#: Fail when latest/median drops below 1 - threshold.
DEFAULT_THRESHOLD = 0.15

#: Prior samples required before a metric is gated.
DEFAULT_MIN_HISTORY = 3


def lower_is_better(metric: str) -> bool:
    """Latency SLO metrics regress *upward*; everything else gated here
    is a throughput."""
    return metric.endswith("_p99_s")


def extract_metrics(run: Dict[str, object]) -> Dict[str, float]:
    """Flatten one trajectory entry into gated scalar metrics (all
    higher-is-better throughputs).  Sections absent from the entry are
    simply skipped, so old entries remain comparable."""
    out: Dict[str, float] = {}
    for rec in run.get("interp") or []:
        if isinstance(rec, dict) and rec.get("fast_ips"):
            out[f"interp.{rec.get('workload')}.fast_ips"] = \
                float(rec["fast_ips"])
    trace = run.get("trace")
    if isinstance(trace, dict) and trace.get("tracing_off_ips"):
        out["trace.tracing_off_ips"] = float(trace["tracing_off_ips"])
    for rec in run.get("shadow") or []:
        if not isinstance(rec, dict):
            continue
        label = rec.get("label", "?")
        for section, key in (("phase1", "phase1_mbps"),
                             ("merge", "merge_mbps")):
            data = rec.get(section)
            if isinstance(data, dict) and data.get("vec_mbps"):
                out[f"shadow.{label}.{key}"] = float(data["vec_mbps"])
    service = run.get("service")
    if isinstance(service, dict):
        for key in ("cold_rps", "warm_rps", "cache_hit_rps",
                    "cold_p99_s", "warm_p99_s", "cache_hit_p99_s"):
            if service.get(key):
                out[f"service.{key}"] = float(service[key])
    return out


def check_trajectory(data: Dict[str, object],
                     threshold: float = DEFAULT_THRESHOLD,
                     min_history: int = DEFAULT_MIN_HISTORY
                     ) -> Dict[str, object]:
    """Compare the last run against the median of the prior runs.

    Returns ``{"ok": bool, "rows": [...], "skipped": [...]}`` where each
    row is ``{metric, latest, median, samples, ratio, ok}``.  ``ok`` is
    False iff some gated metric regressed by more than ``threshold``.
    """
    runs = data.get("runs") or []
    if not isinstance(runs, list) or not runs:
        return {"ok": False, "rows": [],
                "error": "trajectory has no runs"}
    latest = runs[-1]
    if not isinstance(latest, dict):
        return {"ok": False, "rows": [],
                "error": "latest trajectory entry is not an object"}
    quick = bool(latest.get("quick"))
    history = [r for r in runs[:-1]
               if isinstance(r, dict) and bool(r.get("quick")) == quick]
    latest_metrics = extract_metrics(latest)
    if not latest_metrics:
        return {"ok": False, "rows": [],
                "error": "latest entry has no gated metrics"}
    prior: Dict[str, List[float]] = {}
    for run in history:
        for name, value in extract_metrics(run).items():
            prior.setdefault(name, []).append(value)

    rows: List[Dict[str, object]] = []
    skipped: List[Dict[str, object]] = []
    ok = True
    for name in sorted(latest_metrics):
        samples = prior.get(name, [])
        if len(samples) < min_history:
            skipped.append({"metric": name, "latest": latest_metrics[name],
                            "samples": len(samples)})
            continue
        mid = median(samples)
        ratio = latest_metrics[name] / mid if mid else float("inf")
        if lower_is_better(name):
            gate = max(mid * (1.0 + threshold), max(samples))
            row_ok = latest_metrics[name] <= gate
        else:
            gate = min(mid * (1.0 - threshold), min(samples))
            row_ok = latest_metrics[name] >= gate
        ok = ok and row_ok
        rows.append({"metric": name, "latest": latest_metrics[name],
                     "median": mid, "samples": len(samples),
                     "ratio": ratio, "gate": gate, "ok": row_ok,
                     "direction": ("lower" if lower_is_better(name)
                                   else "higher")})
    return {"ok": ok, "rows": rows, "skipped": skipped, "quick": quick,
            "timestamp": latest.get("timestamp")}


def _fmt_num(v: float) -> str:
    """Throughputs are large integers, latency SLOs are fractional
    seconds — format by magnitude so both stay readable."""
    return f"{v:,.0f}" if abs(v) >= 100 else f"{v:,.4f}"


def render_report(report: Dict[str, object],
                  threshold: float = DEFAULT_THRESHOLD) -> str:
    if report.get("error"):
        return f"bench-check: {report['error']}"
    lines = [f"bench-check: latest entry "
             f"({report.get('timestamp') or 'no timestamp'}, "
             f"quick={report.get('quick')}) vs trajectory median, "
             f"-{threshold:.0%} gate"]
    rows = report["rows"]
    if rows:
        name_w = max(len(r["metric"]) for r in rows)
        lines.append(f"{'metric':<{name_w}}  {'latest':>14}  {'median':>14}"
                     f"  {'n':>3}  {'ratio':>7}  status")
        for r in rows:
            lines.append(
                f"{r['metric']:<{name_w}}  {_fmt_num(r['latest']):>14}  "
                f"{_fmt_num(r['median']):>14}  {r['samples']:>3}  "
                f"{r['ratio']:>6.2f}x  "
                f"{'ok' if r['ok'] else 'REGRESSION'}")
    for s in report.get("skipped") or []:
        lines.append(f"{s['metric']}: skipped "
                     f"({s['samples']} prior sample(s), gate needs more)")
    if not rows:
        lines.append("(no metric has enough history to gate)")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench-check",
        description="fail if the latest BENCH_interp.json entry regressed "
                    "more than the threshold against the trajectory median")
    parser.add_argument("--bench", default="BENCH_interp.json",
                        help="trajectory file (default: BENCH_interp.json)")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="allowed fractional regression "
                             "(default: 0.15 = 15%%)")
    parser.add_argument("--min-history", type=int,
                        default=DEFAULT_MIN_HISTORY,
                        help="prior samples required before gating a "
                             "metric (default: 3)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the structured report as JSON")
    args = parser.parse_args(argv)

    path = Path(args.bench)
    if not path.exists():
        print(f"bench-check: {path} does not exist", file=sys.stderr)
        return 2
    try:
        data = json.loads(path.read_text())
    except ValueError as e:
        print(f"bench-check: {path} is not valid JSON ({e})",
              file=sys.stderr)
        return 2
    report = check_trajectory(data, threshold=args.threshold,
                              min_history=args.min_history)
    print(render_report(report, threshold=args.threshold))
    if args.json:
        out = Path(args.json)
        if out.parent != Path("."):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    if report.get("error"):
        return 2
    if not report["ok"]:
        print("FAIL: bench trajectory regression (see rows above)")
        return 1
    print("ok: no gated metric regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
