"""Executable reproduction of *Speculative Separation for Privatization
and Reductions* (Privateer, PLDI 2012): compiler pipeline, five
profilers, heap classification, privatizing transformation, speculative
runtime, and the simulated/process DOALL backends.

Start at :mod:`repro.bench.pipeline` (``prepare`` / ``execute``) or the
CLI (``python -m repro``); docs/ARCHITECTURE.md maps the packages.
"""
