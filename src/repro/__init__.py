"""Executable reproduction of *Speculative Separation for Privatization
and Reductions* (Privateer, PLDI 2012): compiler pipeline, five
profilers, heap classification, privatizing transformation, speculative
runtime, and the simulated/process DOALL backends.

Start at :mod:`repro.bench.pipeline` (``prepare`` / ``execute``) or the
CLI (``python -m repro``); docs/ARCHITECTURE.md maps the packages.
"""

#: Package version, stamped into trace headers and forensics dumps so
#: artifacts are self-describing.
__version__ = "0.5.0"
