"""The mini-IR interpreter.

This is the execution substrate for everything in the reproduction: the
profiling runs, the sequential baseline timing, per-worker execution in
the simulated parallel region, and non-speculative recovery.

Design notes
------------
* Values are plain Python ints (integers and pointers-as-addresses) and
  floats; integer results are wrapped to their IR type on every operation.
* Control is an explicit frame stack, so deep guest recursion cannot blow
  the host stack, and the parallel executor can swap whole stacks to
  simulate worker processes.
* ``BlockBreakpoint`` is the executor's hook: entering a registered basic
  block raises it *before* phi assignment, exposing (frame, target, prev).
  The DOALL executor uses this both to detect parallel-region invocations
  and to delimit loop iterations during worker simulation.
* Hooks observe allocations, frees, loads, stores, branches, and
  calls/returns; the profilers are implemented as hooks.
"""

from __future__ import annotations

import os
import struct as _struct
import time as _time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ir.instructions import (
    Alloca,
    BinOp,
    BinOpKind,
    Br,
    Call,
    Cast,
    CastKind,
    CmpPred,
    CondBr,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Opcode,
    Phi,
    PtrAdd,
    Ret,
    Select,
    Store,
    Unreachable,
)
from ..ir.module import BasicBlock, Function, Module
from ..ir.types import FloatType, IntType, PointerType, Type
from ..ir.values import (
    Argument,
    ConstFloat,
    ConstInt,
    ConstNull,
    GlobalVariable,
    Undef,
    Value,
)
from .compile import (
    _MISS,
    _UNDEF,
    RegisterFile,
    FunctionCode,
    function_code,
    regmap_for,
    run_fast,
)
from .costs import instruction_cost, intrinsic_cost
from .errors import BlockBreakpoint, GuestExit, GuestFault, GuestTimeout
from .intrinsics import default_intrinsics
from .memory import GLOBAL_BASE, STACK_BASE, AddressSpace, MemoryObject

__all__ = ["BlockBreakpoint", "Hook", "Frame", "Interpreter"]


class Hook:
    """Base class for execution observers; override what you need."""

    __slots__ = ()

    def on_alloc(self, interp, obj: MemoryObject, inst: Instruction) -> None: ...
    def on_free(self, interp, obj: MemoryObject, inst: Instruction) -> None: ...
    def on_load(self, interp, inst: Instruction, addr: int, size: int) -> None: ...
    def on_store(self, interp, inst: Instruction, addr: int, size: int) -> None: ...
    def on_branch(self, interp, inst: Instruction, target: BasicBlock) -> None: ...
    def on_call(self, interp, inst: Call, callee: Function) -> None: ...
    def on_return(self, interp, fn: Function) -> None: ...


class Frame:
    """One activation record.

    Registers live in a flat ``slots`` list indexed by the function's
    register numbering (see :mod:`repro.interp.compile`); ``regs`` is a
    dict-protocol view over the same storage, so existing callers (the
    reference ``step()`` path, the executor poking loop phis, tests) keep
    working unchanged while the compiled path indexes ``slots`` directly.
    """

    __slots__ = ("function", "block", "index", "prev_block", "slots",
                 "regs", "allocas", "call_inst")

    def __init__(self, function: Function, call_inst: Optional[Call] = None,
                 regmap: Optional[Dict[Value, int]] = None):
        self.function = function
        self.block: BasicBlock = function.entry
        self.index = 0
        self.prev_block: Optional[BasicBlock] = None
        if regmap is None:
            regmap = regmap_for(function)
        self.slots: List[object] = [_UNDEF] * len(regmap)
        self.regs = RegisterFile(regmap, self.slots)
        self.allocas: List[int] = []  # base addresses to free on pop
        self.call_inst = call_inst

    def copy(self) -> "Frame":
        dup = Frame.__new__(Frame)
        dup.function = self.function
        dup.block = self.block
        dup.index = self.index
        dup.prev_block = self.prev_block
        dup.slots = list(self.slots)
        dup.regs = self.regs.copy_for(dup.slots)
        dup.allocas = []
        dup.call_inst = None
        return dup


_U64 = 0xFFFFFFFFFFFFFFFF


class Interpreter:
    """Executes mini-IR on the simulated byte-addressable memory, with
    cycle/step accounting, hooks, breakpoints, and intrinsics.  Has two
    observationally identical paths: the reference step() path and the
    closure-compiled fast path (see DESIGN.md §7).
    """
    def __init__(
        self,
        module: Module,
        space: Optional[AddressSpace] = None,
        max_steps: int = 500_000_000,
        global_regions: Optional[Dict[str, int]] = None,
        compiled: Optional[bool] = None,
    ):
        if compiled is None:
            compiled = os.environ.get("REPRO_INTERP", "fast") != "step"
        self.compiled = compiled
        self._codes: Dict[Function, FunctionCode] = {}
        self._fast_result: object = None
        self.module = module
        self.space = space or AddressSpace()
        self.max_steps = max_steps
        self.global_regions = global_regions or {}
        self.steps = 0
        self.cycles = 0
        self.frames: List[Frame] = []
        self.hooks: List[Hook] = []
        self.intrinsics: Dict[str, Callable] = default_intrinsics()
        self._install_neutral_privateer_intrinsics()
        self.block_breakpoints: set = set()
        self.output: List[str] = []
        self.output_sink: Optional[Callable[[str], None]] = None
        self.prng_state = 0x9E3779B97F4A7C15
        self.call_context: List[str] = []
        self._context_ids: Dict[Tuple[str, ...], int] = {}
        self.global_addrs: Dict[GlobalVariable, int] = {}
        self.exit_code: Optional[int] = None
        self._layout_globals()

    # -- setup ---------------------------------------------------------------

    def _layout_globals(self) -> None:
        for gv in self.module.globals.values():
            region = self.global_regions.get(gv.name, GLOBAL_BASE)
            obj = self.space.allocate(
                gv.byte_size, gv.name, "global", region,
                site=f"global:{gv.name}",
                writable=True,  # read-only enforcement comes from the runtime
            )
            init = gv.initializer
            if isinstance(init, (bytes, bytearray)):
                obj.data[: len(init)] = init
            self.global_addrs[gv] = obj.base

    def _install_neutral_privateer_intrinsics(self) -> None:
        """Sequential semantics for the runtime intrinsics so transformed
        modules also run un-parallelized (used during recovery and tests)."""

        def h_alloc(interp, inst, args):
            return interp.intrinsics["malloc"](interp, inst, args[:1])

        def h_dealloc(interp, inst, args):
            return interp.intrinsics["free"](interp, inst, args[:1])

        def noop(interp, inst, args):
            return None

        self.intrinsics.setdefault("h_alloc", h_alloc)
        self.intrinsics.setdefault("h_dealloc", h_dealloc)
        for name in ("check_heap", "private_read", "private_write",
                     "redux_update", "predict_value", "misspec",
                     "loop_iter_begin", "loop_iter_end"):
            self.intrinsics.setdefault(name, noop)

    # -- hook notifications ----------------------------------------------------

    def notify_alloc(self, obj: MemoryObject, inst: Instruction) -> None:
        for h in self.hooks:
            h.on_alloc(self, obj, inst)

    def notify_free(self, obj: MemoryObject, inst: Instruction) -> None:
        for h in self.hooks:
            h.on_free(self, obj, inst)

    def notify_load(self, inst: Instruction, addr: int, size: int) -> None:
        for h in self.hooks:
            h.on_load(self, inst, addr, size)

    def notify_store(self, inst: Instruction, addr: int, size: int) -> None:
        for h in self.hooks:
            h.on_store(self, inst, addr, size)

    def emit_output(self, text: str) -> None:
        if self.output_sink is not None:
            self.output_sink(text)
        else:
            self.output.append(text)

    # -- naming ------------------------------------------------------------------

    def context_id(self) -> int:
        key = tuple(self.call_context)
        if key not in self._context_ids:
            self._context_ids[key] = len(self._context_ids)
        return self._context_ids[key]

    def object_name(self, inst: Instruction) -> str:
        return f"{inst.site_id()}#{self.context_id()}"

    # -- operand evaluation ---------------------------------------------------------

    def value_of(self, frame: Frame, v: Value):
        # Hot path: constants carry their value; everything else lives in
        # the frame's register file.
        cv = v.cval
        if cv is not None:
            return cv
        val = frame.regs.get(v, _MISS)
        if val is not _MISS:
            return val
        if isinstance(v, GlobalVariable):
            return self.global_addrs[v]
        raise GuestFault(
            f"use of undefined value {v.short()} in {frame.function.name}"
        )

    # -- program entry ------------------------------------------------------------------

    def code_for(self, fn: Function) -> FunctionCode:
        """Compiled code for ``fn``, fingerprint-validated once per
        interpreter (transforms mutate IR between interpreter lifetimes,
        not during a run)."""
        code = self._codes.get(fn)
        if code is None:
            code = function_code(fn)
            self._codes[fn] = code
        return code

    def _block_code(self, frame: Frame):
        return self.code_for(frame.function).blocks[frame.block]

    def push_function(self, fn: Function, args: Sequence[object] = (),
                      call_inst: Optional[Call] = None) -> Frame:
        if fn.is_declaration:
            raise GuestFault(f"cannot execute declaration @{fn.name}")
        # On the compiled path the frame's register numbering must match
        # the (validated) compiled code, so resolve it through code_for.
        regmap = self.code_for(fn).regmap if self.compiled else None
        frame = Frame(fn, call_inst, regmap=regmap)
        for formal, actual in zip(fn.args, args):
            frame.regs[formal] = actual
        self.frames.append(frame)
        return frame

    def run(self, entry: str = "main", args: Sequence[object] = ()):
        """Run ``entry`` to completion; returns its return value."""
        from ..obs.trace import TRACER

        fn = self.module.function_named(entry)
        self.push_function(fn, args)
        result: object = None
        # Observability stays outside the instruction loop: one enabled
        # check and (when tracing) a perf_counter pair per run().
        t0 = _time.perf_counter() if TRACER.enabled else 0.0
        steps0 = self.steps
        try:
            if self.compiled:
                result = run_fast(self)
            else:
                while self.frames:
                    result = self.step()
        except GuestExit as e:
            self.exit_code = e.code
            self.frames.clear()
            result = e.code
        finally:
            if TRACER.enabled:
                self._record_run_metrics(entry, t0, steps0)
        return result

    def _record_run_metrics(self, entry: str, t0: float, steps0: int) -> None:
        from ..obs.metrics import METRICS

        elapsed = _time.perf_counter() - t0
        steps = self.steps - steps0
        path = "fast" if self.compiled else "step"
        METRICS.counter(f"interp.instructions.{path}").inc(steps)
        if elapsed > 0 and steps:
            METRICS.histogram(f"interp.ips.{path}").observe(steps / elapsed)

    def run_until_event(self):
        """Run the current frame stack until it drains (returns the final
        return value).  ``BlockBreakpoint``, ``GuestExit`` and guest
        errors propagate to the caller — this is the executor's workhorse
        on both interpreter paths."""
        if self.compiled:
            return run_fast(self)
        result: object = None
        while self.frames:
            result = self.step()
        return result

    def swap_stack(self, frames: List[Frame]) -> List[Frame]:
        old, self.frames = self.frames, frames
        return old

    # -- the main step loop ------------------------------------------------------------

    def step(self):
        """Execute one instruction of the top frame.

        Returns the program's return value when the last frame pops (and
        the frame stack becomes empty), else None.
        """
        self.steps += 1
        if self.steps > self.max_steps:
            raise GuestTimeout(f"instruction budget exceeded ({self.max_steps})")
        frame = self.frames[-1]
        insts = frame.block.instructions
        if frame.index >= len(insts):
            raise GuestFault(
                f"fell off block {frame.block.name} in {frame.function.name}"
            )
        inst = insts[frame.index]
        try:
            self.cycles += inst._cached_cost  # type: ignore[attr-defined]
        except AttributeError:
            inst._cached_cost = instruction_cost(inst)  # type: ignore[attr-defined]
            self.cycles += inst._cached_cost  # type: ignore[attr-defined]
        op = inst.opcode

        if op is Opcode.BINOP:
            frame.regs[inst] = self._eval_binop(frame, inst)  # type: ignore[arg-type]
        elif op is Opcode.LOAD:
            addr = self.value_of(frame, inst.pointer)  # type: ignore[attr-defined]
            size = inst.type.size
            if self.hooks:
                self.notify_load(inst, addr, size)
            frame.regs[inst] = self._load_typed(addr, inst.type)
        elif op is Opcode.STORE:
            addr = self.value_of(frame, inst.pointer)  # type: ignore[attr-defined]
            value = self.value_of(frame, inst.value)  # type: ignore[attr-defined]
            size = inst.value.type.size  # type: ignore[attr-defined]
            if self.hooks:
                self.notify_store(inst, addr, size)
            self._store_typed(addr, value, inst.value.type)  # type: ignore[attr-defined]
        elif op is Opcode.PTRADD:
            base = self.value_of(frame, inst.base)  # type: ignore[attr-defined]
            off = self.value_of(frame, inst.offset)  # type: ignore[attr-defined]
            frame.regs[inst] = (int(base) + int(off)) & _U64
        elif op is Opcode.ICMP:
            frame.regs[inst] = self._eval_icmp(frame, inst)  # type: ignore[arg-type]
        elif op is Opcode.FCMP:
            frame.regs[inst] = self._eval_fcmp(frame, inst)  # type: ignore[arg-type]
        elif op is Opcode.CAST:
            frame.regs[inst] = self._eval_cast(frame, inst)  # type: ignore[arg-type]
        elif op is Opcode.SELECT:
            cond = self.value_of(frame, inst.operands[0])
            pick = inst.operands[1] if cond else inst.operands[2]
            frame.regs[inst] = self.value_of(frame, pick)
        elif op is Opcode.ALLOCA:
            count = int(self.value_of(frame, inst.count))  # type: ignore[attr-defined]
            size = inst.allocated_type.size * count  # type: ignore[attr-defined]
            obj = self.space.allocate(
                size, self.object_name(inst), "stack", STACK_BASE,
                site=inst.site_id(),
            )
            frame.allocas.append(obj.base)
            self.notify_alloc(obj, inst)
            frame.regs[inst] = obj.base
        elif op is Opcode.CALL:
            return self._eval_call(frame, inst)  # type: ignore[arg-type]
        elif op is Opcode.BR:
            if self.hooks:
                for h in self.hooks:
                    h.on_branch(self, inst, inst.target)  # type: ignore[attr-defined]
            self.enter_block(frame, inst.target, fire_breakpoints=True)  # type: ignore[attr-defined]
            return None
        elif op is Opcode.CONDBR:
            cond = self.value_of(frame, inst.cond)  # type: ignore[attr-defined]
            target = inst.if_true if cond else inst.if_false  # type: ignore[attr-defined]
            if self.hooks:
                for h in self.hooks:
                    h.on_branch(self, inst, target)
            self.enter_block(frame, target, fire_breakpoints=True)
            return None
        elif op is Opcode.RET:
            return self._eval_ret(frame, inst)  # type: ignore[arg-type]
        elif op is Opcode.PHI:
            raise GuestFault(
                f"phi executed outside block entry in {frame.function.name}"
            )
        elif op is Opcode.UNREACHABLE:
            raise GuestFault(f"reached 'unreachable' in {frame.function.name}")
        else:  # pragma: no cover - exhaustive
            raise GuestFault(f"unhandled opcode {op}")

        frame.index += 1
        return None

    # -- control flow -----------------------------------------------------------

    def enter_block(self, frame: Frame, target: BasicBlock,
                    fire_breakpoints: bool = False) -> None:
        """Transfer ``frame`` to ``target``: handles breakpoints and phis."""
        prev = frame.block
        if fire_breakpoints and target in self.block_breakpoints:
            raise BlockBreakpoint(frame, target, prev)
        # Atomic phi evaluation: read all incoming values before writing.
        phis: List[Tuple[Phi, object]] = []
        for inst in target.instructions:
            if not isinstance(inst, Phi):
                break
            phis.append((inst, self.value_of(frame, inst.incoming_for(prev))))
        for phi, value in phis:
            frame.regs[phi] = value
        frame.prev_block = prev
        frame.block = target
        frame.index = len(phis)

    def resume_at(self, frame: Frame, target: BasicBlock, prev: BasicBlock) -> None:
        """Continue a frame at ``target`` as if arriving from ``prev``
        (used by the executor after handling a breakpoint)."""
        frame.block = prev
        self.enter_block(frame, target, fire_breakpoints=False)

    def _eval_ret(self, frame: Frame, inst: Ret):
        value = self.value_of(frame, inst.value) if inst.value is not None else None
        for addr in reversed(frame.allocas):
            obj = self.space.free(addr)
            self.notify_free(obj, inst)
        self.frames.pop()
        for h in self.hooks:
            h.on_return(self, frame.function)
        if frame.call_inst is not None:
            self.call_context.pop()
        if not self.frames:
            return value
        caller = self.frames[-1]
        if frame.call_inst is not None:
            if not frame.call_inst.type.is_void():
                caller.regs[frame.call_inst] = value
            caller.index += 1
        return None

    def _eval_call(self, frame: Frame, inst: Call):
        callee = inst.callee
        args = [self.value_of(frame, a) for a in inst.args]
        if self.hooks:
            for h in self.hooks:
                h.on_call(self, inst, callee)
        if callee.is_declaration or callee.is_intrinsic:
            impl = self.intrinsics.get(callee.name)
            if impl is None:
                raise GuestFault(f"call to unresolved external @{callee.name}")
            self.cycles += intrinsic_cost(callee.name, args)
            result = impl(self, inst, args)
            if not inst.type.is_void():
                frame.regs[inst] = self._coerce_result(result, inst.type)
            frame.index += 1
            return None
        self.call_context.append(inst.site_id())
        self.push_function(callee, args, call_inst=inst)
        return None

    def _coerce_result(self, result, type_: Type):
        if result is None:
            result = 0
        if isinstance(type_, IntType):
            return type_.wrap(int(result))
        if isinstance(type_, FloatType):
            return float(result)
        return int(result) & _U64

    # -- typed memory access -------------------------------------------------------

    def _load_typed(self, addr: int, type_: Type):
        if isinstance(type_, IntType):
            return self.space.read_int(addr, type_.size, type_.signed)
        if isinstance(type_, FloatType):
            return self.space.read_float(addr, type_.size)
        if isinstance(type_, PointerType):
            return self.space.read_int(addr, 8, signed=False)
        raise GuestFault(f"load of unsupported type {type_}")

    def _store_typed(self, addr: int, value, type_: Type) -> None:
        if isinstance(type_, IntType):
            self.space.write_int(addr, int(value), type_.size)
        elif isinstance(type_, FloatType):
            self.space.write_float(addr, float(value), type_.size)
        elif isinstance(type_, PointerType):
            self.space.write_int(addr, int(value), 8)
        else:
            raise GuestFault(f"store of unsupported type {type_}")

    # -- arithmetic ------------------------------------------------------------------

    def _eval_binop(self, frame: Frame, inst: BinOp):
        ops = inst.operands
        a = self.value_of(frame, ops[0])
        b = self.value_of(frame, ops[1])
        kind = inst.kind
        ty = inst.type
        if inst.float_op:
            return self._float_binop(kind, float(a), float(b))
        a, b = int(a), int(b)
        if isinstance(ty, PointerType):
            # Pointer arithmetic routed through binop (rare; frontend
            # prefers ptradd) — treat as 64-bit unsigned.
            ty = IntType(64, signed=False)
        assert isinstance(ty, IntType)
        return self._int_binop(kind, a, b, ty)

    @staticmethod
    def _float_binop(kind: BinOpKind, a: float, b: float) -> float:
        try:
            if kind is BinOpKind.FADD:
                return a + b
            if kind is BinOpKind.FSUB:
                return a - b
            if kind is BinOpKind.FMUL:
                return a * b
            if kind is BinOpKind.FDIV:
                return a / b
        except ZeroDivisionError:
            if a == 0:
                return float("nan")
            return float("inf") if a > 0 else float("-inf")
        raise GuestFault(f"bad float binop {kind}")

    @staticmethod
    def _int_binop(kind: BinOpKind, a: int, b: int, ty: IntType) -> int:
        mask = (1 << ty.bits) - 1
        if kind is BinOpKind.ADD:
            return ty.wrap(a + b)
        if kind is BinOpKind.SUB:
            return ty.wrap(a - b)
        if kind is BinOpKind.MUL:
            return ty.wrap(a * b)
        if kind is BinOpKind.DIV:
            if b == 0:
                raise GuestFault("integer division by zero")
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            return ty.wrap(q)
        if kind is BinOpKind.REM:
            if b == 0:
                raise GuestFault("integer remainder by zero")
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            return ty.wrap(a - q * b)
        if kind is BinOpKind.AND:
            return ty.wrap((a & mask) & (b & mask))
        if kind is BinOpKind.OR:
            return ty.wrap((a & mask) | (b & mask))
        if kind is BinOpKind.XOR:
            return ty.wrap((a & mask) ^ (b & mask))
        if kind is BinOpKind.SHL:
            return ty.wrap((a & mask) << (b & (ty.bits - 1)))
        if kind is BinOpKind.SHR:
            shift = b & (ty.bits - 1)
            if ty.signed:
                return ty.wrap(a >> shift)
            return ty.wrap((a & mask) >> shift)
        raise GuestFault(f"bad int binop {kind}")

    def _eval_icmp(self, frame: Frame, inst: ICmp) -> int:
        a = int(self.value_of(frame, inst.lhs))
        b = int(self.value_of(frame, inst.rhs))
        ty = inst.lhs.type
        if isinstance(ty, IntType) and not ty.signed:
            mask = (1 << ty.bits) - 1
            a &= mask
            b &= mask
        elif isinstance(ty, PointerType):
            a &= _U64
            b &= _U64
        return int(self._compare(inst.pred, a, b))

    def _eval_fcmp(self, frame: Frame, inst: FCmp) -> int:
        a = float(self.value_of(frame, inst.lhs))
        b = float(self.value_of(frame, inst.rhs))
        return int(self._compare(inst.pred, a, b))

    @staticmethod
    def _compare(pred: CmpPred, a, b) -> bool:
        if pred is CmpPred.EQ:
            return a == b
        if pred is CmpPred.NE:
            return a != b
        if pred is CmpPred.LT:
            return a < b
        if pred is CmpPred.LE:
            return a <= b
        if pred is CmpPred.GT:
            return a > b
        return a >= b

    def _eval_cast(self, frame: Frame, inst: Cast):
        v = self.value_of(frame, inst.value)
        kind = inst.kind
        src = inst.value.type
        dst = inst.type
        if kind in (CastKind.TRUNC, CastKind.ZEXT, CastKind.SEXT):
            assert isinstance(dst, IntType)
            iv = int(v)
            if kind is CastKind.ZEXT and isinstance(src, IntType):
                iv &= (1 << src.bits) - 1
            return dst.wrap(iv)
        if kind is CastKind.BITCAST:
            if isinstance(src, FloatType) and isinstance(dst, IntType):
                return dst.wrap(int.from_bytes(_struct.pack("<d", float(v)), "little"))
            if isinstance(src, IntType) and isinstance(dst, FloatType):
                return _struct.unpack("<d", (int(v) & _U64).to_bytes(8, "little"))[0]
            return v
        if kind is CastKind.PTRTOINT:
            assert isinstance(dst, IntType)
            return dst.wrap(int(v) & _U64)
        if kind is CastKind.INTTOPTR:
            return int(v) & _U64
        if kind in (CastKind.SITOFP,):
            return float(int(v))
        if kind is CastKind.UITOFP:
            bits = src.bits if isinstance(src, IntType) else 64
            return float(int(v) & ((1 << bits) - 1))
        if kind in (CastKind.FPTOSI, CastKind.FPTOUI):
            assert isinstance(dst, IntType)
            f = float(v)
            if f != f or f in (float("inf"), float("-inf")):
                return 0
            return dst.wrap(int(f))
        if kind in (CastKind.FPEXT, CastKind.FPTRUNC):
            return float(v)
        raise GuestFault(f"unhandled cast {kind}")
