"""Simulated guest memory: a 64-bit address space with named objects.

This substrate replaces the paper's POSIX ``shm``/``mmap`` machinery.  Key
properties preserved from the paper's design:

* **Heap tags in pointer bits.**  Logical heaps live at fixed virtual
  ranges whose base encodes a 3-bit tag in address bits 44–46 (§5.1), so a
  separation check is two bit operations on the pointer value, and the
  shadow address of a private byte is ``addr | SHADOW_BIT``.
* **Interval object map.**  Every allocation is a named object occupying a
  half-open address interval; any interior pointer resolves to (object,
  offset), which is what the pointer-to-object profiler records.
* **Copy-on-write overlays.**  A child address space sees its parent's
  bytes until it writes them, mirroring per-worker ``fork`` isolation;
  dirty pages are tracked at 4 KiB granularity for checkpoint costing.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .errors import GuestFault

PAGE_SIZE = 4096
PAGE_SHIFT = 12

#: Heap-tag field location (paper §5.1: bits 44-46 of the address).
TAG_SHIFT = 44
TAG_MASK = 0x7

#: Region bases for ordinary (untagged) memory.
GLOBAL_BASE = 0x0000_1000_0000
STACK_BASE = 0x0000_2000_0000
HEAP_BASE = 0x0000_3000_0000

ALIGNMENT = 16


def heap_tag_of(addr: int) -> int:
    """Extract the 3-bit logical-heap tag from a pointer value."""
    return (addr >> TAG_SHIFT) & TAG_MASK


def _merge_runs(runs: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Sort and coalesce half-open (start, end) runs."""
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(runs):
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def _subtract_runs(start: int, end: int,
                   covered: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Pieces of ``[start, end)`` not inside any of the sorted coalesced
    ``covered`` runs."""
    out: List[Tuple[int, int]] = []
    cursor = start
    for c_start, c_end in covered:
        if c_end <= cursor:
            continue
        if c_start >= end:
            break
        if c_start > cursor:
            out.append((cursor, c_start))
        cursor = max(cursor, c_end)
        if cursor >= end:
            return out
    if cursor < end:
        out.append((cursor, end))
    return out


def heap_base_for_tag(tag: int) -> int:
    if not 1 <= tag <= 7:
        raise ValueError(f"heap tag must be 1..7, got {tag}")
    return tag << TAG_SHIFT


class MemoryObject:
    """A contiguous allocation: ``[base, base+size)`` plus its identity.

    ``name`` is the profiler-visible object name (static site + dynamic
    context for heap/stack objects, the symbol name for globals).
    """

    __slots__ = ("base", "size", "data", "name", "kind", "alive", "site", "writable")

    def __init__(self, base: int, size: int, name: str, kind: str,
                 site: str = "", writable: bool = True):
        self.base = base
        self.size = size
        self.data = bytearray(size)
        self.name = name
        self.kind = kind  # "global" | "stack" | "heap" | "logical"
        self.site = site  # static allocation site id ("" for globals)
        self.alive = True
        self.writable = writable

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def tag(self) -> int:
        return heap_tag_of(self.base)

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.end

    def __repr__(self) -> str:
        return f"<MemoryObject {self.name} @0x{self.base:x} +{self.size}>"


class AddressSpace:
    """Byte-addressable memory backed by named objects.

    Lookup is via a page map (page number -> objects overlapping the
    page).  Allocation is bump-pointer per region — addresses are never
    reused, so stale pointers fault instead of silently aliasing, which is
    what the lifetime profiler and the short-lived heap validation rely
    on.
    """

    __slots__ = ("parent", "_pages", "_cursors", "_cow_copies",
                 "dirty_pages", "bytes_allocated", "_track_dirty")

    def __init__(self, parent: Optional["AddressSpace"] = None):
        self.parent = parent
        self._pages: Dict[int, List[MemoryObject]] = {}
        if parent is None:
            self._cursors: Dict[int, int] = {
                GLOBAL_BASE: GLOBAL_BASE,
                STACK_BASE: STACK_BASE,
                HEAP_BASE: HEAP_BASE,
            }
        else:
            self._cursors = dict(parent._cursors)
        self._cow_copies: Dict[int, MemoryObject] = {}  # parent obj base -> copy
        self.dirty_pages: Set[int] = set()
        self.bytes_allocated = 0
        # Dirty-page tracking only matters for worker overlays (checkpoint
        # costing); skip the bookkeeping on the base space.
        self._track_dirty = parent is not None

    # -- registration ------------------------------------------------------

    def _register(self, obj: MemoryObject) -> None:
        first = obj.base >> PAGE_SHIFT
        last = (obj.end - 1) >> PAGE_SHIFT if obj.size else first
        for page in range(first, last + 1):
            self._pages.setdefault(page, []).append(obj)

    def _unregister(self, obj: MemoryObject) -> None:
        first = obj.base >> PAGE_SHIFT
        last = (obj.end - 1) >> PAGE_SHIFT if obj.size else first
        for page in range(first, last + 1):
            bucket = self._pages.get(page)
            if bucket is not None and obj in bucket:
                bucket.remove(obj)
                if not bucket:
                    del self._pages[page]

    # -- allocation ----------------------------------------------------------

    def region_cursor(self, region_base: int) -> int:
        if region_base not in self._cursors:
            self._cursors[region_base] = region_base
        return self._cursors[region_base]

    def allocate(
        self,
        size: int,
        name: str,
        kind: str,
        region_base: int = HEAP_BASE,
        site: str = "",
        writable: bool = True,
    ) -> MemoryObject:
        if size < 0:
            raise GuestFault(f"negative allocation size {size}")
        size = max(size, 1)
        cursor = self.region_cursor(region_base)
        base = (cursor + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT
        self._cursors[region_base] = base + size
        obj = MemoryObject(base, size, name, kind, site, writable)
        self._register(obj)
        self.bytes_allocated += size
        return obj

    def free(self, addr: int) -> MemoryObject:
        obj, offset = self.find(addr)
        if offset != 0:
            raise GuestFault(f"free of interior pointer 0x{addr:x} into {obj.name}")
        if not obj.alive:
            raise GuestFault(f"double free of {obj.name}")
        obj.alive = False
        self._unregister(obj)
        return obj

    # -- lookup -----------------------------------------------------------------

    def find(self, addr: int, size: int = 1) -> Tuple[MemoryObject, int]:
        """Resolve an address to (object, offset) or fault."""
        if addr == 0:
            raise GuestFault("null pointer dereference")
        page = addr >> PAGE_SHIFT
        space: Optional[AddressSpace] = self
        while space is not None:
            for obj in space._pages.get(page, ()):
                if obj.alive and obj.contains(addr, size):
                    # Prefer a local COW copy when one exists.
                    if space is not self:
                        copy = self._cow_copies.get(obj.base)
                        if copy is not None and copy.contains(addr, size):
                            return copy, addr - copy.base
                    return obj, addr - obj.base
            space = space.parent
        raise GuestFault(f"wild pointer 0x{addr:x} (size {size})")

    def try_find(self, addr: int, size: int = 1) -> Optional[Tuple[MemoryObject, int]]:
        try:
            return self.find(addr, size)
        except GuestFault:
            return None

    def object_for(self, addr: int) -> MemoryObject:
        return self.find(addr)[0]

    def covering_pieces(
        self, addr: int, size: int
    ) -> List[Tuple[int, int, MemoryObject]]:
        """Resolve the range ``[addr, addr+size)`` to maximal pieces
        ``(start, end, object)`` such that :meth:`find` would return
        ``object`` for every address in the piece; addresses where
        ``find`` would fault are simply absent.  Sorted by start.

        This is the bulk counterpart of :meth:`find` for the vectorized
        checkpoint paths: one page-map intersection per object touched
        instead of one lookup per byte.  The same precedence rules apply
        — live objects only, nearer spaces shadow ancestors, and a local
        COW copy substitutes for its parent object.
        """
        end = addr + size
        if size <= 0:
            return []
        pieces: List[Tuple[int, int, MemoryObject]] = []
        covered: List[Tuple[int, int]] = []  # claimed by nearer spaces
        space: Optional[AddressSpace] = self
        while space is not None:
            seen: Set[int] = set()
            candidates: List[Tuple[int, int, MemoryObject]] = []
            for page in range(addr >> PAGE_SHIFT,
                              ((end - 1) >> PAGE_SHIFT) + 1):
                for obj in space._pages.get(page, ()):
                    if not obj.alive or id(obj) in seen:
                        continue
                    seen.add(id(obj))
                    lo = max(addr, obj.base)
                    hi = min(end, obj.end)
                    if lo >= hi:
                        continue
                    if space is not self:
                        copy = self._cow_copies.get(obj.base)
                        if copy is not None:
                            obj = copy
                    candidates.append((lo, hi, obj))
            for lo, hi, obj in candidates:
                for sub_lo, sub_hi in _subtract_runs(lo, hi, covered):
                    pieces.append((sub_lo, sub_hi, obj))
            if candidates:
                covered = _merge_runs(
                    covered + [(lo, hi) for lo, hi, _obj in candidates])
            space = space.parent
        pieces.sort(key=lambda piece: piece[0])
        return pieces

    # -- copy-on-write -------------------------------------------------------------

    def _writable_object(self, addr: int, size: int) -> Tuple[MemoryObject, int]:
        obj, offset = self.find(addr, size)
        if not obj.writable:
            raise GuestFault(f"write to read-only object {obj.name} @0x{addr:x}")
        if self.parent is not None and not self._owns(obj):
            copy = self._cow_copies.get(obj.base)
            if copy is None:
                copy = MemoryObject(obj.base, obj.size, obj.name, obj.kind,
                                    obj.site, obj.writable)
                copy.data[:] = obj.data
                self._cow_copies[obj.base] = copy
                self._register(copy)
            obj, offset = copy, addr - copy.base
        return obj, offset

    def _owns(self, obj: MemoryObject) -> bool:
        for candidate in self._pages.get(obj.base >> PAGE_SHIFT, ()):
            if candidate is obj:
                return True
        return False

    def _touch_pages(self, addr: int, size: int) -> None:
        first = addr >> PAGE_SHIFT
        last = (addr + size - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            self.dirty_pages.add(page)

    # -- typed access -----------------------------------------------------------------

    def read_bytes(self, addr: int, size: int) -> bytes:
        obj, offset = self.find(addr, size)
        return bytes(obj.data[offset:offset + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        obj, offset = self._writable_object(addr, len(data))
        obj.data[offset:offset + len(data)] = data
        if self._track_dirty:
            self._touch_pages(addr, len(data))

    def read_int(self, addr: int, size: int, signed: bool) -> int:
        obj, offset = self.find(addr, size)
        return int.from_bytes(obj.data[offset:offset + size], "little",
                              signed=signed)

    def write_int(self, addr: int, value: int, size: int) -> None:
        obj, offset = self._writable_object(addr, size)
        mask = (1 << (size * 8)) - 1
        obj.data[offset:offset + size] = (value & mask).to_bytes(size, "little")
        if self._track_dirty:
            self._touch_pages(addr, size)

    def read_float(self, addr: int, size: int = 8) -> float:
        obj, offset = self.find(addr, size)
        return struct.unpack(
            "<d" if size == 8 else "<f", obj.data[offset:offset + size])[0]

    def write_float(self, addr: int, value: float, size: int = 8) -> None:
        self.write_bytes(addr, struct.pack("<d" if size == 8 else "<f", value))

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> str:
        obj, offset = self.find(addr)
        end = obj.data.find(b"\x00", offset)
        if end == -1 or end - offset > limit:
            raise GuestFault(f"unterminated string at 0x{addr:x}")
        return obj.data[offset:end].decode("utf-8", errors="replace")

    def fill(self, addr: int, value: int, size: int) -> None:
        self.write_bytes(addr, bytes([value & 0xFF]) * size)

    def copy(self, dst: int, src: int, size: int) -> None:
        self.write_bytes(dst, self.read_bytes(src, size))

    # -- introspection ---------------------------------------------------------------------

    def live_objects(self) -> Iterable[MemoryObject]:
        seen: Set[int] = set()
        for bucket in self._pages.values():
            for obj in bucket:
                if obj.alive and id(obj) not in seen:
                    seen.add(id(obj))
                    yield obj

    def cow_copied_objects(self) -> List[MemoryObject]:
        return list(self._cow_copies.values())
