"""Per-operation cycle costs for the simulated machine.

These replace wall-clock measurement on the paper's 24-core Xeon X7460.
Absolute values are rough x86-ish latencies; only *ratios* matter for the
reproduced figures (speedups are ratios of simulated cycles).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from ..ir.instructions import BinOp, BinOpKind, Instruction, Opcode

#: Base cost per opcode, in simulated cycles.
OPCODE_COSTS: Dict[Opcode, int] = {
    Opcode.PHI: 0,
    Opcode.ALLOCA: 2,
    Opcode.LOAD: 3,
    Opcode.STORE: 3,
    Opcode.PTRADD: 1,
    Opcode.BINOP: 1,
    Opcode.ICMP: 1,
    Opcode.FCMP: 2,
    Opcode.CAST: 1,
    Opcode.SELECT: 1,
    Opcode.CALL: 4,
    Opcode.BR: 1,
    Opcode.CONDBR: 1,
    Opcode.RET: 2,
    Opcode.UNREACHABLE: 0,
}

_EXPENSIVE_BINOPS = {
    BinOpKind.DIV: 24,
    BinOpKind.REM: 24,
    BinOpKind.MUL: 3,
    BinOpKind.FDIV: 20,
    BinOpKind.FMUL: 4,
    BinOpKind.FADD: 3,
    BinOpKind.FSUB: 3,
}

#: Cost of library intrinsics; callables receive the evaluated args.
INTRINSIC_COSTS: Dict[str, Union[int, Callable[[List], int]]] = {
    "malloc": 40,
    "calloc": 50,
    "free": 25,
    "memset": lambda args: 10 + int(args[2]) // 8 if len(args) > 2 else 10,
    "memcpy": lambda args: 10 + int(args[2]) // 8 if len(args) > 2 else 10,
    "printf": 250,
    "puts": 150,
    "exit": 0,
    "abs": 1,
    "sqrt": 20,
    "exp": 40,
    "log": 40,
    "sin": 40,
    "cos": 40,
    "pow": 60,
    "fabs": 2,
    "floor": 4,
    "rand_seed": 2,
    "rand_int": 6,
    # Privateer runtime entry points (the runtime adds per-byte metadata
    # costs on top of these fixed call overheads; see repro.runtime).
    "h_alloc": 42,
    "h_dealloc": 26,
    "check_heap": 2,
    "private_read": 8,
    "private_write": 8,
    "redux_update": 4,
    "predict_value": 2,
    "misspec": 1,
    "loop_iter_begin": 1,
    "loop_iter_end": 2,
}


def instruction_cost(inst: Instruction) -> int:
    """Cycle cost of one executed IR instruction (calls add intrinsic
    costs separately)."""
    if isinstance(inst, BinOp):
        return _EXPENSIVE_BINOPS.get(inst.kind, 1)
    return OPCODE_COSTS.get(inst.opcode, 1)


def intrinsic_cost(name: str, args: List) -> int:
    cost = INTRINSIC_COSTS.get(name, 10)
    if callable(cost):
        return cost(args)
    return cost
