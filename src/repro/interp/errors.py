"""Guest-program exceptions raised by the interpreter and runtime."""

from __future__ import annotations


class BlockBreakpoint(Exception):
    """Raised when execution is about to enter a registered block.

    Defined here (rather than in :mod:`repro.interp.interpreter`) so the
    compiled fast path can raise it without a circular import; the
    interpreter module re-exports it under its historical name.
    """

    def __init__(self, frame, target, prev):
        super().__init__(f"breakpoint at {target.name}")
        self.frame = frame
        self.target = target
        self.prev = prev


class GuestError(Exception):
    """Base class for errors attributable to the interpreted program."""


class GuestFault(GuestError):
    """Invalid memory access (wild pointer, use-after-free, overflow)."""


class GuestExit(GuestError):
    """The guest called ``exit(code)``."""

    def __init__(self, code: int = 0):
        super().__init__(f"guest exited with code {code}")
        self.code = code


class GuestTimeout(GuestError):
    """The interpreter exceeded its instruction budget."""


class Misspeculation(GuestError):
    """A Privateer runtime validation failed (§5.1).

    ``kind`` is one of: separation, privacy, lifetime, value, control.
    """

    def __init__(self, kind: str, detail: str = "", iteration: int = -1):
        super().__init__(f"misspeculation[{kind}] at iteration {iteration}: {detail}")
        self.kind = kind
        self.detail = detail
        self.iteration = iteration
        #: Forensic conflict context (a plain picklable dict built by
        #: :meth:`repro.runtime.system.RuntimeSystem.capture_conflict_context`)
        #: or None when the flight recorder is disabled / nothing could be
        #: recovered from the detail string.
        self.context = None
