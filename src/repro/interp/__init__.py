"""IR interpreter and simulated guest memory."""

from .errors import GuestError, GuestExit, GuestFault, GuestTimeout, Misspeculation
from .interpreter import BlockBreakpoint, Frame, Hook, Interpreter
from .memory import (
    ALIGNMENT,
    GLOBAL_BASE,
    HEAP_BASE,
    PAGE_SIZE,
    STACK_BASE,
    TAG_SHIFT,
    AddressSpace,
    MemoryObject,
    heap_base_for_tag,
    heap_tag_of,
)

__all__ = [
    "ALIGNMENT", "AddressSpace", "BlockBreakpoint", "Frame", "GLOBAL_BASE",
    "GuestError", "GuestExit", "GuestFault", "GuestTimeout", "HEAP_BASE",
    "Hook", "Interpreter", "MemoryObject", "Misspeculation", "PAGE_SIZE",
    "STACK_BASE", "TAG_SHIFT", "heap_base_for_tag", "heap_tag_of",
]
