"""Library intrinsics for the guest: allocation, string/byte ops, printf,
math, and a deterministic PRNG.

Each implementation receives the interpreter, the call instruction, and
already-evaluated argument values, and returns the call's result value (or
None for void).  The Privateer runtime intrinsics (``h_alloc``,
``check_heap``, …) are installed by :mod:`repro.runtime`; in a plain
sequential run they fall back to the neutral behaviours defined here.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Dict, List

from .errors import GuestExit, GuestFault
from .memory import HEAP_BASE

if TYPE_CHECKING:  # pragma: no cover
    from .interpreter import Interpreter


def _i_malloc(interp: "Interpreter", inst, args: List) -> int:
    size = int(args[0])
    obj = interp.space.allocate(
        size, interp.object_name(inst), "heap", HEAP_BASE, site=inst.site_id()
    )
    interp.notify_alloc(obj, inst)
    return obj.base


def _i_calloc(interp: "Interpreter", inst, args: List) -> int:
    count, size = int(args[0]), int(args[1])
    obj = interp.space.allocate(
        count * size, interp.object_name(inst), "heap", HEAP_BASE, site=inst.site_id()
    )
    interp.notify_alloc(obj, inst)
    return obj.base


def _i_free(interp: "Interpreter", inst, args: List) -> None:
    addr = int(args[0])
    if addr == 0:
        return  # free(NULL) is a no-op, as in C
    obj = interp.space.free(addr)
    interp.notify_free(obj, inst)


def _i_memset(interp: "Interpreter", inst, args: List) -> int:
    addr, value, size = int(args[0]), int(args[1]), int(args[2])
    if size:
        interp.notify_store(inst, addr, size)
        interp.space.fill(addr, value, size)
    return addr


def _i_memcpy(interp: "Interpreter", inst, args: List) -> int:
    dst, src, size = int(args[0]), int(args[1]), int(args[2])
    if size:
        interp.notify_load(inst, src, size)
        interp.notify_store(inst, dst, size)
        interp.space.copy(dst, src, size)
    return dst


def format_printf(interp: "Interpreter", fmt: str, args: List) -> str:
    """Minimal printf formatter: %d %ld %u %x %c %s %f %g %e %%, with
    optional width/precision digits which are passed through to Python."""
    out: List[str] = []
    i = 0
    argi = 0
    n = len(fmt)
    while i < n:
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        j = i + 1
        spec = ""
        while j < n and fmt[j] in "-+ 0123456789.*lhz":
            if fmt[j] != "l" and fmt[j] != "h" and fmt[j] != "z":
                spec += fmt[j]
            j += 1
        if j >= n:
            out.append("%")
            break
        conv = fmt[j]
        if conv == "%":
            out.append("%")
        else:
            arg = args[argi] if argi < len(args) else 0
            argi += 1
            if conv in "di":
                out.append(format(int(arg), spec + "d"))
            elif conv == "u":
                out.append(format(int(arg) & 0xFFFFFFFFFFFFFFFF, spec + "d"))
            elif conv in "xX":
                out.append(format(int(arg) & 0xFFFFFFFFFFFFFFFF, spec + conv))
            elif conv == "c":
                out.append(chr(int(arg) & 0xFF))
            elif conv == "s":
                out.append(interp.space.read_cstring(int(arg)))
            elif conv in "feEgG":
                out.append(format(float(arg), spec + conv))
            elif conv == "p":
                out.append(hex(int(arg)))
            else:
                raise GuestFault(f"printf: unsupported conversion %{conv}")
        i = j + 1
    return "".join(out)


def _i_printf(interp: "Interpreter", inst, args: List) -> int:
    fmt = interp.space.read_cstring(int(args[0]))
    text = format_printf(interp, fmt, args[1:])
    interp.emit_output(text)
    return len(text)


def _i_puts(interp: "Interpreter", inst, args: List) -> int:
    text = interp.space.read_cstring(int(args[0]))
    interp.emit_output(text + "\n")
    return 0


def _i_exit(interp: "Interpreter", inst, args: List) -> None:
    raise GuestExit(int(args[0]) if args else 0)


def _i_abs(interp: "Interpreter", inst, args: List) -> int:
    return abs(int(args[0]))


def _wrap_math(fn: Callable[..., float]) -> Callable:
    def impl(interp: "Interpreter", inst, args: List) -> float:
        try:
            return float(fn(*[float(a) for a in args]))
        except (ValueError, OverflowError):
            return float("nan")
    return impl


def _i_rand_seed(interp: "Interpreter", inst, args: List) -> None:
    seed = int(args[0]) & 0xFFFFFFFFFFFFFFFF
    interp.prng_state = seed or 0x9E3779B97F4A7C15


def _i_rand_int(interp: "Interpreter", inst, args: List) -> int:
    """xorshift64*: deterministic, fast, well distributed."""
    x = interp.prng_state
    x ^= (x >> 12)
    x ^= (x << 25) & 0xFFFFFFFFFFFFFFFF
    x ^= (x >> 27)
    interp.prng_state = x
    value = (x * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF
    return (value >> 16) & 0x7FFFFFFF  # non-negative, fits an i32


def default_intrinsics() -> Dict[str, Callable]:
    return {
        "malloc": _i_malloc,
        "calloc": _i_calloc,
        "free": _i_free,
        "memset": _i_memset,
        "memcpy": _i_memcpy,
        "printf": _i_printf,
        "puts": _i_puts,
        "exit": _i_exit,
        "abs": _i_abs,
        "sqrt": _wrap_math(math.sqrt),
        "exp": _wrap_math(math.exp),
        "log": _wrap_math(math.log),
        "sin": _wrap_math(math.sin),
        "cos": _wrap_math(math.cos),
        "pow": _wrap_math(math.pow),
        "fabs": _wrap_math(abs),
        "floor": _wrap_math(math.floor),
        "rand_seed": _i_rand_seed,
        "rand_int": _i_rand_int,
    }
