"""Closure-compiled fast path for the mini-IR interpreter.

The reference :meth:`Interpreter.step` re-dispatches on the opcode and
re-resolves every operand on every executed instruction.  This module
pre-translates each :class:`BasicBlock` once into a list of specialized
closures:

* operands are resolved at translate time to either a baked-in constant,
  a flat frame-register slot index, or a global (looked up through
  ``interp.global_addrs`` so compiled code stays interpreter-independent);
* the per-opcode handler (binop kind, cast kind, compare predicate, load
  width/signedness, …) is selected once, at translate time;
* the cycle cost of each straight-line suffix is precomputed, so cycle
  accounting adds one number per block run instead of one per
  instruction (with exact roll-back on calls and guest exceptions, so
  both paths report identical cycle and step totals at every observable
  point: block boundaries, hook events, and raised exceptions).

Compiled code is cached on the :class:`Function` object and invalidated
by a structural fingerprint (a refinement of the module fingerprint in
:mod:`repro.profiling.serialize`): each :class:`Interpreter` validates
the fingerprint once per function before trusting the cache, so IR
transformations such as :class:`PrivateerTransform` — which mutate
instructions in place between the profiling runs and the parallel
execution — transparently trigger recompilation.

The reference ``step()`` path remains the executable specification;
``tests/test_fastpath_differential.py`` holds the two paths to identical
guest output, cycle totals, and profiler records.
"""

from __future__ import annotations

import struct as _struct
from typing import Callable, Dict, List, Optional, Tuple

from ..ir.instructions import (
    Alloca,
    BinOp,
    BinOpKind,
    Br,
    Call,
    Cast,
    CastKind,
    CmpPred,
    CondBr,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Opcode,
    Phi,
    PtrAdd,
    Ret,
    Select,
    Store,
)
from ..ir.module import BasicBlock, Function
from ..ir.types import FloatType, IntType, PointerType
from ..ir.values import GlobalVariable, Value
from .costs import instruction_cost, intrinsic_cost
from .errors import BlockBreakpoint, GuestFault
from .memory import STACK_BASE

_U64 = 0xFFFFFFFFFFFFFFFF

#: Sentinel stored in unassigned register slots; reads of it reproduce the
#: reference path's "use of undefined value" fault.
_UNDEF = object()

#: Sentinel default for :meth:`RegisterFile.get` misses.
_MISS = object()

# Signals returned by compiled ops to the dispatch loop.  A BlockCode
# instance means "control transferred, continue in this frame"; these two
# mean "the frame stack changed".
_PUSHED = object()   # a call pushed a new frame
_POPPED = object()   # a ret popped the top frame (caller resumes)
_DONE = object()     # the last frame returned; result in interp._fast_result


# ---------------------------------------------------------------------------
# Register numbering
# ---------------------------------------------------------------------------


def build_regmap(fn: Function) -> Dict[Value, int]:
    """Assign a flat register slot to every value the function can define:
    formal arguments and every instruction result (void results included —
    the waste is tiny and keeps numbering trivially stable)."""
    regmap: Dict[Value, int] = {}
    for arg in fn.args:
        regmap[arg] = len(regmap)
    for bb in fn.blocks:
        for inst in bb.instructions:
            regmap[inst] = len(regmap)
    return regmap


class RegisterFile:
    """Dict-protocol view over a frame's flat register slots.

    The compiled fast path indexes ``frame.slots`` directly; everything
    else (the reference ``step()`` path, the executor poking loop phis,
    tests) goes through this mapping interface.  Values that are not in
    the function's numbering (possible only when a cached register map
    predates an IR mutation) spill into an overflow dict, which restores
    the exact semantics of the old per-frame ``Dict[Value, object]``.
    """

    __slots__ = ("slots", "_map", "_extra")

    def __init__(self, regmap: Dict[Value, int], slots: List[object],
                 extra: Optional[Dict[Value, object]] = None):
        self.slots = slots
        self._map = regmap
        self._extra = extra

    def __contains__(self, v: Value) -> bool:
        i = self._map.get(v)
        if i is not None:
            return self.slots[i] is not _UNDEF
        return self._extra is not None and v in self._extra

    def __getitem__(self, v: Value):
        i = self._map.get(v)
        if i is not None:
            val = self.slots[i]
            if val is not _UNDEF:
                return val
            raise KeyError(v)
        if self._extra is not None and v in self._extra:
            return self._extra[v]
        raise KeyError(v)

    def __setitem__(self, v: Value, val: object) -> None:
        i = self._map.get(v)
        if i is not None:
            self.slots[i] = val
        else:
            if self._extra is None:
                self._extra = {}
            self._extra[v] = val

    def get(self, v: Value, default=None):
        i = self._map.get(v)
        if i is not None:
            val = self.slots[i]
            return default if val is _UNDEF else val
        if self._extra is not None:
            return self._extra.get(v, default)
        return default

    def as_dict(self) -> Dict[Value, object]:
        out = {v: self.slots[i] for v, i in self._map.items()
               if self.slots[i] is not _UNDEF}
        if self._extra:
            out.update(self._extra)
        return out

    def keys(self):
        return self.as_dict().keys()

    def items(self):
        return self.as_dict().items()

    def values(self):
        return self.as_dict().values()

    def __iter__(self):
        return iter(self.as_dict())

    def __len__(self) -> int:
        return len(self.as_dict())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RegisterFile):
            return self.as_dict() == other.as_dict()
        if isinstance(other, dict):
            return self.as_dict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"RegisterFile({self.as_dict()!r})"

    def copy_for(self, slots: List[object]) -> "RegisterFile":
        return RegisterFile(self._map, slots,
                            dict(self._extra) if self._extra else None)


# ---------------------------------------------------------------------------
# Fingerprinting / caches
# ---------------------------------------------------------------------------


def function_fingerprint(fn: Function) -> int:
    """Structural fingerprint of one function: block layout, instruction
    identities, operand identities, branch targets, phi incomings, and the
    per-class payloads that compilation bakes in.  Any in-place IR
    mutation — including direct ``inst.operands[:] = …`` rewrites that
    bypass ``replace_operand`` — changes it."""
    parts: List[object] = []
    for bb in fn.blocks:
        parts.append(bb.name)
        for inst in bb.instructions:
            parts.append(inst.uid)
            parts.append(inst.opcode.value)
            for op in inst.operands:
                parts.append(op.uid)
            if isinstance(inst, BinOp):
                parts.append(inst.kind.value)
            elif isinstance(inst, (ICmp, FCmp)):
                parts.append(inst.pred.value)
            elif isinstance(inst, Cast):
                parts.append(inst.kind.value)
            elif isinstance(inst, Call):
                parts.append(inst.callee.uid)
            elif isinstance(inst, Br):
                parts.append(inst.target.name)
            elif isinstance(inst, CondBr):
                parts.append(inst.if_true.name)
                parts.append(inst.if_false.name)
            elif isinstance(inst, Phi):
                for pred, v in inst.incoming:
                    parts.append(pred.name)
                    parts.append(v.uid)
    return hash(tuple(parts))


def regmap_for(fn: Function) -> Dict[Value, int]:
    """The function's cached register numbering (no validation — stale
    maps are safe because :class:`RegisterFile` spills unknown values to
    its overflow dict; the compiled path always goes through
    :func:`function_code`, which does validate)."""
    cached = getattr(fn, "_repro_regmap", None)
    if cached is None:
        cached = build_regmap(fn)
        fn._repro_regmap = cached  # type: ignore[attr-defined]
    return cached


def function_code(fn: Function) -> "FunctionCode":
    """Validate-or-compile: reuse the cached :class:`FunctionCode` when
    the function's fingerprint still matches, else recompile (and renumber
    registers, so transform-inserted values get slots)."""
    fp = function_fingerprint(fn)
    cached = getattr(fn, "_repro_code", None)
    if cached is not None and cached[0] == fp:
        return cached[1]
    fn._repro_regmap = build_regmap(fn)  # type: ignore[attr-defined]
    code = FunctionCode(fn, fn._repro_regmap)  # type: ignore[attr-defined]
    fn._repro_code = (fp, code)  # type: ignore[attr-defined]
    return code


# ---------------------------------------------------------------------------
# Operand resolution
# ---------------------------------------------------------------------------

# Compile-time operand classification: (KIND, payload)
_K_CONST = 0   # payload: the Python value
_K_SLOT = 1    # payload: slot index
_K_GLOBAL = 2  # payload: the GlobalVariable


def _classify(v: Value, regmap: Dict[Value, int]) -> Tuple[int, object]:
    cv = v.cval
    if cv is not None:
        return _K_CONST, cv
    if isinstance(v, GlobalVariable):
        return _K_GLOBAL, v
    idx = regmap.get(v)
    if idx is None:
        # Not in the numbering (cannot happen for well-formed IR compiled
        # after numbering, but mirror the reference fault if it does).
        return _K_GLOBAL, v  # treated as global-ish miss below
    return _K_SLOT, idx


def _undef_fault(v: Value, fn: Function):
    raise GuestFault(f"use of undefined value {v.short()} in {fn.name}")


def _getter(v: Value, regmap: Dict[Value, int],
            fn: Function) -> Callable:
    """Generic operand getter ``g(interp, frame) -> value``; the hot op
    compilers specialize the slot/const cases inline instead."""
    kind, payload = _classify(v, regmap)
    if kind == _K_CONST:
        const = payload

        def g_const(interp, frame, _c=const):
            return _c
        return g_const
    if kind == _K_SLOT:
        idx = payload

        def g_slot(interp, frame, _i=idx, _v=v, _f=fn):
            val = frame.slots[_i]
            if val is _UNDEF:
                _undef_fault(_v, _f)
            return val
        return g_slot
    gv = payload
    if isinstance(gv, GlobalVariable):
        def g_global(interp, frame, _g=gv):
            return interp.global_addrs[_g]
        return g_global

    def g_missing(interp, frame, _v=v, _f=fn):
        # Overflow-dict values (stale regmap) or a genuine undefined use.
        val = frame.regs.get(_v, _UNDEF)
        if val is _UNDEF:
            if isinstance(_v, GlobalVariable):
                return interp.global_addrs[_v]
            _undef_fault(_v, _f)
        return val
    return g_missing


# ---------------------------------------------------------------------------
# Arithmetic kernels (mirror Interpreter._int_binop/_float_binop exactly)
# ---------------------------------------------------------------------------


def _int_kernel(kind: BinOpKind, ty: IntType) -> Callable:
    wrap = ty.wrap
    mask = (1 << ty.bits) - 1
    shift_mask = ty.bits - 1
    signed = ty.signed
    if kind is BinOpKind.ADD:
        return lambda a, b: wrap(int(a) + int(b))
    if kind is BinOpKind.SUB:
        return lambda a, b: wrap(int(a) - int(b))
    if kind is BinOpKind.MUL:
        return lambda a, b: wrap(int(a) * int(b))
    if kind is BinOpKind.DIV:
        def k_div(a, b):
            a, b = int(a), int(b)
            if b == 0:
                raise GuestFault("integer division by zero")
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            return wrap(q)
        return k_div
    if kind is BinOpKind.REM:
        def k_rem(a, b):
            a, b = int(a), int(b)
            if b == 0:
                raise GuestFault("integer remainder by zero")
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            return wrap(a - q * b)
        return k_rem
    if kind is BinOpKind.AND:
        return lambda a, b: wrap((int(a) & mask) & (int(b) & mask))
    if kind is BinOpKind.OR:
        return lambda a, b: wrap((int(a) & mask) | (int(b) & mask))
    if kind is BinOpKind.XOR:
        return lambda a, b: wrap((int(a) & mask) ^ (int(b) & mask))
    if kind is BinOpKind.SHL:
        return lambda a, b: wrap((int(a) & mask) << (int(b) & shift_mask))
    if kind is BinOpKind.SHR:
        if signed:
            return lambda a, b: wrap(int(a) >> (int(b) & shift_mask))
        return lambda a, b: wrap((int(a) & mask) >> (int(b) & shift_mask))
    raise GuestFault(f"bad int binop {kind}")


def _float_kernel(kind: BinOpKind) -> Callable:
    if kind is BinOpKind.FADD:
        return lambda a, b: float(a) + float(b)
    if kind is BinOpKind.FSUB:
        return lambda a, b: float(a) - float(b)
    if kind is BinOpKind.FMUL:
        return lambda a, b: float(a) * float(b)
    if kind is BinOpKind.FDIV:
        def k_fdiv(a, b):
            a, b = float(a), float(b)
            try:
                return a / b
            except ZeroDivisionError:
                if a == 0:
                    return float("nan")
                return float("inf") if a > 0 else float("-inf")
        return k_fdiv
    raise GuestFault(f"bad float binop {kind}")


_CMP_KERNELS = {
    CmpPred.EQ: lambda a, b: a == b,
    CmpPred.NE: lambda a, b: a != b,
    CmpPred.LT: lambda a, b: a < b,
    CmpPred.LE: lambda a, b: a <= b,
    CmpPred.GT: lambda a, b: a > b,
    CmpPred.GE: lambda a, b: a >= b,
}


def _cast_kernel(inst: Cast) -> Callable:
    kind = inst.kind
    src = inst.value.type
    dst = inst.type
    if kind in (CastKind.TRUNC, CastKind.ZEXT, CastKind.SEXT):
        assert isinstance(dst, IntType)
        wrap = dst.wrap
        if kind is CastKind.ZEXT and isinstance(src, IntType):
            smask = (1 << src.bits) - 1
            return lambda v: wrap(int(v) & smask)
        return lambda v: wrap(int(v))
    if kind is CastKind.BITCAST:
        if isinstance(src, FloatType) and isinstance(dst, IntType):
            wrap = dst.wrap
            return lambda v: wrap(int.from_bytes(
                _struct.pack("<d", float(v)), "little"))
        if isinstance(src, IntType) and isinstance(dst, FloatType):
            return lambda v: _struct.unpack(
                "<d", (int(v) & _U64).to_bytes(8, "little"))[0]
        return lambda v: v
    if kind is CastKind.PTRTOINT:
        assert isinstance(dst, IntType)
        wrap = dst.wrap
        return lambda v: wrap(int(v) & _U64)
    if kind is CastKind.INTTOPTR:
        return lambda v: int(v) & _U64
    if kind is CastKind.SITOFP:
        return lambda v: float(int(v))
    if kind is CastKind.UITOFP:
        bits = src.bits if isinstance(src, IntType) else 64
        umask = (1 << bits) - 1
        return lambda v: float(int(v) & umask)
    if kind in (CastKind.FPTOSI, CastKind.FPTOUI):
        assert isinstance(dst, IntType)
        wrap = dst.wrap

        def k_fptoi(v):
            f = float(v)
            if f != f or f in (float("inf"), float("-inf")):
                return 0
            return wrap(int(f))
        return k_fptoi
    if kind in (CastKind.FPEXT, CastKind.FPTRUNC):
        return lambda v: float(v)

    def k_bad(v):
        raise GuestFault(f"unhandled cast {kind}")
    return k_bad


def _coercer(type_) -> Callable:
    """Baked equivalent of Interpreter._coerce_result for one result type."""
    if isinstance(type_, IntType):
        wrap = type_.wrap

        def c_int(result):
            return wrap(int(result)) if result is not None else wrap(0)
        return c_int
    if isinstance(type_, FloatType):
        def c_float(result):
            return float(result) if result is not None else 0.0
        return c_float

    def c_ptr(result):
        return int(result) & _U64 if result is not None else 0
    return c_ptr


# ---------------------------------------------------------------------------
# Block compilation
# ---------------------------------------------------------------------------


class BlockCode:
    """One compiled basic block: specialized closures for the non-phi
    instructions, plus precomputed straight-line cost suffixes."""

    __slots__ = ("block", "first", "nops", "ops", "suffix")

    def __init__(self, block: BasicBlock):
        self.block = block
        first = 0
        for inst in block.instructions:
            if not isinstance(inst, Phi):
                break
            first += 1
        self.first = first
        self.ops: List[Callable] = []
        #: suffix[i] = cycle cost of ops[i:] (suffix[nops] == 0).
        self.suffix: List[int] = []
        self.nops = 0

    def _finish(self, ops: List[Callable], costs: List[int]) -> None:
        self.ops = ops
        self.nops = len(ops)
        suffix = [0] * (len(ops) + 1)
        for i in range(len(ops) - 1, -1, -1):
            suffix[i] = suffix[i + 1] + costs[i]
        self.suffix = suffix


class FunctionCode:
    """All compiled blocks of one function plus its register numbering."""

    __slots__ = ("function", "regmap", "nslots", "blocks")

    def __init__(self, fn: Function, regmap: Dict[Value, int]):
        self.function = fn
        self.regmap = regmap
        self.nslots = len(regmap)
        self.blocks: Dict[BasicBlock, BlockCode] = {
            bb: BlockCode(bb) for bb in fn.blocks
        }
        compiler = _BlockCompiler(fn, regmap, self.blocks)
        for bb, bcode in self.blocks.items():
            compiler.compile_into(bb, bcode)


class _BlockCompiler:
    """Translates instructions to closures; one instance per function so
    edge transitions can reference sibling BlockCode objects."""

    def __init__(self, fn: Function, regmap: Dict[Value, int],
                 blocks: Dict[BasicBlock, BlockCode]):
        self.fn = fn
        self.regmap = regmap
        self.blocks = blocks

    # -- operand helpers ----------------------------------------------------

    def _g(self, v: Value) -> Callable:
        return _getter(v, self.regmap, self.fn)

    def _slot(self, inst: Instruction) -> int:
        return self.regmap[inst]

    # -- entry point --------------------------------------------------------

    def compile_into(self, bb: BasicBlock, bcode: BlockCode) -> None:
        ops: List[Callable] = []
        costs: List[int] = []
        insts = bb.instructions
        for inst in insts[bcode.first:]:
            ops.append(self._compile_inst(inst, bb))
            costs.append(instruction_cost(inst))
        if not insts or not insts[-1].is_terminator:
            # Mirror the reference "fell off block" fault: costs nothing,
            # consumes one step.
            fn_name = self.fn.name
            block_name = bb.name

            def op_fall(interp, frame):
                raise GuestFault(f"fell off block {block_name} in {fn_name}")
            ops.append(op_fall)
            costs.append(0)
        bcode._finish(ops, costs)

    def _compile_inst(self, inst: Instruction, bb: BasicBlock) -> Callable:
        op = inst.opcode
        if op is Opcode.BINOP:
            return self._compile_binop(inst)  # type: ignore[arg-type]
        if op is Opcode.LOAD:
            return self._compile_load(inst)  # type: ignore[arg-type]
        if op is Opcode.STORE:
            return self._compile_store(inst)  # type: ignore[arg-type]
        if op is Opcode.PTRADD:
            return self._compile_ptradd(inst)  # type: ignore[arg-type]
        if op is Opcode.ICMP:
            return self._compile_icmp(inst)  # type: ignore[arg-type]
        if op is Opcode.FCMP:
            return self._compile_fcmp(inst)  # type: ignore[arg-type]
        if op is Opcode.CAST:
            return self._compile_cast(inst)  # type: ignore[arg-type]
        if op is Opcode.SELECT:
            return self._compile_select(inst)  # type: ignore[arg-type]
        if op is Opcode.ALLOCA:
            return self._compile_alloca(inst)  # type: ignore[arg-type]
        if op is Opcode.CALL:
            return self._compile_call(inst, bb)  # type: ignore[arg-type]
        if op is Opcode.BR:
            return self._compile_br(inst, bb)  # type: ignore[arg-type]
        if op is Opcode.CONDBR:
            return self._compile_condbr(inst, bb)  # type: ignore[arg-type]
        if op is Opcode.RET:
            return self._compile_ret(inst)  # type: ignore[arg-type]
        if op is Opcode.PHI:
            fn_name = self.fn.name

            def op_phi(interp, frame):
                raise GuestFault(
                    f"phi executed outside block entry in {fn_name}")
            return op_phi
        if op is Opcode.UNREACHABLE:
            fn_name = self.fn.name

            def op_unreachable(interp, frame):
                raise GuestFault(f"reached 'unreachable' in {fn_name}")
            return op_unreachable
        fn_name = self.fn.name

        def op_unknown(interp, frame, _op=op):
            raise GuestFault(f"unhandled opcode {_op}")
        return op_unknown

    # -- straight-line ops ----------------------------------------------------

    def _compile_binop(self, inst: BinOp) -> Callable:
        ty = inst.type
        if inst.float_op:
            kern = _float_kernel(inst.kind)
        else:
            ity = ty
            if isinstance(ity, PointerType):
                ity = IntType(64, signed=False)
            assert isinstance(ity, IntType)
            kern = _int_kernel(inst.kind, ity)
        d = self._slot(inst)
        a, b = inst.operands[0], inst.operands[1]
        ka, pa = _classify(a, self.regmap)
        kb, pb = _classify(b, self.regmap)
        fn = self.fn
        if ka == _K_SLOT and kb == _K_SLOT:
            ai, bi = pa, pb

            def op_ss(interp, frame):
                s = frame.slots
                x = s[ai]
                if x is _UNDEF:
                    _undef_fault(a, fn)
                y = s[bi]
                if y is _UNDEF:
                    _undef_fault(b, fn)
                s[d] = kern(x, y)
            return op_ss
        if ka == _K_SLOT and kb == _K_CONST:
            ai, cb = pa, pb

            def op_sc(interp, frame):
                s = frame.slots
                x = s[ai]
                if x is _UNDEF:
                    _undef_fault(a, fn)
                s[d] = kern(x, cb)
            return op_sc
        if ka == _K_CONST and kb == _K_SLOT:
            ca, bi = pa, pb

            def op_cs(interp, frame):
                s = frame.slots
                y = s[bi]
                if y is _UNDEF:
                    _undef_fault(b, fn)
                s[d] = kern(ca, y)
            return op_cs
        ga, gb = self._g(a), self._g(b)

        def op_gg(interp, frame):
            frame.slots[d] = kern(ga(interp, frame), gb(interp, frame))
        return op_gg

    def _compile_load(self, inst: Load) -> Callable:
        d = self._slot(inst)
        ty = inst.type
        size = ty.size
        gp = self._g(inst.pointer)
        if isinstance(ty, IntType):
            signed = ty.signed

            def op_load_i(interp, frame):
                addr = gp(interp, frame)
                if interp.hooks:
                    interp.notify_load(inst, addr, size)
                frame.slots[d] = interp.space.read_int(addr, size, signed)
            return op_load_i
        if isinstance(ty, FloatType):
            def op_load_f(interp, frame):
                addr = gp(interp, frame)
                if interp.hooks:
                    interp.notify_load(inst, addr, size)
                frame.slots[d] = interp.space.read_float(addr, size)
            return op_load_f
        if isinstance(ty, PointerType):
            def op_load_p(interp, frame):
                addr = gp(interp, frame)
                if interp.hooks:
                    interp.notify_load(inst, addr, size)
                frame.slots[d] = interp.space.read_int(addr, 8, signed=False)
            return op_load_p

        def op_load_bad(interp, frame):
            addr = gp(interp, frame)
            if interp.hooks:
                interp.notify_load(inst, addr, size)
            raise GuestFault(f"load of unsupported type {ty}")
        return op_load_bad

    def _compile_store(self, inst: Store) -> Callable:
        ty = inst.value.type
        size = ty.size
        gp = self._g(inst.pointer)
        gv = self._g(inst.value)
        if isinstance(ty, IntType):
            def op_store_i(interp, frame):
                addr = gp(interp, frame)
                value = gv(interp, frame)
                if interp.hooks:
                    interp.notify_store(inst, addr, size)
                interp.space.write_int(addr, int(value), size)
            return op_store_i
        if isinstance(ty, FloatType):
            def op_store_f(interp, frame):
                addr = gp(interp, frame)
                value = gv(interp, frame)
                if interp.hooks:
                    interp.notify_store(inst, addr, size)
                interp.space.write_float(addr, float(value), size)
            return op_store_f
        if isinstance(ty, PointerType):
            def op_store_p(interp, frame):
                addr = gp(interp, frame)
                value = gv(interp, frame)
                if interp.hooks:
                    interp.notify_store(inst, addr, size)
                interp.space.write_int(addr, int(value), 8)
            return op_store_p

        def op_store_bad(interp, frame):
            gp(interp, frame)
            gv(interp, frame)
            if interp.hooks:
                interp.notify_store(inst, gp(interp, frame), size)
            raise GuestFault(f"store of unsupported type {ty}")
        return op_store_bad

    def _compile_ptradd(self, inst: PtrAdd) -> Callable:
        d = self._slot(inst)
        base, off = inst.base, inst.offset
        kb, pb = _classify(base, self.regmap)
        ko, po = _classify(off, self.regmap)
        fn = self.fn
        if kb == _K_SLOT and ko == _K_SLOT:
            bi, oi = pb, po

            def op_pa_ss(interp, frame):
                s = frame.slots
                x = s[bi]
                if x is _UNDEF:
                    _undef_fault(base, fn)
                y = s[oi]
                if y is _UNDEF:
                    _undef_fault(off, fn)
                s[d] = (int(x) + int(y)) & _U64
            return op_pa_ss
        if kb == _K_SLOT and ko == _K_CONST:
            bi, co = pb, int(po) if isinstance(po, (int, float)) else po

            def op_pa_sc(interp, frame):
                s = frame.slots
                x = s[bi]
                if x is _UNDEF:
                    _undef_fault(base, fn)
                s[d] = (int(x) + int(co)) & _U64
            return op_pa_sc
        gb, go = self._g(base), self._g(off)

        def op_pa_gg(interp, frame):
            frame.slots[d] = (int(gb(interp, frame)) +
                              int(go(interp, frame))) & _U64
        return op_pa_gg

    def _cmp_prep(self, inst) -> Tuple[Callable, Optional[int]]:
        """(kernel, mask) for icmp: mask non-None means mask both sides."""
        kern = _CMP_KERNELS[inst.pred]
        ty = inst.lhs.type
        mask: Optional[int] = None
        if isinstance(ty, IntType) and not ty.signed:
            mask = (1 << ty.bits) - 1
        elif isinstance(ty, PointerType):
            mask = _U64
        return kern, mask

    def _compile_icmp(self, inst: ICmp) -> Callable:
        d = self._slot(inst)
        kern, mask = self._cmp_prep(inst)
        a, b = inst.lhs, inst.rhs
        ka, pa = _classify(a, self.regmap)
        kb, pb = _classify(b, self.regmap)
        fn = self.fn
        if mask is None and ka == _K_SLOT and kb == _K_SLOT:
            ai, bi = pa, pb

            def op_ic_ss(interp, frame):
                s = frame.slots
                x = s[ai]
                if x is _UNDEF:
                    _undef_fault(a, fn)
                y = s[bi]
                if y is _UNDEF:
                    _undef_fault(b, fn)
                s[d] = int(kern(int(x), int(y)))
            return op_ic_ss
        if mask is None and ka == _K_SLOT and kb == _K_CONST:
            ai, cb = pa, int(pb)

            def op_ic_sc(interp, frame):
                s = frame.slots
                x = s[ai]
                if x is _UNDEF:
                    _undef_fault(a, fn)
                s[d] = int(kern(int(x), cb))
            return op_ic_sc
        ga, gb = self._g(a), self._g(b)
        if mask is None:
            def op_ic_gg(interp, frame):
                frame.slots[d] = int(kern(int(ga(interp, frame)),
                                          int(gb(interp, frame))))
            return op_ic_gg
        m = mask

        def op_ic_masked(interp, frame):
            frame.slots[d] = int(kern(int(ga(interp, frame)) & m,
                                      int(gb(interp, frame)) & m))
        return op_ic_masked

    def _compile_fcmp(self, inst: FCmp) -> Callable:
        d = self._slot(inst)
        kern = _CMP_KERNELS[inst.pred]
        ga, gb = self._g(inst.lhs), self._g(inst.rhs)

        def op_fc(interp, frame):
            frame.slots[d] = int(kern(float(ga(interp, frame)),
                                      float(gb(interp, frame))))
        return op_fc

    def _compile_cast(self, inst: Cast) -> Callable:
        d = self._slot(inst)
        kern = _cast_kernel(inst)
        v = inst.value
        k, p = _classify(v, self.regmap)
        fn = self.fn
        if k == _K_SLOT:
            vi = p

            def op_cast_s(interp, frame):
                s = frame.slots
                x = s[vi]
                if x is _UNDEF:
                    _undef_fault(v, fn)
                s[d] = kern(x)
            return op_cast_s
        if k == _K_CONST:
            folded = kern(p)

            def op_cast_c(interp, frame):
                frame.slots[d] = folded
            return op_cast_c
        g = self._g(v)

        def op_cast_g(interp, frame):
            frame.slots[d] = kern(g(interp, frame))
        return op_cast_g

    def _compile_select(self, inst: Select) -> Callable:
        d = self._slot(inst)
        gc = self._g(inst.operands[0])
        ga = self._g(inst.operands[1])
        gb = self._g(inst.operands[2])

        def op_select(interp, frame):
            # Lazy arms, mirroring value_of(pick) in the reference path.
            if gc(interp, frame):
                frame.slots[d] = ga(interp, frame)
            else:
                frame.slots[d] = gb(interp, frame)
        return op_select

    def _compile_alloca(self, inst: Alloca) -> Callable:
        d = self._slot(inst)
        elem_size = inst.allocated_type.size
        gcount = self._g(inst.count)
        site = inst.site_id()

        def op_alloca(interp, frame):
            count = int(gcount(interp, frame))
            obj = interp.space.allocate(
                elem_size * count, interp.object_name(inst), "stack",
                STACK_BASE, site=site,
            )
            frame.allocas.append(obj.base)
            interp.notify_alloc(obj, inst)
            frame.slots[d] = obj.base
        return op_alloca

    # -- calls / returns ----------------------------------------------------

    def _compile_call(self, inst: Call, bb: BasicBlock) -> Callable:
        callee = inst.callee
        arg_getters = [self._g(a) for a in inst.args]
        name = callee.name
        site = inst.site_id()
        void = inst.type.is_void()
        coerce = None if void else _coercer(inst.type)
        d = None if void else self._slot(inst)
        # Index of this op within the block (set after list append by the
        # caller via closure over the current length): compute directly.
        first = 0
        for i2 in bb.instructions:
            if not isinstance(i2, Phi):
                break
            first += 1
        self_index = bb.instructions.index(inst)
        # Cost/step roll-back amounts for a frame push, filled lazily on
        # first use because the suffix table exists only after _finish.
        bcode = self.blocks[bb]
        op_pos = self_index - first

        def op_call(interp, frame):
            args = [g(interp, frame) for g in arg_getters]
            if interp.hooks:
                for h in interp.hooks:
                    h.on_call(interp, inst, callee)
            if (not callee.blocks) or callee.is_intrinsic:
                impl = interp.intrinsics.get(name)
                if impl is None:
                    raise GuestFault(f"call to unresolved external @{name}")
                interp.cycles += intrinsic_cost(name, args)
                result = impl(interp, inst, args)
                if not void:
                    frame.slots[d] = coerce(result)
                return None
            # Defined call: suspend this block — roll back the bulk-added
            # cost/steps of the not-yet-executed tail so totals stay exact
            # at every frame boundary.
            frame.index = self_index
            interp.cycles -= bcode.suffix[op_pos + 1]
            interp.steps -= bcode.nops - op_pos - 1
            interp.call_context.append(site)
            interp.push_function(callee, args, call_inst=inst)
            return _PUSHED
        return op_call

    def _compile_ret(self, inst: Ret) -> Callable:
        gv = self._g(inst.value) if inst.value is not None else None

        def op_ret(interp, frame):
            value = gv(interp, frame) if gv is not None else None
            for addr in reversed(frame.allocas):
                obj = interp.space.free(addr)
                interp.notify_free(obj, inst)
            interp.frames.pop()
            for h in interp.hooks:
                h.on_return(interp, frame.function)
            call_inst = frame.call_inst
            if call_inst is not None:
                interp.call_context.pop()
            if not interp.frames:
                interp._fast_result = value
                return _DONE
            if call_inst is not None:
                caller = interp.frames[-1]
                if not call_inst.type.is_void():
                    caller.regs[call_inst] = value
                caller.index += 1
            return _POPPED
        return op_ret

    # -- control transfers ----------------------------------------------------

    def _compile_edge(self, src: BasicBlock, target: BasicBlock) -> Callable:
        """Edge transition closure: phi moves (atomic), then block/index
        update.  Returns the target's BlockCode."""
        tcode = self.blocks[target]
        first = tcode.first
        moves: List[Tuple[int, Callable]] = []
        for inst in target.instructions[:first]:
            assert isinstance(inst, Phi)
            moves.append((self.regmap[inst],
                          self._g(inst.incoming_for(src))))
        if not moves:
            def edge0(interp, frame):
                frame.prev_block = src
                frame.block = target
                frame.index = first
                return tcode
            return edge0
        if len(moves) == 1:
            d0, g0 = moves[0]

            def edge1(interp, frame):
                v = g0(interp, frame)
                frame.slots[d0] = v
                frame.prev_block = src
                frame.block = target
                frame.index = first
                return tcode
            return edge1

        def edge_n(interp, frame):
            vals = [g(interp, frame) for _, g in moves]
            s = frame.slots
            for (dst, _), v in zip(moves, vals):
                s[dst] = v
            frame.prev_block = src
            frame.block = target
            frame.index = first
            return tcode
        return edge_n

    def _compile_br(self, inst: Br, bb: BasicBlock) -> Callable:
        target = inst.target
        edge = self._compile_edge(bb, target)

        def op_br(interp, frame):
            if interp.hooks:
                for h in interp.hooks:
                    h.on_branch(interp, inst, target)
            if target in interp.block_breakpoints:
                raise BlockBreakpoint(frame, target, frame.block)
            return edge(interp, frame)
        return op_br

    def _compile_condbr(self, inst: CondBr, bb: BasicBlock) -> Callable:
        t_true, t_false = inst.if_true, inst.if_false
        edge_true = self._compile_edge(bb, t_true)
        edge_false = self._compile_edge(bb, t_false)
        cond = inst.cond
        k, p = _classify(cond, self.regmap)
        fn = self.fn
        if k == _K_SLOT:
            ci = p

            def op_cbr(interp, frame):
                c = frame.slots[ci]
                if c is _UNDEF:
                    _undef_fault(cond, fn)
                if c:
                    target, edge = t_true, edge_true
                else:
                    target, edge = t_false, edge_false
                if interp.hooks:
                    for h in interp.hooks:
                        h.on_branch(interp, inst, target)
                if target in interp.block_breakpoints:
                    raise BlockBreakpoint(frame, target, frame.block)
                return edge(interp, frame)
            return op_cbr
        gc = self._g(cond)

        def op_cbr_g(interp, frame):
            if gc(interp, frame):
                target, edge = t_true, edge_true
            else:
                target, edge = t_false, edge_false
            if interp.hooks:
                for h in interp.hooks:
                    h.on_branch(interp, inst, target)
            if target in interp.block_breakpoints:
                raise BlockBreakpoint(frame, target, frame.block)
            return edge(interp, frame)
        return op_cbr_g


# ---------------------------------------------------------------------------
# The fast dispatch loop
# ---------------------------------------------------------------------------


def run_fast(interp):
    """Run the interpreter's frame stack on the compiled path until the
    stack drains (returns the program's return value), a
    :class:`BlockBreakpoint` fires, or a guest exception propagates.

    Semantics contract with :meth:`Interpreter.step`: identical cycle and
    step totals at every block boundary, hook event, and raised
    exception; identical hook ordering; identical ``GuestTimeout``
    trigger point (near the budget it falls back to exact per-instruction
    stepping).
    """
    frames = interp.frames
    if not frames:
        return None
    interp._fast_result = None
    max_steps = interp.max_steps
    frame = frames[-1]
    bcode = interp._block_code(frame)
    while True:
        i = frame.index - bcode.first
        n = bcode.nops
        if i < 0 or interp.steps + (n - i) > max_steps:
            # Rare tails: a frame parked on a phi index (reference raises
            # the phi fault) or within one block of the step budget
            # (exact per-instruction accounting decides the timeout
            # point).  Delegate to the reference path one step at a time.
            result = interp.step()
            if not frames:
                return result
            frame = frames[-1]
            bcode = interp._block_code(frame)
            continue
        interp.steps += n - i
        interp.cycles += bcode.suffix[i]
        ops = bcode.ops
        try:
            r = ops[i](interp, frame)
            while r is None:
                i += 1
                r = ops[i](interp, frame)
        except BaseException:
            # Keep the cost/step of the faulting instruction (the
            # reference adds both before executing), drop the unexecuted
            # tail, and leave the frame parked on the faulting
            # instruction.
            frame.index = bcode.first + i
            interp.cycles -= bcode.suffix[i + 1]
            interp.steps -= n - i - 1
            raise
        if type(r) is BlockCode:
            bcode = r
            continue
        if r is _PUSHED or r is _POPPED:
            frame = frames[-1]
            bcode = interp._block_code(frame)
            continue
        return interp._fast_result  # _DONE
