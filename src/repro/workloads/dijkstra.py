"""dijkstra (MiBench) — the paper's motivating example (Figure 2).

The hot loop runs Dijkstra's algorithm from successive source vertices.
Two data structures are reused across iterations and serialize the loop
with false dependences: the linked-list work queue ``Q`` (whose nodes are
heap-allocated per iteration — short-lived) and the ``pathcost`` table
(private).  The adjacency matrix is read-only.  Value prediction asserts
the queue is empty at iteration boundaries; the never-taken queue-
underflow path is removed by control speculation; per-iteration results
are printed, so output is deferred through the checkpoint system —
matching the paper's "Value, Control, I/O" extras for this program.

``main(n, m, seed)``: ``n`` source iterations over an ``m``-vertex graph.
"""

from __future__ import annotations

from .base import PaperExpectations, Workload

SOURCE = """
struct node { int vx; struct node* next; };
struct queue { struct node* head; struct node* tail; };

struct queue Q;
int pathcost[32];
int results[128];
int adj[32][32];

void enqueueQ(int v) {
    struct node* n = (struct node*)malloc(sizeof(struct node));
    n->vx = v;
    n->next = Q.head;
    Q.head = n;
    if (Q.tail == 0) { Q.tail = n; }
}

int emptyQ() { return Q.head == 0; }

int dequeueQ() {
    struct node* kill = Q.head;
    if (kill == 0) {
        /* Queue underflow: never taken, removed by control speculation. */
        printf("queue underflow!\\n");
        return -1;
    }
    int v = kill->vx;
    Q.head = kill->next;
    if (Q.head == 0) { Q.tail = 0; }
    free(kill);
    return v;
}

int main(int n, int m, long seed) {
    rand_seed(seed);
    for (int i = 0; i < m; i++) {
        for (int j = 0; j < m; j++) {
            adj[i][j] = 1 + rand_int() % 16;
        }
    }
    for (int src = 0; src < n; src++) {
        int s = src % m;
        for (int i = 0; i < m; i++) { pathcost[i] = 1000000; }
        pathcost[s] = 0;
        enqueueQ(s);
        while (!emptyQ()) {
            int v = dequeueQ();
            int d = pathcost[v];
            for (int i = 0; i < m; i++) {
                int ncost = adj[v][i] + d;
                if (pathcost[i] > ncost) {
                    pathcost[i] = ncost;
                    enqueueQ(i);
                }
            }
        }
        results[src] = pathcost[m - 1 - s];
        printf("path %d->%d cost %d\\n", s, m - 1 - s, results[src]);
    }
    long totalcost = 0;
    for (int src = 0; src < n; src++) { totalcost = totalcost + results[src]; }
    printf("total %ld\\n", totalcost);
    return 0;
}
"""

WORKLOAD = Workload(
    name="dijkstra",
    suite="MiBench",
    description="All-sources shortest paths over a reused linked-list "
                "work queue and path-cost table",
    source=SOURCE,
    train=(24, 16, 7),
    ref=(96, 24, 13),
    alt=(40, 20, 99),
    expectations=PaperExpectations(
        heaps={"private": True, "short_lived": True, "read_only": True,
               "redux": False, "unrestricted": False},
        extras=("Value", "Control", "I/O"),
        invocations_many=False,
        reads_dominate_writes=True,
    ),
)
