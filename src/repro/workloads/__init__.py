"""The five evaluated programs (paper §6, Table 3), expressed in MiniC
with deterministic synthetic inputs."""

from typing import Dict, List

from .alvinn import WORKLOAD as ALVINN
from .base import PaperExpectations, Workload
from .blackscholes import WORKLOAD as BLACKSCHOLES
from .dijkstra import WORKLOAD as DIJKSTRA
from .enc_md5 import WORKLOAD as ENC_MD5, reference_digests
from .swaptions import WORKLOAD as SWAPTIONS

ALL_WORKLOADS: List[Workload] = [
    ALVINN, DIJKSTRA, BLACKSCHOLES, SWAPTIONS, ENC_MD5,
]

BY_NAME: Dict[str, Workload] = {w.name: w for w in ALL_WORKLOADS}

__all__ = [
    "ALL_WORKLOADS", "ALVINN", "BLACKSCHOLES", "BY_NAME", "DIJKSTRA",
    "ENC_MD5", "PaperExpectations", "SWAPTIONS", "Workload",
    "reference_digests",
]
