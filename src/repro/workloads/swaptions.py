"""swaptions (PARSEC, simplified HJM kernel) — swaption pricing.

Each outer-loop iteration prices one swaption by simulating forward-rate
paths.  The simulation allocates linked matrix structures (an array of
row pointers) and several vectors per iteration — the paper reports 15
short-lived objects — and reuses persistent scratch buffers across
iterations (private).  LRPD-family techniques are inapplicable because of
the linked matrix data structures; static analysis cannot prove the loop
parallel (Figure 7: DOALL-only does nothing here).

``main(n, steps, seed)``: price ``n`` swaptions with ``steps``-row paths.
"""

from __future__ import annotations

from .base import PaperExpectations, Workload

SOURCE = """
double maturity[128];
double tenor[128];
double strikes[128];
double results[128];
double* scratch_rates;
double* scratch_disc;
int NFACTORS;

void initSwaptions(int n, long seed) {
    rand_seed(seed);
    NFACTORS = 8;
    scratch_rates = (double*)malloc(NFACTORS * sizeof(double));
    scratch_disc = (double*)malloc(NFACTORS * sizeof(double));
    for (int i = 0; i < n; i++) {
        maturity[i] = 1.0 + (rand_int() % 9);
        tenor[i] = 0.5 + 0.5 * (rand_int() % 6);
        strikes[i] = 0.02 + 0.001 * (rand_int() % 40);
    }
}

double simOneSwaption(int idx, int steps) {
    int nf = NFACTORS;
    /* Linked matrix: an array of row pointers, one row per time step.
       All of this storage lives for exactly one outer iteration. */
    double** paths = (double**)malloc(steps * sizeof(double*));
    double* drift = (double*)malloc(nf * sizeof(double));
    double* vols = (double*)malloc(nf * sizeof(double));
    double* payoff = (double*)malloc(steps * sizeof(double));

    double x = 0.01 * (idx + 1);
    for (int f = 0; f < nf; f++) {
        drift[f] = 0.001 * (f + 1) + 0.0001 * idx;
        vols[f] = 0.01 + 0.002 * f;
        scratch_rates[f] = strikes[idx];
        scratch_disc[f] = 1.0;
    }
    for (int t = 0; t < steps; t++) {
        paths[t] = (double*)malloc(nf * sizeof(double));
        double shock = sin(x * (t + 1)) * 0.001;
        for (int f = 0; f < nf; f++) {
            scratch_rates[f] = scratch_rates[f] + drift[f] * 0.1 + vols[f] * shock;
            scratch_disc[f] = scratch_disc[f] / (1.0 + scratch_rates[f] * 0.1);
            paths[t][f] = scratch_rates[f];
        }
        double swaprate = 0.0;
        for (int f = 0; f < nf; f++) { swaprate = swaprate + paths[t][f]; }
        swaprate = swaprate / nf;
        double gain = swaprate - strikes[idx] * (1.0 + 0.01 * tenor[idx]);
        if (gain < 0.0) { gain = 0.0; }
        payoff[t] = gain * scratch_disc[0] * maturity[idx];
    }
    double price = 0.0;
    for (int t = 0; t < steps; t++) { price = price + payoff[t]; }
    price = price / steps;

    for (int t = 0; t < steps; t++) { free(paths[t]); }
    free(paths);
    free(drift);
    free(vols);
    free(payoff);
    return price;
}

int main(int n, int steps, long seed) {
    initSwaptions(n, seed);
    for (int i = 0; i < n; i++) {
        results[i] = simOneSwaption(i, steps);
    }
    double sum = 0.0;
    for (int i = 0; i < n; i++) { sum = sum + results[i]; }
    printf("swaption sum %.8f\\n", sum);
    return 0;
}
"""

WORKLOAD = Workload(
    name="swaptions",
    suite="PARSEC",
    description="HJM-style swaption pricing with per-iteration linked "
                "matrices and reused scratch vectors",
    source=SOURCE,
    train=(16, 12, 3),
    ref=(96, 24, 21),
    alt=(24, 16, 55),
    expectations=PaperExpectations(
        heaps={"private": True, "short_lived": True, "read_only": True,
               "redux": False, "unrestricted": False},
        extras=(),
        invocations_many=False,
        reads_dominate_writes=True,
    ),
)
