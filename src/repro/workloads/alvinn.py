"""052.alvinn (SPEC) — neural-network training (backpropagation).

The hot loop iterates over training patterns inside an epoch loop, so the
parallel region is invoked once per epoch (the paper reports 200
invocations).  Per-pattern activation/error arrays are stack-allocated in
``main`` and indexed through pointer arithmetic in callees — the four
stack arrays the paper privatizes.  Weight-delta matrices and the total
error are genuine associative reductions (the paper: two global arrays
and a scalar).  The weight matrices themselves are only read inside the
region.

``main(patterns, epochs, seed)``.
"""

from __future__ import annotations

from .base import PaperExpectations, Workload

SOURCE = """
double w_ih[24][8];
double w_ho[8][4];
double d_ih[24][8];
double d_ho[8][4];
double inputs[64][24];
double targets[64][4];
double total_err;

double squash(double x) {
    /* fast sigmoid-like squashing */
    if (x < 0.0) { return -x / (1.0 - x) + 1.0; }
    return x / (1.0 + x);
}

void forward(double* in, double* hid, double* out) {
    for (int h = 0; h < 8; h++) {
        double sum = 0.0;
        for (int i = 0; i < 24; i++) { sum = sum + in[i] * w_ih[i][h]; }
        hid[h] = squash(sum);
    }
    for (int o = 0; o < 4; o++) {
        double sum = 0.0;
        for (int h = 0; h < 8; h++) { sum = sum + hid[h] * w_ho[h][o]; }
        out[o] = squash(sum);
    }
}

void backward(double* in, double* hid, double* out,
              double* target, double* herr, double* oerr) {
    for (int o = 0; o < 4; o++) {
        double err = target[o] - out[o];
        oerr[o] = err * out[o] * (1.0 - out[o]);
        total_err += err * err;
    }
    for (int h = 0; h < 8; h++) {
        double sum = 0.0;
        for (int o = 0; o < 4; o++) { sum = sum + oerr[o] * w_ho[h][o]; }
        herr[h] = sum * hid[h] * (1.0 - hid[h]);
    }
    for (int h = 0; h < 8; h++) {
        for (int o = 0; o < 4; o++) { d_ho[h][o] += oerr[o] * hid[h]; }
    }
    for (int i = 0; i < 24; i++) {
        for (int h = 0; h < 8; h++) { d_ih[i][h] += herr[h] * in[i]; }
    }
}

int main(int patterns, int epochs, long seed) {
    double hidden[8];
    double output[4];
    double herr[8];
    double oerr[4];
    rand_seed(seed);
    for (int i = 0; i < 24; i++) {
        for (int h = 0; h < 8; h++) {
            w_ih[i][h] = 0.001 * (rand_int() % 200) - 0.1;
        }
    }
    for (int h = 0; h < 8; h++) {
        for (int o = 0; o < 4; o++) {
            w_ho[h][o] = 0.001 * (rand_int() % 200) - 0.1;
        }
    }
    for (int p = 0; p < patterns; p++) {
        for (int i = 0; i < 24; i++) {
            inputs[p][i] = 0.01 * (rand_int() % 100);
        }
        for (int o = 0; o < 4; o++) {
            targets[p][o] = 0.1 + 0.2 * (rand_int() % 4);
        }
    }
    for (int e = 0; e < epochs; e++) {
        for (int p = 0; p < patterns; p++) {
            forward(inputs[p], hidden, output);
            backward(inputs[p], hidden, output, targets[p], herr, oerr);
        }
        /* Apply and clear the accumulated deltas (outside the region). */
        for (int i = 0; i < 24; i++) {
            for (int h = 0; h < 8; h++) {
                w_ih[i][h] += 0.01 * d_ih[i][h];
                d_ih[i][h] = 0.0;
            }
        }
        for (int h = 0; h < 8; h++) {
            for (int o = 0; o < 4; o++) {
                w_ho[h][o] += 0.01 * d_ho[h][o];
                d_ho[h][o] = 0.0;
            }
        }
    }
    printf("total error %.6f\\n", total_err);
    return 0;
}
"""

WORKLOAD = Workload(
    name="alvinn",
    suite="SPEC (052.alvinn)",
    description="Batch backpropagation; per-pattern stack arrays are "
                "privatized and weight deltas are reductions",
    source=SOURCE,
    train=(16, 6, 9),
    ref=(48, 10, 17),
    alt=(24, 8, 31),
    expectations=PaperExpectations(
        heaps={"private": True, "short_lived": False, "read_only": True,
               "redux": True, "unrestricted": False},
        extras=(),
        invocations_many=True,
        reads_dominate_writes=True,
    ),
)
