"""blackscholes (PARSEC) — option pricing.

The inner loop over options is embarrassingly parallel, and that is all
the non-speculative baseline can prove (Figure 7).  The *outer* loop
(repeated pricing runs) carries output dependences on the ``prices``
array, which is allocated in a different function and reached through a
pointer — beyond array-based privatization schemes.  Privateer classifies
it private, enabling the hotter outer loop and a single spawn/join.

``main(n, runs, seed)``: ``runs`` pricing sweeps over ``n`` options.
"""

from __future__ import annotations

from .base import PaperExpectations, Workload

SOURCE = """
double sptprice[128];
double strike[128];
double rate[128];
double volatility[128];
double otime[128];
int otype[128];
double* prices;
int numOptions;

double CNDF(double x) {
    int sign = 0;
    if (x < 0.0) { x = -x; sign = 1; }
    double expv = exp(-0.5 * x * x);
    double nprime = 0.39894228040143270286 * expv;
    double k = 1.0 / (1.0 + 0.2316419 * x);
    double k2 = k * k;
    double k4 = k2 * k2;
    double poly = 0.319381530 * k - 0.356563782 * k2
                + 1.781477937 * k2 * k - 1.821255978 * k4
                + 1.330274429 * k4 * k;
    double cnd = 1.0 - nprime * poly;
    if (sign) { cnd = 1.0 - cnd; }
    return cnd;
}

double BlkSchlsEqEuroNoDiv(double spt, double str, double r,
                           double vol, double t, int call) {
    double sqrtt = sqrt(t);
    double d1 = (log(spt / str) + (r + 0.5 * vol * vol) * t) / (vol * sqrtt);
    double d2 = d1 - vol * sqrtt;
    double nd1 = CNDF(d1);
    double nd2 = CNDF(d2);
    double fut = str * exp(-r * t);
    double price;
    if (call) {
        price = spt * nd1 - fut * nd2;
    } else {
        price = fut * (1.0 - nd2) - spt * (1.0 - nd1);
    }
    return price;
}

void initOptions(int n, long seed) {
    rand_seed(seed);
    numOptions = n;
    prices = (double*)malloc(n * sizeof(double));
    for (int i = 0; i < n; i++) {
        sptprice[i] = 20.0 + (rand_int() % 8000) * 0.01;
        strike[i] = 20.0 + (rand_int() % 8000) * 0.01;
        rate[i] = 0.01 + (rand_int() % 9) * 0.005;
        volatility[i] = 0.05 + (rand_int() % 60) * 0.01;
        otime[i] = 0.1 + (rand_int() % 40) * 0.1;
        otype[i] = rand_int() % 2;
    }
}

int main(int n, int runs, long seed) {
    initOptions(n, seed);
    int count = numOptions;
    for (int run = 0; run < runs; run++) {
        for (int i = 0; i < count; i++) {
            prices[i] = BlkSchlsEqEuroNoDiv(sptprice[i], strike[i], rate[i],
                                            volatility[i], otime[i], otype[i]);
        }
    }
    double checksum = 0.0;
    for (int i = 0; i < count; i++) { checksum = checksum + prices[i]; }
    printf("checksum %.6f\\n", checksum);
    return 0;
}
"""

WORKLOAD = Workload(
    name="blackscholes",
    suite="PARSEC",
    description="Black-Scholes option pricing; the pricing array is "
                "allocated in another function and reused each run",
    source=SOURCE,
    train=(24, 20, 11),
    ref=(96, 48, 5),
    alt=(32, 30, 77),
    expectations=PaperExpectations(
        heaps={"private": True, "short_lived": False, "read_only": True,
               "redux": False, "unrestricted": False},
        extras=(),
        invocations_many=False,
        reads_dominate_writes=False,  # paper: 0 B private reads, 4 GB writes
    ),
)
