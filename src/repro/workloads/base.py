"""Workload descriptors for the five evaluated programs (Table 3).

Each workload carries its MiniC source and three input sets: *train*
(used by the profilers), *ref* (used for all performance measurements),
and *alt* (used only to check that the analysis is stable with respect to
profile input, §6).  Inputs are parameters of ``main`` plus a PRNG seed;
all data is generated deterministically inside the guest.

Input sizes are scaled down from the paper's native runs (which execute
minutes of real silicon) to interpreter scale; DESIGN.md documents the
substitution.  What is preserved: the *reuse patterns* that create the
false dependences Privateer targets, the heap-assignment shape, and the
iteration counts needed for 24-worker scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class PaperExpectations:
    """What Table 3 / §6.1 report for this program — used by tests and the
    Table 3 bench to compare shapes."""

    heaps: Dict[str, bool] = field(default_factory=dict)  # heap -> populated?
    extras: Tuple[str, ...] = ()
    invocations_many: bool = False  # >1 parallel-region invocation?
    reads_dominate_writes: Optional[bool] = None


@dataclass
class Workload:
    """One evaluated program: MiniC source plus train/ref/alt input
    tuples and its paper expectations (Table 3).
    """
    name: str
    suite: str
    description: str
    source: str
    train: Tuple[object, ...]
    ref: Tuple[object, ...]
    alt: Tuple[object, ...]
    expectations: PaperExpectations = field(default_factory=PaperExpectations)

    def prepare(self, use_ref: bool = True, **kwargs):
        """Profile on train, evaluate on ref (or train when
        ``use_ref=False`` for quick tests)."""
        from ..bench.pipeline import prepare

        ref_args = self.ref if use_ref else self.train
        return prepare(self.source, self.name, args=self.train,
                       ref_args=ref_args, **kwargs)

    def prepare_small(self, **kwargs):
        """Train-sized everything: fast path for unit tests."""
        return self.prepare(use_ref=False, **kwargs)
