"""enc-md5 (Trimaran) — MD5 message digests of many data sets.

A full, bit-exact MD5 implementation in MiniC (the K table is derived
from ``sin`` exactly as in RFC 1321; tests check digests against Python's
``hashlib``).  Parallelization of the outer loop is limited by false
dependences on the reused MD5 state object and digest buffer (private),
plus the per-iteration message buffer (short-lived) and the calls to
``printf`` (deferred through the checkpoint system) — the paper's
"Control, I/O" extras.

``main(nmsgs, msglen, seed)``.
"""

from __future__ import annotations

from .base import PaperExpectations, Workload

SOURCE = """
struct md5state { unsigned a; unsigned b; unsigned c; unsigned d; };

struct md5state ST;
unsigned char digest[16];
unsigned K[64];
int S[64];

unsigned rotl(unsigned x, int s) {
    return (x << s) | (x >> (32 - s));
}

void md5_tables() {
    for (int i = 0; i < 64; i++) {
        double v = sin(i + 1.0);
        K[i] = (unsigned)(fabs(v) * 4294967296.0);
    }
    for (int i = 0; i < 16; i++) {
        int r = i % 4;
        if (r == 0) { S[i] = 7; }
        if (r == 1) { S[i] = 12; }
        if (r == 2) { S[i] = 17; }
        if (r == 3) { S[i] = 22; }
    }
    for (int i = 16; i < 32; i++) {
        int r = i % 4;
        if (r == 0) { S[i] = 5; }
        if (r == 1) { S[i] = 9; }
        if (r == 2) { S[i] = 14; }
        if (r == 3) { S[i] = 20; }
    }
    for (int i = 32; i < 48; i++) {
        int r = i % 4;
        if (r == 0) { S[i] = 4; }
        if (r == 1) { S[i] = 11; }
        if (r == 2) { S[i] = 16; }
        if (r == 3) { S[i] = 23; }
    }
    for (int i = 48; i < 64; i++) {
        int r = i % 4;
        if (r == 0) { S[i] = 6; }
        if (r == 1) { S[i] = 10; }
        if (r == 2) { S[i] = 15; }
        if (r == 3) { S[i] = 21; }
    }
}

void md5_init() {
    ST.a = 0x67452301;
    ST.b = 0xefcdab89;
    ST.c = 0x98badcfe;
    ST.d = 0x10325476;
}

void md5_block(unsigned char* p) {
    unsigned M[16];
    for (int j = 0; j < 16; j++) {
        M[j] = (unsigned)p[4 * j]
             | ((unsigned)p[4 * j + 1] << 8)
             | ((unsigned)p[4 * j + 2] << 16)
             | ((unsigned)p[4 * j + 3] << 24);
    }
    unsigned a = ST.a;
    unsigned b = ST.b;
    unsigned c = ST.c;
    unsigned d = ST.d;
    for (int i = 0; i < 64; i++) {
        unsigned f;
        int g;
        if (i < 16) {
            f = (b & c) | (~b & d);
            g = i;
        } else if (i < 32) {
            f = (d & b) | (~d & c);
            g = (5 * i + 1) % 16;
        } else if (i < 48) {
            f = b ^ c ^ d;
            g = (3 * i + 5) % 16;
        } else {
            f = c ^ (b | ~d);
            g = (7 * i) % 16;
        }
        unsigned tmp = d;
        d = c;
        c = b;
        b = b + rotl(a + f + K[i] + M[g], S[i]);
        a = tmp;
    }
    ST.a = ST.a + a;
    ST.b = ST.b + b;
    ST.c = ST.c + c;
    ST.d = ST.d + d;
}

void md5_digest(unsigned char* msg, int len) {
    md5_init();
    int padded = ((len + 8) / 64 + 1) * 64;
    msg[len] = 0x80;
    for (int j = len + 1; j < padded - 8; j++) { msg[j] = 0; }
    long bits = (long)len * 8;
    for (int j = 0; j < 8; j++) {
        msg[padded - 8 + j] = (unsigned char)((bits >> (8 * j)) & 255);
    }
    for (int off = 0; off < padded; off += 64) {
        md5_block(msg + off);
    }
    for (int j = 0; j < 4; j++) {
        digest[j] = (unsigned char)((ST.a >> (8 * j)) & 255);
        digest[4 + j] = (unsigned char)((ST.b >> (8 * j)) & 255);
        digest[8 + j] = (unsigned char)((ST.c >> (8 * j)) & 255);
        digest[12 + j] = (unsigned char)((ST.d >> (8 * j)) & 255);
    }
}

int main(int nmsgs, int msglen, long seed) {
    md5_tables();
    for (int m = 0; m < nmsgs; m++) {
        unsigned char* msg = (unsigned char*)malloc(msglen + 72);
        unsigned x = (unsigned)seed + 2654435761 * (m + 1);
        for (int j = 0; j < msglen; j++) {
            x = x * 1664525 + 1013904223;
            msg[j] = (unsigned char)(x >> 24);
        }
        md5_digest(msg, msglen);
        for (int j = 0; j < 16; j++) { printf("%02x", digest[j]); }
        printf("\\n");
        free(msg);
    }
    return 0;
}
"""

WORKLOAD = Workload(
    name="enc_md5",
    suite="Trimaran (enc-md5)",
    description="MD5 digests of many deterministic messages through a "
                "reused state object and digest buffer",
    source=SOURCE,
    train=(16, 96, 2),
    ref=(96, 120, 6),
    alt=(24, 64, 44),
    expectations=PaperExpectations(
        heaps={"private": True, "short_lived": True, "read_only": True,
               "redux": False, "unrestricted": False},
        extras=("I/O",),
        invocations_many=False,
        reads_dominate_writes=False,
    ),
)


def reference_digests(nmsgs: int, msglen: int, seed: int):
    """hashlib-computed digests for the exact guest messages — used by
    tests to prove the MiniC MD5 is bit-exact."""
    import hashlib

    out = []
    for m in range(nmsgs):
        x = (seed + 2654435761 * (m + 1)) & 0xFFFFFFFF
        data = bytearray()
        for _ in range(msglen):
            x = (x * 1664525 + 1013904223) & 0xFFFFFFFF
            data.append(x >> 24)
        out.append(hashlib.md5(bytes(data)).hexdigest())
    return out
