"""Loop selection (§4.3): which profiled loops can be speculatively
privatized and DOALL-parallelized, and which compatible subset to pick.

A loop is transformable when, after refining dependences with the heap
assignment (separated heaps; private/short-lived/reduction heaps carry no
loop-carried dependences) plus value prediction, control speculation, and
I/O deferral, the only remaining loop-carried state is the canonical
induction variable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.callgraph import CallGraph
from ..analysis.loops import InductionVariable, Loop, LoopInfo
from ..classify.classifier import HeapAssignment
from ..classify.heaps import HeapKind
from ..ir.instructions import Call, Instruction, Load, Phi, Store
from ..ir.module import Function, Module
from ..profiling.data import LoopProfile, LoopRef
from ..profiling.looptracker import LoopInfoCache
from .plan import SelectionError


def region_functions(module: Module, fn: Function, loop: Loop) -> List[Function]:
    """The functions whose code can execute inside the parallel region."""
    cg = CallGraph(module)
    out: List[Function] = []
    seen: Set[Function] = set()
    for bb in sorted(loop.blocks, key=lambda b: b.name):
        for inst in bb.instructions:
            if isinstance(inst, Call):
                for callee in [inst.callee, *cg.transitive_callees(inst.callee)]:
                    if callee not in seen and not callee.is_declaration:
                        seen.add(callee)
                        out.append(callee)
    return out


def check_transformable(
    module: Module,
    ref: LoopRef,
    profile: LoopProfile,
    assignment: HeapAssignment,
    cache: Optional[LoopInfoCache] = None,
) -> Tuple[Loop, InductionVariable, List[str]]:
    """Collect every reason the loop cannot be parallelized (empty list
    means transformable).  Returns the loop and its IV when found."""
    reasons: List[str] = []
    cache = cache or LoopInfoCache(module)
    fn = module.function_named(ref.function)
    info = cache.info(fn)
    loop = info.loop_with_header(ref.header)

    iv = info.find_induction_variable(loop)
    if iv is None:
        reasons.append("no canonical induction variable")

    # Only the IV may be loop-carried in registers.
    extra_phis = [
        p for p in loop.header.instructions
        if isinstance(p, Phi) and (iv is None or p is not iv.phi)
    ]
    if extra_phis:
        reasons.append(
            "scalar loop-carried values: "
            + ", ".join(p.short() for p in extra_phis)
        )

    # No SSA value defined in the loop may be used outside it (no live-outs).
    loop_insts = {inst for bb in loop.blocks for inst in bb.instructions}
    for bb in fn.blocks:
        if bb in loop.blocks:
            continue
        for inst in bb.instructions:
            for op in inst.operands:
                if isinstance(op, Instruction) and op in loop_insts:
                    reasons.append(f"loop live-out value {op.short()}")

    # Single exit, through the header.
    for bb in loop.blocks:
        for succ in bb.successors():
            if succ not in loop.blocks and bb is not loop.header:
                reasons.append(f"side exit from block {bb.name}")

    # Unrestricted objects carry irremovable cross-iteration flow deps.
    unrestricted = assignment.unrestricted_sites
    if unrestricted:
        reasons.append(
            "unrestricted objects: " + ", ".join(sorted(unrestricted))
        )

    # Each access and free site must target a single logical heap, or the
    # separation check has no single expected tag.
    for site, objs in profile.pointer_objects.items():
        kinds = {assignment.site_heaps.get(o) for o in objs}
        kinds.discard(None)
        if len(kinds) > 1:
            reasons.append(
                f"access {site} touches multiple heaps: "
                + ", ".join(sorted(str(k) for k in kinds))
            )

    # exit() would escape the speculative world; the PRNG carries hidden
    # loop-carried state no heap assignment can privatize.
    for g in [fn, *region_functions(module, fn, loop)]:
        for inst in g.instructions():
            if isinstance(inst, Call) and inst.callee.name in (
                "exit", "rand_int", "rand_seed"
            ):
                if g is not fn or inst.parent in loop.blocks:
                    reasons.append(
                        f"call to {inst.callee.name}() in region ({g.name})")

    return loop, iv, reasons  # type: ignore[return-value]


def loops_may_be_simultaneously_active(
    module: Module, a_ref: LoopRef, a_loop: Loop, b_ref: LoopRef, b_loop: Loop
) -> bool:
    """Two loops are incompatible if one can be active while the other
    runs: same loop nest, or one's region can invoke the other's function."""
    if a_ref.function == b_ref.function:
        if a_loop.contains_loop(b_loop) or b_loop.contains_loop(a_loop):
            return True
    fa = module.function_named(a_ref.function)
    fb = module.function_named(b_ref.function)
    a_region = set(region_functions(module, fa, a_loop))
    b_region = set(region_functions(module, fb, b_loop))
    return fb in a_region or fa in b_region


def heaps_compatible(a: HeapAssignment, b: HeapAssignment) -> bool:
    """Two loops are incompatible if an object is assigned to different
    heaps for each loop (§4.3)."""
    for site, kind in a.site_heaps.items():
        other = b.site_heaps.get(site)
        if other is not None and other is not kind:
            return False
    return True


def select_loops(
    module: Module,
    candidates: List[Tuple[LoopRef, int, LoopProfile, HeapAssignment]],
) -> List[Tuple[LoopRef, LoopProfile, HeapAssignment]]:
    """Greedy selection by execution time subject to the compatibility
    constraints; mirrors §4.3's 'largest set of parallelizable loops'."""
    cache = LoopInfoCache(module)
    selected: List[Tuple[LoopRef, LoopProfile, HeapAssignment, Loop]] = []
    for ref, _cycles, profile, assignment in sorted(
        candidates, key=lambda c: c[1], reverse=True
    ):
        loop, iv, reasons = check_transformable(module, ref, profile, assignment, cache)
        if reasons:
            continue
        compatible = True
        for other_ref, _p, other_assignment, other_loop in selected:
            if loops_may_be_simultaneously_active(module, ref, loop,
                                                  other_ref, other_loop):
                compatible = False
                break
            if not heaps_compatible(assignment, other_assignment):
                compatible = False
                break
        if compatible:
            selected.append((ref, profile, assignment, loop))
    return [(r, p, a) for r, p, a, _l in selected]
