"""The Privateer analysis and transformation (§4)."""

from .plan import (
    DEFAULT_CHECKPOINT_PERIOD,
    MAX_CHECKPOINT_PERIOD,
    CheckCounts,
    ParallelPlan,
    ReduxObjectPlan,
    SelectionError,
)
from .privatize import PrivateerTransform, transform_loop
from .selection import (
    check_transformable,
    heaps_compatible,
    loops_may_be_simultaneously_active,
    region_functions,
    select_loops,
)

__all__ = [
    "CheckCounts", "DEFAULT_CHECKPOINT_PERIOD", "MAX_CHECKPOINT_PERIOD",
    "ParallelPlan", "PrivateerTransform", "ReduxObjectPlan",
    "SelectionError", "check_transformable", "heaps_compatible",
    "loops_may_be_simultaneously_active", "region_functions", "select_loops",
    "transform_loop",
]
