"""The Privateer privatization transformation (§4.4–§4.6).

Rewrites the module in place:

* **Replace allocation** (§4.4): classified allocas and heap allocations
  become ``h_alloc(size, heap)`` / ``h_dealloc(ptr, heap)``; classified
  globals are recorded for relocation into their logical heap at startup
  (the paper allocates them in a pre-``main`` initializer — our runtime
  places them when it lays out globals, which is observationally the same
  and documented in DESIGN.md).
* **Separation checks** (§4.5): every load/store in the parallel region
  whose expected heap cannot be proven statically gets a
  ``check_heap(ptr, heap)`` call; provable checks are elided.
* **Privacy checks** (§4.6): accesses to private-heap objects get
  ``private_read``/``private_write`` calls feeding the shadow metadata.
* **Reduction updates**: reduction stores get ``redux_update`` markers so
  the runtime can track and merge per-worker partial results.
* **Value prediction / control speculation**: predicted locations are
  checked at the latch (fig. 2b lines 79–80); region blocks never seen
  during profiling get a ``misspec()`` so straying off the profiled path
  triggers recovery.

The transformed module still runs sequentially (all runtime intrinsics
have neutral fallbacks), which is exactly what non-speculative recovery
executes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.pointsto import AbstractObject, PointsToAnalysis
from ..analysis.reduction import find_reduction_updates
from ..classify.classifier import HeapAssignment
from ..classify.heaps import HeapKind
from ..ir.instructions import (
    Alloca,
    BinOp,
    BinOpKind,
    Call,
    Instruction,
    Load,
    Phi,
    PtrAdd,
    Ret,
    Store,
)
from ..ir.module import BasicBlock, Function, Module
from ..ir.types import I64
from ..ir.values import ConstInt, GlobalVariable, Value
from ..profiling.data import LoopProfile, LoopRef
from ..profiling.looptracker import LoopInfoCache
from .plan import (
    DEFAULT_CHECKPOINT_PERIOD,
    CheckCounts,
    ParallelPlan,
    ReduxObjectPlan,
    SelectionError,
)
from .selection import check_transformable, region_functions


def _site_of_abstract(obj: AbstractObject) -> str:
    return f"global:{obj.name}" if obj.kind == "global" else obj.name


class PrivateerTransform:
    """Apply the transformation for one selected loop."""

    def __init__(
        self,
        module: Module,
        ref: LoopRef,
        profile: LoopProfile,
        assignment: HeapAssignment,
        checkpoint_period: int = DEFAULT_CHECKPOINT_PERIOD,
    ):
        self.module = module
        self.ref = ref
        self.profile = profile
        self.assignment = assignment
        self.checkpoint_period = checkpoint_period
        self.checks = CheckCounts()
        #: site id of a rewritten allocation call -> heap kind
        self._alloc_site_kinds: Dict[str, HeapKind] = {}

    # -- public -------------------------------------------------------------

    def run(self) -> ParallelPlan:
        from ..obs.trace import TRACER

        with TRACER.span("pipeline.transform", cat="pipeline",
                         loop=str(self.ref)) as sp:
            plan = self._run(sp)
        return plan

    def _run(self, sp) -> ParallelPlan:
        loop, iv, reasons = check_transformable(
            self.module, self.ref, self.profile, self.assignment
        )
        if reasons:
            raise SelectionError(self.ref, reasons)
        fn = self.module.function_named(self.ref.function)
        region = region_functions(self.module, fn, loop)

        global_placements = self._replace_allocations()
        # Points-to runs after allocation replacement so h_alloc results
        # participate in separation-check elision.
        pta = PointsToAnalysis(self.module)
        self._insert_checks(fn, loop, region, pta, global_placements)
        self._insert_control_speculation()
        self._insert_value_prediction_checks(loop)
        redux_objects = self._plan_reductions(fn, region)

        plan = ParallelPlan(
            module=self.module,
            ref=self.ref,
            function=fn,
            loop=loop,
            iv=iv,
            assignment=self.assignment,
            profile=self.profile,
            checkpoint_period=self.checkpoint_period,
            global_placements=global_placements,
            predictions=list(self.assignment.predictions),
            redux_objects=redux_objects,
            defer_io=bool(self.assignment.io_sites),
            region_functions=region,
            checks=self.checks,
        )
        sp.set(checkpoint_period=self.checkpoint_period,
               redux_objects=len(redux_objects),
               region_functions=len(region))
        return plan

    # -- §4.4 replace allocation ------------------------------------------------

    def _replace_allocations(self) -> Dict[str, HeapKind]:
        global_placements: Dict[str, HeapKind] = {}
        site_kinds = self.assignment.site_heaps

        for site, kind in sorted(site_kinds.items()):
            if kind is HeapKind.UNRESTRICTED:
                continue  # unrestricted objects stay in normal memory
            if site.startswith("global:"):
                global_placements[site[len("global:"):]] = kind

        to_rewrite: List[Tuple[Instruction, HeapKind]] = []
        for g in self.module.defined_functions():
            for inst in g.instructions():
                kind = site_kinds.get(inst.site_id())
                if kind is None or kind is HeapKind.UNRESTRICTED:
                    continue
                if isinstance(inst, Alloca) or (
                    isinstance(inst, Call) and inst.callee.name in ("malloc", "calloc")
                ):
                    to_rewrite.append((inst, kind))

        for inst, kind in to_rewrite:
            if isinstance(inst, Alloca):
                self._rewrite_alloca(inst, kind)
            else:
                self._rewrite_heap_alloc(inst, kind)  # type: ignore[arg-type]

        self._rewrite_frees(site_kinds)
        return global_placements

    def _rewrite_alloca(self, alloca: Alloca, kind: HeapKind) -> None:
        bb = alloca.parent
        assert bb is not None and bb.parent is not None
        fn = bb.parent
        idx = bb.instructions.index(alloca)
        h_alloc = self.module.get_or_declare_intrinsic("h_alloc")
        h_dealloc = self.module.get_or_declare_intrinsic("h_dealloc")

        elem_size = ConstInt(I64, alloca.allocated_type.size)
        inserted: List[Instruction] = []
        if isinstance(alloca.count, ConstInt):
            size: Value = ConstInt(I64, alloca.allocated_type.size * alloca.count.value)
        else:
            mul = BinOp(BinOpKind.MUL, alloca.count, elem_size, name="h.size")
            inserted.append(mul)
            size = mul
        call = Call(h_alloc, [size, ConstInt(I64, int(kind))],
                    name=alloca.name or "h.obj")
        call.meta["privateer"] = f"h_alloc {kind}"
        call.meta["replaced_site"] = alloca.site_id()
        inserted.append(call)

        bb.instructions[idx:idx + 1] = inserted
        for new_inst in inserted:
            new_inst.parent = bb
        for inst in fn.instructions():
            if inst is not call:
                inst.replace_operand(alloca, call)

        # Free the storage at every function exit, as §4.4 prescribes.
        for bb2 in fn.blocks:
            term = bb2.terminator
            if isinstance(term, Ret):
                dealloc = Call(h_dealloc, [call, ConstInt(I64, int(kind))])
                dealloc.meta["privateer"] = f"h_dealloc {kind}"
                bb2.insert(len(bb2.instructions) - 1, dealloc)
        self._alloc_site_kinds[call.site_id()] = kind

    def _rewrite_heap_alloc(self, call: Call, kind: HeapKind) -> None:
        """malloc/calloc -> h_alloc, preserving the instruction identity
        (and therefore the profiled site id)."""
        bb = call.parent
        assert bb is not None
        h_alloc = self.module.get_or_declare_intrinsic("h_alloc")
        if call.callee.name == "calloc":
            mul = BinOp(BinOpKind.MUL, call.operands[0], call.operands[1],
                        name="h.size")
            bb.insert(bb.instructions.index(call), mul)
            size: Value = mul
        else:
            size = call.operands[0]
        call.callee = h_alloc
        call.operands[:] = [size, ConstInt(I64, int(kind))]
        call.meta["privateer"] = f"h_alloc {kind}"
        self._alloc_site_kinds[call.site_id()] = kind

    def _rewrite_frees(self, site_kinds: Dict[str, HeapKind]) -> None:
        """free(p) -> h_dealloc(p, kind) wherever the profile shows the
        freed objects' heap."""
        h_dealloc = self.module.get_or_declare_intrinsic("h_dealloc")
        for g in self.module.defined_functions():
            for inst in g.instructions():
                if not (isinstance(inst, Call) and inst.callee.name == "free"):
                    continue
                objs = self.profile.pointer_objects.get(inst.site_id(), set())
                kinds = {site_kinds.get(o) for o in objs}
                kinds.discard(None)
                if len(kinds) != 1:
                    continue
                kind = kinds.pop()
                if kind is HeapKind.UNRESTRICTED:
                    continue
                inst.callee = h_dealloc
                inst.operands.append(ConstInt(I64, int(kind)))
                inst.meta["privateer"] = f"h_dealloc {kind}"

    # -- §4.5 / §4.6 checks --------------------------------------------------------

    def _region_blocks(self, fn: Function, loop, region: List[Function]):
        for bb in loop.blocks:
            yield bb
        for g in region:
            yield from g.blocks

    def _expected_kind(self, inst: Instruction) -> Optional[HeapKind]:
        objs = self.profile.pointer_objects.get(inst.site_id())
        if not objs:
            return None
        kinds = {self.assignment.site_heaps.get(o) for o in objs}
        kinds.discard(None)
        if len(kinds) != 1:
            return None
        return kinds.pop()

    def _static_kind_of(self, obj: AbstractObject,
                        global_placements: Dict[str, HeapKind]) -> Optional[HeapKind]:
        if obj.kind == "global":
            return global_placements.get(obj.name)
        if obj.name in self._alloc_site_kinds:
            return self._alloc_site_kinds[obj.name]
        return self.assignment.site_heaps.get(_site_of_abstract(obj))

    def _can_elide(self, pointer: Value, expected: HeapKind,
                   pta: PointsToAnalysis,
                   global_placements: Dict[str, HeapKind]) -> bool:
        pts = pta.points_to(pointer)
        if pts.is_top or not pts.objects:
            return False
        return all(
            self._static_kind_of(o, global_placements) is expected
            for o in pts.objects
        )

    def _insert_checks(self, fn: Function, loop, region: List[Function],
                       pta: PointsToAnalysis,
                       global_placements: Dict[str, HeapKind]) -> None:
        check_heap = self.module.get_or_declare_intrinsic("check_heap")
        private_read = self.module.get_or_declare_intrinsic("private_read")
        private_write = self.module.get_or_declare_intrinsic("private_write")
        h_dealloc_name = "h_dealloc"

        for bb in self._region_blocks(fn, loop, region):
            new_insts: List[Instruction] = []
            for inst in bb.instructions:
                checks: List[Instruction] = []
                if isinstance(inst, (Load, Store)):
                    expected = self._expected_kind(inst)
                    if expected is not None:
                        pointer = inst.pointer  # type: ignore[union-attr]
                        if self._can_elide(pointer, expected, pta, global_placements):
                            self.checks.separation_elided += 1
                        else:
                            chk = Call(check_heap,
                                       [pointer, ConstInt(I64, int(expected))])
                            chk.meta["privateer"] = f"check_heap {expected}"
                            checks.append(chk)
                            self.checks.separation += 1
                        if expected is HeapKind.PRIVATE:
                            if isinstance(inst, Load):
                                size = inst.type.size
                                c = Call(private_read,
                                         [pointer, ConstInt(I64, size)])
                                c.meta["privateer"] = "private_read"
                                self.checks.private_read += 1
                            else:
                                size = inst.value.type.size  # type: ignore[union-attr]
                                c = Call(private_write,
                                         [pointer, ConstInt(I64, size)])
                                c.meta["privateer"] = "private_write"
                                self.checks.private_write += 1
                            checks.append(c)
                        elif expected is HeapKind.REDUX and isinstance(inst, Store):
                            redux_update = self.module.get_or_declare_intrinsic(
                                "redux_update")
                            size = inst.value.type.size  # type: ignore[union-attr]
                            c = Call(redux_update, [pointer, ConstInt(I64, size)])
                            c.meta["privateer"] = "redux_update"
                            self.checks.redux_update += 1
                            checks.append(c)
                elif isinstance(inst, Call) and inst.callee.name == h_dealloc_name:
                    # Validate the pointer's heap before freeing into it.
                    if len(inst.operands) >= 2 and isinstance(inst.operands[1], ConstInt):
                        kind = HeapKind(inst.operands[1].value)
                        if not self._can_elide(inst.operands[0], kind, pta,
                                               global_placements):
                            chk = Call(check_heap,
                                       [inst.operands[0], ConstInt(I64, int(kind))])
                            chk.meta["privateer"] = f"check_heap {kind}"
                            checks.append(chk)
                            self.checks.separation += 1
                        else:
                            self.checks.separation_elided += 1
                for c in checks:
                    c.parent = bb
                    new_insts.append(c)
                new_insts.append(inst)
            bb.instructions = new_insts

    # -- control speculation ----------------------------------------------------------

    def _insert_control_speculation(self) -> None:
        misspec = self.module.get_or_declare_intrinsic("misspec")
        for fn_name, bb_name in sorted(self.assignment.unexecuted_blocks):
            fn = self.module.functions.get(fn_name)
            if fn is None or fn.is_declaration:
                continue
            try:
                bb = fn.block_named(bb_name)
            except KeyError:
                continue
            idx = 0
            while idx < len(bb.instructions) and isinstance(bb.instructions[idx], Phi):
                idx += 1
            call = Call(misspec, [])
            call.meta["privateer"] = "control speculation"
            bb.insert(idx, call)
            self.checks.control_misspec += 1

    # -- value prediction ----------------------------------------------------------------

    def _insert_value_prediction_checks(self, loop) -> None:
        """Check each predicted location at the latch (fig. 2b, lines
        79–80); the runtime also restores predictions at iteration start."""
        if not self.assignment.predictions:
            return
        predict = self.module.get_or_declare_intrinsic("predict_value")
        latch = loop.latches[0]
        at = len(latch.instructions) - 1  # before the terminator
        for vp in self.assignment.predictions:
            name = vp.obj_site[len("global:"):]
            gv = self.module.global_named(name)
            addr = PtrAdd(gv, ConstInt(I64, vp.offset), name=f"vp.{name}")
            call = Call(predict, [addr, ConstInt(I64, vp.size),
                                  ConstInt(I64, vp.value)])
            call.meta["privateer"] = f"predict {vp}"
            latch.insert(at, addr)
            latch.insert(at + 1, call)
            at += 2
            self.checks.predict_value += 1

    # -- reductions --------------------------------------------------------------------------

    def _plan_reductions(self, fn: Function,
                         region: List[Function]) -> Dict[str, ReduxObjectPlan]:
        out: Dict[str, ReduxObjectPlan] = {}
        redux_sites = self.assignment.redux_sites
        if not redux_sites:
            return out
        for g in [fn, *region]:
            for upd in find_reduction_updates(g):
                objs = self.profile.pointer_objects.get(upd.store.site_id(), set())
                for site in objs & redux_sites:
                    out[site] = ReduxObjectPlan(
                        site=site,
                        operator=upd.operator.name,
                        element_size=upd.load.type.size,
                        is_float=upd.operator.name.startswith("F"),
                    )
        # Fall back to the profiled operator for sites whose update wasn't
        # matched statically in this pass.
        for site in redux_sites - set(out):
            op = self.assignment.redux_ops.get(site, "ADD")
            out[site] = ReduxObjectPlan(site, op, 8, op.startswith("F"))
        return out


def transform_loop(
    module: Module,
    ref: LoopRef,
    profile: LoopProfile,
    assignment: HeapAssignment,
    checkpoint_period: int = DEFAULT_CHECKPOINT_PERIOD,
) -> ParallelPlan:
    """Convenience wrapper: run the full transformation for one loop."""
    return PrivateerTransform(module, ref, profile, assignment,
                              checkpoint_period).run()
