"""The parallelization plan produced by the Privateer transformation.

A :class:`ParallelPlan` ties together everything the runtime system and
DOALL executor need: the selected loop, its induction variable, the heap
assignment, the speculation support (value predictions, control
speculation, I/O deferral), and bookkeeping about the checks inserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..analysis.loops import InductionVariable, Loop
from ..classify.classifier import HeapAssignment
from ..classify.heaps import HeapKind
from ..ir.module import Function, Module
from ..profiling.data import LoopProfile, LoopRef, ValuePrediction

#: The paper triggers a checkpoint at least every 253 iterations (the
#: metadata timestamp must fit a byte: codes 0..2 reserved, 3..255 usable).
MAX_CHECKPOINT_PERIOD = 253
DEFAULT_CHECKPOINT_PERIOD = 250


class SelectionError(Exception):
    """The loop cannot be transformed/parallelized; carries the reasons."""

    def __init__(self, ref: LoopRef, reasons: List[str]):
        super().__init__(f"{ref}: " + "; ".join(reasons))
        self.ref = ref
        self.reasons = reasons


@dataclass
class CheckCounts:
    """Static counts of validation calls inserted by the transformation."""

    separation: int = 0
    separation_elided: int = 0
    private_read: int = 0
    private_write: int = 0
    redux_update: int = 0
    control_misspec: int = 0
    predict_value: int = 0

    def total(self) -> int:
        return (self.separation + self.private_read + self.private_write
                + self.redux_update + self.control_misspec + self.predict_value)


@dataclass
class ReduxObjectPlan:
    """Runtime merge recipe for one reduction object."""

    site: str
    operator: str      # BinOpKind name, e.g. "ADD" / "FADD"
    element_size: int  # bytes per element
    is_float: bool


@dataclass
class ParallelPlan:
    """Everything the executor needs about a transformed loop: the
    loop, its induction variable, heap placements, checkpoint period,
    and speculation hooks planted by the transformation.
    """
    module: Module
    ref: LoopRef
    function: Function
    loop: Loop
    iv: InductionVariable
    assignment: HeapAssignment
    profile: LoopProfile
    checkpoint_period: int = DEFAULT_CHECKPOINT_PERIOD
    #: Globals relocated into logical heaps at startup: name -> heap.
    global_placements: Dict[str, HeapKind] = field(default_factory=dict)
    #: Value predictions restored at iteration start, checked at latch.
    predictions: List[ValuePrediction] = field(default_factory=list)
    redux_objects: Dict[str, ReduxObjectPlan] = field(default_factory=dict)
    defer_io: bool = False
    region_functions: List[Function] = field(default_factory=list)
    checks: CheckCounts = field(default_factory=CheckCounts)

    @property
    def exit_block(self):
        term = self.loop.header.terminator
        from ..ir.instructions import CondBr

        assert isinstance(term, CondBr)
        return term.if_true if self.iv.exit_on_true else term.if_false

    def describe(self) -> str:
        lines = [
            f"ParallelPlan for {self.ref}",
            f"  induction variable: step {self.iv.step}, "
            f"exit pred {self.iv.pred.value}",
            f"  checkpoint period: {self.checkpoint_period}",
            f"  globals relocated: "
            + (", ".join(f"{n}->{k}" for n, k in sorted(self.global_placements.items()))
               or "none"),
            f"  predictions: {len(self.predictions)}  deferred I/O: {self.defer_io}",
            f"  checks: separation={self.checks.separation} "
            f"(elided {self.checks.separation_elided}), "
            f"priv_rd={self.checks.private_read}, "
            f"priv_wr={self.checks.private_write}, "
            f"redux={self.checks.redux_update}, "
            f"control={self.checks.control_misspec}, "
            f"predict={self.checks.predict_value}",
        ]
        return "\n".join(lines)
