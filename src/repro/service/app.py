"""The HTTP tier of ``repro serve``: routing, handlers, lifecycle.

A stdlib-only :class:`ThreadingHTTPServer` (the
:mod:`repro.obs.server` idiom) in front of the :class:`JobStore` and the
:class:`Scheduler`.  Handler threads only parse, validate, and snapshot —
all pipeline work happens on the scheduler thread — so ``GET`` polls stay
responsive while a job runs, and every payload is JSON-serialized from a
snapshot taken under the store lock (no torn envelopes).

Endpoints (full reference in docs/SERVICE.md)
---------------------------------------------
* ``POST /jobs`` — submit a job (named workload or inline MiniC source);
  ``202`` queued, ``200`` warm-cache hit, ``400`` validation/compile
  error, ``429`` + ``Retry-After`` when the bounded queue is full.
* ``GET /jobs`` — retained jobs, newest first, plus state counts.
* ``GET /jobs/<id>`` — full status: Table-1/Table-3 style result rows
  and, when the run misspeculated, a forensics summary.
* ``GET /jobs/<id>/trace`` — the per-job JSONL trace artifact
  (``trace: true`` submissions only).
* ``GET /fingerprints`` — per-fingerprint batching/cache statistics.
* ``GET /workloads`` — machine-readable submittable-workload listing
  (the ``repro workloads --json`` payload).
* ``GET /metrics`` / ``/metrics.prom`` / ``/health`` — the
  :class:`~repro.obs.server.StatusServer` observability surface, served
  from the same process so ``service.*`` / ``job.<id>.*`` metrics are
  scrapeable mid-drain.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional

from ..obs.history import HistorySampler, resolve_history_dir
from ..obs.log import get_logger
from ..obs.server import DEFAULT_HOST, StatusServer
from .jobstore import DEFAULT_QUEUE_DEPTH, JobStore, QueueFull
from .scheduler import Scheduler
from .serializers import (
    ValidationError,
    envelope,
    error_payload,
    fingerprint_source,
    parse_submit,
)

log = get_logger("service.app")

#: Environment variable supplying a default ``repro serve`` port.
SERVE_PORT_ENV = "REPRO_SERVE_PORT"

#: Environment variable bounding the submit queue (backpressure knob).
SERVE_QUEUE_ENV = "REPRO_SERVE_QUEUE"

#: Default ``repro serve`` port when neither flag nor env supplies one.
DEFAULT_SERVE_PORT = 8517

#: Submit bodies above this size are rejected outright (413).
MAX_BODY_BYTES = 1 << 20


def resolve_serve_port(port: Optional[int] = None) -> int:
    """Resolve the service port: explicit flag > ``REPRO_SERVE_PORT`` >
    :data:`DEFAULT_SERVE_PORT`.  Port 0 asks the kernel for an ephemeral
    port (see :attr:`ServiceApp.port` for the resolved value)."""
    if port is not None:
        return port
    raw = os.environ.get(SERVE_PORT_ENV, "").strip()
    if not raw:
        return DEFAULT_SERVE_PORT
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{SERVE_PORT_ENV}={raw!r} is not an integer port")
    if not 0 <= value <= 65535:
        raise ValueError(f"{SERVE_PORT_ENV}={value} is outside [0, 65535]")
    return value


def resolve_queue_depth(depth: Optional[int] = None) -> int:
    """Resolve the submit-queue bound: explicit flag >
    ``REPRO_SERVE_QUEUE`` > :data:`~repro.service.jobstore.DEFAULT_QUEUE_DEPTH`."""
    if depth is None:
        raw = os.environ.get(SERVE_QUEUE_ENV, "").strip()
        if not raw:
            return DEFAULT_QUEUE_DEPTH
        try:
            depth = int(raw)
        except ValueError:
            raise ValueError(
                f"{SERVE_QUEUE_ENV}={raw!r} is not an integer queue depth")
    if depth < 1:
        raise ValueError(f"queue depth must be >= 1 (got {depth})")
    return depth


def workloads_payload() -> Dict[str, object]:
    """Machine-readable listing of the submittable workloads — the body
    of ``GET /workloads`` and of ``repro workloads --json``."""
    from ..workloads import ALL_WORKLOADS

    return {
        "workloads": [
            {
                "name": w.name,
                "suite": w.suite,
                "description": w.description,
                "args_schema": {
                    "arity": len(w.train),
                    "type": "integer",
                    "positional": True,
                },
                "train_args": list(w.train),
                "ref_args": list(w.ref),
                "alt_args": list(w.alt),
            }
            for w in ALL_WORKLOADS
        ],
    }


class ServiceApp:
    """The assembled service: job store + scheduler + HTTP front end.

    Construction wires the tiers together but binds nothing; use
    :meth:`start`/:meth:`stop` or the context manager.  Tests inject a
    private registry/tracer (the :class:`StatusServer` pattern) so
    service metrics don't leak across cases.
    """

    def __init__(self, port: int = 0, host: str = DEFAULT_HOST,
                 queue_depth: Optional[int] = None, retain: int = 256,
                 registry=None, tracer=None,
                 spool_dir: Optional[str] = None,
                 history_dir: Optional[str] = None):
        self.store = JobStore(queue_depth=resolve_queue_depth(queue_depth),
                              retain=retain, registry=registry)
        self._own_spool = spool_dir is None
        self.spool_dir = (tempfile.mkdtemp(prefix="repro-serve-")
                          if spool_dir is None else spool_dir)
        self.scheduler = Scheduler(self.store, self.spool_dir,
                                   registry=registry, tracer=tracer)
        #: Metrics history ring (``repro dash`` substrate); enabled by
        #: the ``--history-dir`` flag or ``$REPRO_HISTORY_DIR``.
        history = resolve_history_dir(history_dir)
        self.history: Optional[HistorySampler] = (
            None if history is None else
            HistorySampler(history, registry=registry))
        #: Never started: composed purely for its payload methods, so
        #: ``/metrics`` here and a standalone StatusServer stay identical.
        self.status = StatusServer(registry=registry, tracer=tracer)
        self.registry = self.store.registry
        self._requested = (host, port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- request handling --------------------------------------------------

    def handle_submit(self, payload: object):
        """Validate + fingerprint a submit body and register the job.

        Returns ``(http_status, body, headers)``; all service errors are
        raised as :class:`ValidationError`/:class:`QueueFull` by the
        layers below and mapped here.
        """
        self.registry.counter("service.http.submits").inc()
        t0 = time.monotonic()
        try:
            spec = parse_submit(payload)
        except ValidationError as e:
            return 400, error_payload("invalid submission", e.errors), {}
        try:
            fingerprint = fingerprint_source(spec.source, spec.name)
        except Exception as e:  # noqa: BLE001 - guest compile errors
            return 400, error_payload(
                f"source does not compile: {e}",
                [f"source: {type(e).__name__}: {e}"]), {}
        validate_s = time.monotonic() - t0
        try:
            job = self.store.submit(spec, fingerprint,
                                    validate_s=validate_s)
        except QueueFull as e:
            retry = max(1, round(e.retry_after_s))
            return 429, error_payload(str(e)), {"Retry-After": str(retry)}
        status = 200 if job.cache_hit else 202
        return status, envelope({"job": job.to_json()}), {}

    def job_payload(self, job_id: str):
        found = self.store.job_payload(job_id)
        if found is None:
            return 404, error_payload(f"unknown job {job_id!r}"), {}
        return 200, envelope({"job": found}), {}

    def trace_payload(self, job_id: str):
        """The raw JSONL trace artifact for a traced, finished job."""
        job = self.store.get(job_id)
        if job is None:
            return 404, error_payload(f"unknown job {job_id!r}"), {}
        if not job.spec.trace:
            return 404, error_payload(
                f"job {job_id} was not submitted with trace: true"), {}
        if job.trace_path is None:
            return 404, error_payload(
                f"job {job_id} has no trace yet (state: {job.state})"), {}
        try:
            data = Path(job.trace_path).read_bytes()
        except OSError as e:
            return 404, error_payload(f"trace artifact unavailable: {e}"), {}
        return 200, data, {"Content-Type": "application/x-ndjson"}

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> Optional[int]:
        return self._httpd.server_address[1] if self._httpd else None

    @property
    def url(self) -> Optional[str]:
        if self._httpd is None:
            return None
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ServiceApp":
        """Bind the HTTP server and start the scheduler; idempotent."""
        if self._httpd is not None:
            return self
        app = self
        self.scheduler.start()
        if self.history is not None:
            self.history.start()

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def _reply(self, status: int, body, headers=None) -> None:
                if isinstance(body, (dict, list)):
                    body = json.dumps(body, sort_keys=True,
                                      default=str).encode()
                    content_type = "application/json"
                else:
                    content_type = "text/plain; version=0.0.4"
                headers = dict(headers or {})
                content_type = headers.pop("Content-Type", content_type)
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                for key, value in headers.items():
                    self.send_header(key, value)
                self.end_headers()
                self.wfile.write(body)

            def _route_get(self, path: str):
                if path == "/health":
                    body = app.status.health_payload()
                    body["jobs"] = app.store.counts()
                    body["scheduler"] = ("running" if app.scheduler.alive
                                         else "stopped")
                    return 200, body, {}
                if path == "/metrics":
                    return 200, app.status.metrics_payload(), {}
                if path == "/metrics.prom":
                    return 200, app.status.prometheus_text().encode(), {}
                if path == "/workloads":
                    return 200, envelope(workloads_payload()), {}
                if path == "/fingerprints":
                    return 200, app.store.fingerprint_payload(), {}
                if path == "/jobs":
                    return 200, envelope({"jobs": app.store.list_payload(),
                                          "counts": app.store.counts()}), {}
                if path.startswith("/jobs/"):
                    rest = path[len("/jobs/"):]
                    if rest.endswith("/trace"):
                        return app.trace_payload(rest[:-len("/trace")])
                    if "/" not in rest:
                        return app.job_payload(rest)
                return 404, error_payload(
                    f"unknown path {path!r}",
                    ["endpoints: POST /jobs; GET /jobs, /jobs/<id>, "
                     "/jobs/<id>/trace, /fingerprints, /workloads, "
                     "/metrics, /metrics.prom, /health"]), {}

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0]
                app.registry.counter("service.http.requests").inc()
                try:
                    status, body, headers = self._route_get(path)
                    if status >= 400:
                        app.registry.counter("service.http.errors").inc()
                    self._reply(status, body, headers)
                except (BrokenPipeError, ConnectionResetError):
                    pass  # client went away mid-reply; nothing to do

            def do_POST(self) -> None:  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0]
                app.registry.counter("service.http.requests").inc()
                try:
                    if path != "/jobs":
                        status, body, headers = 404, error_payload(
                            f"POST {path!r} is not an endpoint "
                            "(POST /jobs submits a job)"), {}
                    else:
                        status, body, headers = self._submit()
                    if status >= 400:
                        app.registry.counter("service.http.errors").inc()
                    self._reply(status, body, headers)
                except (BrokenPipeError, ConnectionResetError):
                    pass

            def _submit(self):
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                except ValueError:
                    return 400, error_payload("bad Content-Length"), {}
                if length > MAX_BODY_BYTES:
                    return 413, error_payload(
                        f"body exceeds {MAX_BODY_BYTES} bytes"), {}
                raw = self.rfile.read(length) if length else b""
                try:
                    payload = json.loads(raw.decode() or "null")
                except (UnicodeDecodeError, json.JSONDecodeError) as e:
                    return 400, error_payload(f"body is not JSON: {e}"), {}
                return app.handle_submit(payload)

            def log_message(self, fmt: str, *args: object) -> None:
                log.debug("serve: " + fmt, *args)

        self._httpd = ThreadingHTTPServer(self._requested, Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve",
            daemon=True)
        self._thread.start()
        log.info("job API serving on %s", self.url)
        return self

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, finish the in-flight job,
        join every owned thread; idempotent."""
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        self.scheduler.stop()
        if self.history is not None:
            self.history.stop()

    def __enter__(self) -> "ServiceApp":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
