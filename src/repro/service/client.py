"""urllib client for the job API — the ``repro submit`` / ``repro jobs``
transport.

Stdlib-only, synchronous, loopback-oriented: a thin wrapper that speaks
the :mod:`repro.service.serializers` envelopes, maps non-2xx responses
to :class:`ServiceError` (status + server-reported field errors), and
offers a :meth:`ServiceClient.wait` poll loop with ``Retry-After``
honoring resubmission for 429 backpressure.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from .jobstore import TERMINAL_STATES


class ServiceError(RuntimeError):
    """A non-2xx service response; carries the HTTP status, the server's
    ``error`` message and its field-by-field ``errors`` list."""

    def __init__(self, status: int, message: str,
                 errors: Optional[List[str]] = None,
                 retry_after: Optional[int] = None):
        detail = f"HTTP {status}: {message}"
        if errors:
            detail += " (" + "; ".join(errors) + ")"
        super().__init__(detail)
        self.status = status
        self.errors = list(errors or [])
        self.retry_after = retry_after


def default_url(port: Optional[int] = None) -> str:
    """The serve URL implied by flags/env (see :func:`resolve_serve_port`)."""
    from .app import resolve_serve_port

    return f"http://127.0.0.1:{resolve_serve_port(port)}"


class ServiceClient:
    """Synchronous client bound to one server base URL."""

    def __init__(self, url: Optional[str] = None, timeout: float = 60.0):
        self.url = (url or default_url()).rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(self, path: str, payload: Optional[Dict] = None,
                 raw: bool = False):
        req = urllib.request.Request(self.url + path)
        if payload is not None:
            req.data = json.dumps(payload).encode()
            req.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                body = resp.read()
        except urllib.error.HTTPError as e:
            body = e.read()
            try:
                parsed = json.loads(body.decode() or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError):
                parsed = {}
            retry_raw = e.headers.get("Retry-After")
            raise ServiceError(
                e.code, str(parsed.get("error", e.reason)),
                parsed.get("errors"),
                retry_after=int(retry_raw) if retry_raw else None,
            ) from None
        except urllib.error.URLError as e:
            raise ServiceError(
                0, f"cannot reach {self.url}: {e.reason} "
                   "(is `repro serve` running?)") from None
        if raw:
            return body.decode()
        return json.loads(body.decode())

    # -- endpoints ---------------------------------------------------------

    def submit(self, payload: Dict) -> Dict[str, object]:
        """``POST /jobs``; returns the job payload (``cache_hit`` marks a
        warm-cache answer).  429 backpressure surfaces as
        :class:`ServiceError` with ``retry_after`` set."""
        return self._request("/jobs", payload=payload)["job"]

    def submit_retrying(self, payload: Dict,
                        attempts: int = 5) -> Dict[str, object]:
        """Submit, sleeping out ``Retry-After`` on 429 up to *attempts*."""
        for attempt in range(attempts):
            try:
                return self.submit(payload)
            except ServiceError as e:
                if e.status != 429 or attempt == attempts - 1:
                    raise
                time.sleep(max(1, e.retry_after or 1))
        raise AssertionError("unreachable")

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request(f"/jobs/{job_id}")["job"]

    def jobs(self) -> Dict[str, object]:
        return self._request("/jobs")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_s: float = 0.2) -> Dict[str, object]:
        """Poll ``GET /jobs/<id>`` until the job reaches a terminal
        state; raises :class:`TimeoutError` otherwise."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s")
            time.sleep(poll_s)

    def trace(self, job_id: str) -> str:
        """The JSONL trace artifact text for a traced job."""
        return self._request(f"/jobs/{job_id}/trace", raw=True)

    def fingerprints(self) -> Dict[str, object]:
        return self._request("/fingerprints")

    def workloads(self) -> List[Dict[str, object]]:
        return self._request("/workloads")["workloads"]

    def health(self) -> Dict[str, object]:
        return self._request("/health")

    def metrics(self) -> Dict[str, object]:
        return self._request("/metrics")
