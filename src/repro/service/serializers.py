"""Request validation and JSON envelopes for the job API.

``POST /jobs`` bodies are validated into a :class:`JobSpec` before
anything touches the pipeline: unknown fields, malformed knobs, and
unknown workload names are rejected with a field-by-field error list
(HTTP 400) rather than surfacing as a failed job.  Validation also
*compiles* the submitted module and computes its
:func:`~repro.profiling.serialize.module_fingerprint`, so the scheduler
can batch by fingerprint and the result cache can answer identical
resubmissions at submit time.

Every response body carries ``service_format`` (the payload version) so
clients and the schema validator (``python -m repro.obs.schema --job``)
can reject incompatible servers.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..parallel.backend import BACKEND_NAMES

#: Version stamp on every service JSON payload.
SERVICE_FORMAT = 1

#: Fields accepted in a ``POST /jobs`` body.
SUBMIT_FIELDS = {
    "workload", "source", "name", "args", "train_args", "workers",
    "backend", "pool_workers", "checkpoint_period", "misspec_period",
    "misspec_burst", "adapt", "trace", "small",
}


class ValidationError(ValueError):
    """A submit payload failed validation; ``errors`` lists every
    field-level problem found (not just the first)."""

    def __init__(self, errors: List[str]):
        super().__init__("; ".join(errors))
        self.errors = list(errors)


@dataclass
class JobSpec:
    """A validated job submission: what to run and how."""

    #: MiniC source text (resolved from the workload registry when the
    #: client submitted a ``workload`` name).
    source: str
    #: Display name (workload name or client-supplied ``name``).
    name: str
    #: Profiling input (the paper's *train* set).
    train_args: Tuple[int, ...]
    #: Evaluation input (the paper's *ref* set).
    args: Tuple[int, ...]
    #: Registered workload name, when the job was submitted by name.
    workload: Optional[str] = None
    workers: int = 4
    backend: Optional[str] = None
    pool_workers: Optional[int] = None
    checkpoint_period: Optional[int] = None
    misspec_period: int = 0
    misspec_burst: int = 0
    adapt: bool = False
    #: Record a JSONL trace of the run (served on ``/jobs/<id>/trace``).
    trace: bool = False

    def knobs(self) -> Dict[str, object]:
        """The execution knobs, for echoing back in job payloads."""
        return {
            "workers": self.workers,
            "backend": self.backend,
            "pool_workers": self.pool_workers,
            "checkpoint_period": self.checkpoint_period,
            "misspec_period": self.misspec_period,
            "misspec_burst": self.misspec_burst,
            "adapt": self.adapt,
            "trace": self.trace,
        }

    def cache_key(self, fingerprint: str) -> str:
        """Warm-result-cache key: the module fingerprint plus every input
        and knob that can change the observable result.  ``trace`` is
        deliberately excluded — a traced and an untraced run of the same
        job compute the same result (but a cache hit serves no trace)."""
        h = hashlib.sha256()
        h.update(fingerprint.encode())
        h.update(repr((self.train_args, self.args, self.workers,
                       self.backend, self.pool_workers,
                       self.checkpoint_period, self.misspec_period,
                       self.misspec_burst, self.adapt)).encode())
        return h.hexdigest()[:24]


def _int_field(payload: Dict, key: str, errors: List[str],
               minimum: Optional[int] = None,
               default: Optional[int] = None) -> Optional[int]:
    value = payload.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        errors.append(f"{key}: expected an integer, got {value!r}")
        return default
    if minimum is not None and value < minimum:
        errors.append(f"{key}: must be >= {minimum} (got {value})")
        return default
    return value


def _args_field(payload: Dict, key: str,
                errors: List[str]) -> Optional[Tuple[int, ...]]:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, (list, tuple)) or any(
            isinstance(v, bool) or not isinstance(v, int) for v in value):
        errors.append(f"{key}: expected a list of integers, got {value!r}")
        return None
    return tuple(value)


def _bool_field(payload: Dict, key: str, errors: List[str],
                default: bool = False) -> bool:
    value = payload.get(key, default)
    if not isinstance(value, bool):
        errors.append(f"{key}: expected a boolean, got {value!r}")
        return default
    return bool(value)


def parse_submit(payload: object) -> JobSpec:
    """Validate a ``POST /jobs`` body into a :class:`JobSpec`.

    Raises :class:`ValidationError` carrying *all* problems found.  A
    submission names either a registered ``workload`` (args default to
    its ref set, or its train set with ``small: true``) or ships inline
    MiniC ``source`` (args default to empty).
    """
    if not isinstance(payload, dict):
        raise ValidationError(["body must be a JSON object"])
    errors: List[str] = []
    for key in sorted(set(payload) - SUBMIT_FIELDS):
        errors.append(f"{key}: unknown field (accepted: "
                      f"{', '.join(sorted(SUBMIT_FIELDS))})")

    workload = payload.get("workload")
    source = payload.get("source")
    if (workload is None) == (source is None):
        errors.append("exactly one of 'workload' or 'source' is required")
    if workload is not None and not isinstance(workload, str):
        errors.append(f"workload: expected a workload name, got {workload!r}")
        workload = None
    if source is not None and not isinstance(source, str):
        errors.append(f"source: expected MiniC source text, got {source!r}")
        source = None

    name = payload.get("name")
    if name is not None and not isinstance(name, str):
        errors.append(f"name: expected a string, got {name!r}")
        name = None

    args = _args_field(payload, "args", errors)
    train_args = _args_field(payload, "train_args", errors)
    small = _bool_field(payload, "small", errors)

    backend = payload.get("backend")
    if backend is not None and backend not in BACKEND_NAMES:
        errors.append(f"backend: unknown backend {backend!r} (available: "
                      f"{', '.join(BACKEND_NAMES)})")
    workers = _int_field(payload, "workers", errors, minimum=1, default=4)
    pool_workers = _int_field(payload, "pool_workers", errors, minimum=1)
    if pool_workers is not None and backend != "pool":
        errors.append("pool_workers: only applies to the pool backend")
    checkpoint_period = _int_field(payload, "checkpoint_period", errors,
                                   minimum=2)
    misspec_period = _int_field(payload, "misspec_period", errors,
                                minimum=0, default=0) or 0
    misspec_burst = _int_field(payload, "misspec_burst", errors,
                               minimum=0, default=0) or 0
    adapt = _bool_field(payload, "adapt", errors)
    trace = _bool_field(payload, "trace", errors)

    if workload is not None:
        from ..workloads import BY_NAME

        w = BY_NAME.get(workload)
        if w is None:
            errors.append(f"workload: unknown workload {workload!r} "
                          f"(available: {', '.join(sorted(BY_NAME))}; "
                          f"see `repro workloads --json`)")
        else:
            source = w.source
            name = name or w.name
            train_args = train_args if train_args is not None else w.train
            if args is None:
                args = w.train if small else w.ref
    if errors:
        raise ValidationError(errors)
    assert source is not None
    return JobSpec(
        source=source,
        name=name or "submitted",
        workload=workload,
        train_args=train_args if train_args is not None else (args or ()),
        args=args or (),
        workers=workers or 4,
        backend=backend,
        pool_workers=pool_workers,
        checkpoint_period=checkpoint_period,
        misspec_period=misspec_period,
        misspec_burst=misspec_burst,
        adapt=adapt,
        trace=trace,
    )


def fingerprint_source(source: str, name: str) -> str:
    """Compile the submitted module and return its pre-transform
    fingerprint (the batching and cache key component).  Compilation
    errors propagate — the HTTP tier maps them to a 400."""
    from ..frontend.lower import compile_minic
    from ..profiling.serialize import module_fingerprint

    return module_fingerprint(compile_minic(source, name))


def envelope(data: Dict[str, object]) -> Dict[str, object]:
    """Wrap a response body with the service format stamp and wall-clock
    generation time (mirrors the ``/metrics`` envelope shape)."""
    out: Dict[str, object] = {
        "service_format": SERVICE_FORMAT,
        "generated_unix": time.time(),
    }
    out.update(data)
    return out


def error_payload(message: str,
                  errors: Optional[List[str]] = None) -> Dict[str, object]:
    """The JSON body of every non-2xx service response."""
    return envelope({
        "error": message,
        "errors": list(errors or []),
    })
