"""Job lifecycle and the bounded submit queue.

A job moves ``queued -> running -> done | failed | misspeculated``:

* ``done`` — the run completed and its output matched the sequential
  baseline (misspeculations that were caught and recovered still end
  here, with squash/recovery counts in the result);
* ``misspeculated`` — speculation was *not* contained: the output
  diverged from the sequential baseline, or a misspeculation escaped
  the recovery machinery (this is the contract-violation state and
  should never be reached);
* ``failed`` — the pipeline rejected the program (no parallelizable
  loop), the guest faulted, or the backend errored.

The store also owns the **warm result cache** (``cache key -> result
payload``): an identical ``(fingerprint, args, knobs)`` resubmission is
answered at submit time without touching the scheduler, recorded as a
``service.cache_hits`` increment.

Backpressure: the queue of not-yet-running jobs is bounded
(``queue_depth``, default :data:`DEFAULT_QUEUE_DEPTH` or
``$REPRO_SERVE_QUEUE``); a submit beyond the bound raises
:class:`QueueFull`, which the HTTP tier maps to ``429 Too Many
Requests`` with a ``Retry-After`` hint derived from recent job latency.

Retention: finished jobs are kept up to ``retain`` entries; evicting a
job also drops its ``job.<id>.*`` entries from the metrics registry so
the ``/metrics`` payload stays bounded on a long-lived server.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs.metrics import METRICS, labeled
from .serializers import SERVICE_FORMAT, JobSpec

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_MISSPECULATED = "misspeculated"

#: Every state a job can report; terminal states are the last three.
JOB_STATES = (STATE_QUEUED, STATE_RUNNING, STATE_DONE, STATE_FAILED,
              STATE_MISSPECULATED)

TERMINAL_STATES = (STATE_DONE, STATE_FAILED, STATE_MISSPECULATED)

#: Default bound on queued (not yet running) jobs.
DEFAULT_QUEUE_DEPTH = 64

#: Default count of finished jobs retained for ``GET /jobs/<id>``.
DEFAULT_RETAIN = 256


class QueueFull(RuntimeError):
    """The submit queue is at capacity; retry after ``retry_after_s``."""

    def __init__(self, depth: int, retry_after_s: float):
        super().__init__(
            f"job queue is full ({depth} queued); retry after "
            f"{retry_after_s:.0f}s")
        self.depth = depth
        self.retry_after_s = retry_after_s


@dataclass
class Job:
    """One submitted job and everything the API reports about it."""

    id: str
    spec: JobSpec
    fingerprint: str
    state: str = STATE_QUEUED
    submitted_unix: float = field(default_factory=time.time)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    #: Served straight from the warm result cache at submit time.
    cache_hit: bool = False
    #: Submit-side validation + fingerprinting wall time (seconds),
    #: measured by the HTTP tier; lands in the trace as ``job.submit``.
    validate_s: float = 0.0
    #: Drain batch this job ran in (jobs sharing a fingerprint share one).
    batch: Optional[int] = None
    #: Position of this job within its fingerprint batch (0 = the cold
    #: leader; >0 ran against the already-resident prepared program).
    batch_position: Optional[int] = None
    #: The prepared program was already resident when this job ran.
    warm: bool = False
    #: Result payload (see Scheduler._result_payload) once terminal.
    result: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    #: On-disk JSONL trace artifact, when the job requested tracing.
    trace_path: Optional[str] = None

    def to_json(self, verbose: bool = True) -> Dict[str, object]:
        """JSON-safe payload for ``GET /jobs/<id>`` (``verbose=False``
        trims the result body for the ``GET /jobs`` listing)."""
        out: Dict[str, object] = {
            "service_format": SERVICE_FORMAT,
            "id": self.id,
            "name": self.spec.name,
            "workload": self.spec.workload,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "args": list(self.spec.args),
            "train_args": list(self.spec.train_args),
            "knobs": self.spec.knobs(),
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "cache_hit": self.cache_hit,
            "batch": self.batch,
            "batch_position": self.batch_position,
            "warm": self.warm,
            "error": self.error,
            "has_trace": self.trace_path is not None,
        }
        if verbose:
            out["result"] = self.result
        return out


def cache_tier(job: Job) -> str:
    """The cache tier a job was served from — the ``tier`` label on the
    service latency histograms (``cold``/``warm``/``cache_hit``)."""
    if job.cache_hit:
        return "cache_hit"
    return "warm" if job.warm else "cold"


class JobStore:
    """Thread-safe job registry + bounded queue + warm result cache.

    All mutation happens under one lock; readers take JSON-safe
    snapshots under the same lock, so a ``GET`` polled concurrently with
    the scheduler never observes a torn job payload.
    """

    def __init__(self, queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 retain: int = DEFAULT_RETAIN,
                 registry=None):
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1 (got {queue_depth})")
        self.queue_depth = queue_depth
        self.retain = max(1, retain)
        self.registry = registry if registry is not None else METRICS
        self._lock = threading.Condition(threading.Lock())
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []          # submission order
        self._ids = itertools.count(1)
        self._cache: Dict[str, Dict[str, object]] = {}
        self._cache_job: Dict[str, str] = {}  # cache key -> producing job id
        self._latency_sum = 0.0
        self._latency_count = 0
        #: Per-fingerprint aggregate stats for ``GET /fingerprints``.
        self.fingerprints: Dict[str, Dict[str, object]] = {}
        self._closed = False

    # -- submission --------------------------------------------------------

    def _queue_len_locked(self) -> int:
        return sum(1 for j in self._jobs.values()
                   if j.state == STATE_QUEUED)

    def _retry_after_locked(self) -> float:
        """Backpressure hint: roughly one average job latency (floor 1s),
        i.e. when the scheduler should next free a queue slot."""
        if not self._latency_count:
            return 1.0
        return max(1.0, self._latency_sum / self._latency_count)

    def submit(self, spec: JobSpec, fingerprint: str,
               validate_s: float = 0.0) -> Job:
        """Register a new job.

        Returns it in ``queued`` state — or, when the warm result cache
        already holds this exact ``(fingerprint, args, knobs)``, in
        ``done`` state with ``cache_hit=True`` and the cached result
        attached.  Raises :class:`QueueFull` when the queue is at
        capacity (cache hits never consume a queue slot).
        ``validate_s`` is the submit-side validation wall time measured
        by the HTTP tier (traced as the ``job.submit`` span).

        Traced submissions bypass the cache lookup entirely: the client
        asked for a trace artifact, and a cache hit could not serve one
        (the cache key already ignores ``trace``, so an earlier untraced
        run of the same job would otherwise answer here).
        """
        key = spec.cache_key(fingerprint)
        with self._lock:
            if self._closed:
                raise RuntimeError("job store is closed")
            cached = None if spec.trace else self._cache.get(key)
            job = Job(id=f"j{next(self._ids)}", spec=spec,
                      fingerprint=fingerprint, validate_s=validate_s)
            fstats = self.fingerprints.setdefault(fingerprint, {
                "jobs": 0, "cache_hits": 0, "batches": 0,
                "cold_prepares": 0, "warm_runs": 0, "resident": False,
            })
            fstats["jobs"] += 1
            self.registry.counter("service.jobs.submitted").inc()
            if cached is not None:
                job.state = STATE_DONE
                job.cache_hit = True
                job.finished_unix = job.submitted_unix
                job.result = dict(cached)
                job.result["cached_from"] = self._cache_job.get(key)
                fstats["cache_hits"] += 1
                self.registry.counter("service.cache_hits").inc()
                self.registry.counter(f"job.{job.id}.cache_hit").inc()
                # A cache hit's whole latency is the submit-side
                # validation; it never waits in the queue.
                self.registry.histogram(labeled(
                    "service.job.total_us",
                    outcome=STATE_DONE, tier="cache_hit")).observe(
                        max(0.0, validate_s) * 1e6)
                self._remember(job)
                return job
            depth = self._queue_len_locked()
            if depth >= self.queue_depth:
                self.registry.counter("service.queue.rejected").inc()
                self._publish_backpressure_locked(depth)
                raise QueueFull(depth, self._retry_after_locked())
            self._remember(job)
            self._publish_backpressure_locked(depth + 1)
            self._lock.notify_all()
            return job

    def _publish_backpressure_locked(self, depth: int) -> None:
        """Keep the live backpressure gauges current: queue depth and
        the Retry-After hint a 429 would carry *right now*, so saturation
        is visible on ``/metrics`` before clients start seeing 429s."""
        self.registry.gauge("service.queue.depth").set(depth)
        self.registry.gauge("service.retry_after_s").set(
            round(self._retry_after_locked(), 3))

    def _remember(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._order.append(job.id)
        self._evict_locked()

    def _evict_locked(self) -> None:
        """Drop the oldest finished jobs beyond the retention cap, along
        with their per-job metrics."""
        finished = [jid for jid in self._order
                    if self._jobs[jid].state in TERMINAL_STATES]
        excess = len(finished) - self.retain
        for jid in finished[:max(0, excess)]:
            del self._jobs[jid]
            self._order.remove(jid)
            self.registry.remove(f"job.{jid}.")

    # -- scheduler side ----------------------------------------------------

    def wait_for_work(self, timeout: Optional[float] = None) -> bool:
        """Block until a queued job exists (or the store closes);
        returns True iff there is work."""
        with self._lock:
            if self._queue_len_locked() == 0 and not self._closed:
                self._lock.wait(timeout)
            return self._queue_len_locked() > 0

    def take_queued(self) -> List[Job]:
        """Claim every queued job (marking it ``running``), in
        submission order.  The scheduler groups the claimed jobs by
        fingerprint into batches."""
        now = time.time()
        with self._lock:
            claimed = [self._jobs[jid] for jid in self._order
                       if self._jobs[jid].state == STATE_QUEUED]
            for job in claimed:
                job.state = STATE_RUNNING
                job.started_unix = now
            self._publish_backpressure_locked(0)
            return claimed

    def finish(self, job: Job, state: str,
               result: Optional[Dict[str, object]] = None,
               error: Optional[str] = None,
               cacheable: bool = True) -> None:
        """Move a claimed job to a terminal state and (on success)
        populate the warm result cache."""
        assert state in TERMINAL_STATES, state
        now = time.time()
        with self._lock:
            job.state = state
            job.finished_unix = now
            job.result = result
            job.error = error
            latency = now - job.submitted_unix
            self._latency_sum += latency
            self._latency_count += 1
            queue_wait = (job.started_unix or now) - job.submitted_unix
            r = self.registry
            if state == STATE_DONE:
                r.counter("service.jobs.completed").inc()
                if cacheable and result is not None:
                    key = job.spec.cache_key(job.fingerprint)
                    self._cache[key] = dict(result)
                    self._cache_job[key] = job.id
            elif state == STATE_MISSPECULATED:
                r.counter("service.jobs.misspeculated").inc()
            else:
                r.counter("service.jobs.failed").inc()
            r.histogram("service.job.latency_us").observe(latency * 1e6)
            r.histogram("service.job.queue_wait_us").observe(
                queue_wait * 1e6)
            tier = cache_tier(job)
            r.histogram(labeled("service.job.total_us",
                                outcome=state, tier=tier)).observe(
                                    latency * 1e6)
            r.histogram(labeled("service.job.queue_wait_us",
                                outcome=state, tier=tier)).observe(
                                    queue_wait * 1e6)
            self._publish_backpressure_locked(self._queue_len_locked())
            r.gauge(f"job.{job.id}.latency_us").set(round(latency * 1e6))
            r.gauge(f"job.{job.id}.queue_wait_us").set(
                round(queue_wait * 1e6))
            if result and isinstance(result.get("misspeculations"), int):
                r.counter(f"job.{job.id}.misspeculations").inc(
                    result["misspeculations"])
            self._evict_locked()
            self._lock.notify_all()

    # -- read side ---------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def job_payload(self, job_id: str) -> Optional[Dict[str, object]]:
        """JSON-safe snapshot of one job, taken under the lock."""
        with self._lock:
            job = self._jobs.get(job_id)
            return None if job is None else job.to_json()

    def list_payload(self) -> List[Dict[str, object]]:
        """JSON-safe summaries of every retained job, newest first."""
        with self._lock:
            return [self._jobs[jid].to_json(verbose=False)
                    for jid in reversed(self._order)]

    def fingerprint_payload(self) -> Dict[str, object]:
        """The ``GET /fingerprints`` body: per-fingerprint batching and
        cache statistics."""
        with self._lock:
            return {
                "service_format": SERVICE_FORMAT,
                "fingerprints": {fp: dict(stats)
                                 for fp, stats in self.fingerprints.items()},
                "cache_entries": len(self._cache),
                "jobs_retained": len(self._jobs),
                "queue_depth": self._queue_len_locked(),
                "queue_capacity": self.queue_depth,
            }

    def counts(self) -> Dict[str, int]:
        """State -> count over retained jobs (for logs and tests)."""
        with self._lock:
            out = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                out[job.state] += 1
            return out

    def close(self) -> None:
        """Wake any scheduler blocked in :meth:`wait_for_work`."""
        with self._lock:
            self._closed = True
            self._lock.notify_all()
