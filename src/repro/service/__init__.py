"""Parallelization-as-a-service: the ``repro serve`` job API tier.

The service turns the batch pipeline into a long-running HTTP API
(ROADMAP "millions-of-users" path): clients POST MiniC programs or
named workloads as *jobs*, the scheduler fingerprints each submitted
module, batches jobs sharing a fingerprint so the on-disk profile cache
and :class:`~repro.adapt.PolicyStore` warm starts are amortized across
requests, and identical ``(fingerprint, args)`` resubmissions are served
straight from the warm result cache.

Layering (see docs/SERVICE.md):

* :mod:`repro.service.serializers` — request validation and the JSON
  response envelopes;
* :mod:`repro.service.jobstore` — job lifecycle and the bounded submit
  queue (backpressure surfaces as HTTP 429 + ``Retry-After``);
* :mod:`repro.service.scheduler` — fingerprint-batched drain loop over
  a resident prepared-program cache;
* :mod:`repro.service.app` — stdlib-only threaded HTTP tier (the
  :class:`ThreadingHTTPServer` idiom of :mod:`repro.obs.server`);
* :mod:`repro.service.client` — urllib client plus the ``repro submit``
  and ``repro jobs`` CLI entry points.
"""

from .app import SERVE_PORT_ENV, SERVE_QUEUE_ENV, ServiceApp, resolve_serve_port
from .client import ServiceClient, ServiceError
from .jobstore import (
    JOB_STATES,
    Job,
    JobStore,
    QueueFull,
    STATE_DONE,
    STATE_FAILED,
    STATE_MISSPECULATED,
    STATE_QUEUED,
    STATE_RUNNING,
)
from .scheduler import Scheduler
from .serializers import (
    SERVICE_FORMAT,
    JobSpec,
    ValidationError,
    error_payload,
    fingerprint_source,
    parse_submit,
)

__all__ = [
    "JOB_STATES", "Job", "JobSpec", "JobStore", "QueueFull",
    "SERVE_PORT_ENV", "SERVE_QUEUE_ENV", "SERVICE_FORMAT", "Scheduler",
    "ServiceApp", "ServiceClient", "ServiceError", "STATE_DONE",
    "STATE_FAILED", "STATE_MISSPECULATED", "STATE_QUEUED",
    "STATE_RUNNING", "ValidationError", "error_payload",
    "fingerprint_source", "parse_submit", "resolve_serve_port",
]
