"""Fingerprint-batched drain loop over a resident prepared-program cache.

The scheduler claims every queued job, groups the claim set by module
fingerprint (submission order preserved within and across groups), and
runs each group as one *batch*: the first job of a batch pays the cold
:func:`~repro.bench.pipeline.prepare` (itself memoized by the on-disk
profile cache, so a server restart is only as cold as ``$REPRO_CACHE_DIR``),
and every later job with the same prepare identity reuses the resident
:class:`~repro.bench.pipeline.PreparedProgram` — a warm start that skips
compile/profile/classify/transform entirely.  With ``adapt`` on, the
batch also shares :class:`~repro.adapt.PolicyStore` state, so demotions
learned by an earlier job in the batch re-plan later ones.

Execution itself goes through ``PreparedProgram.execute``; on the pool
backend the persistent worker pool stays resident across all epochs of a
job (fork once per parallel invocation, not per request — see
docs/BACKENDS.md).  Jobs run serially on the scheduler thread: the
parallelism budget belongs to the workers of the job being served, and
serial drains are what make per-job tracing with the global ``TRACER``
safe.

Terminal-state mapping (see docs/SERVICE.md):

* output matches the sequential baseline → ``done`` — even when the run
  misspeculated, as long as every misspeculation was caught and
  recovered; the payload carries squash/recovery counts and a forensics
  summary;
* output diverges → ``misspeculated`` (containment violated — this is
  the never-happens state the runtime's validation exists to prevent);
* ``SelectionError`` / guest fault / backend error → ``failed``.
"""

from __future__ import annotations

import threading
import traceback
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import METRICS, labeled
from ..obs.trace import TRACER
from ..parallel.backend import BackendError
from ..transform.plan import SelectionError
from .jobstore import (
    Job,
    JobStore,
    STATE_DONE,
    STATE_FAILED,
    STATE_MISSPECULATED,
    cache_tier,
)

#: Diagnoses included inline in a job payload (full detail lives in the
#: flight dump / trace artifacts).
MAX_INLINE_DIAGNOSES = 8


class Scheduler:
    """Drains the :class:`JobStore` on a daemon thread, batch by batch."""

    def __init__(self, store: JobStore, spool_dir: str,
                 registry=None, tracer=None):
        self.store = store
        #: Trace artifacts (``<job id>.trace.jsonl``) are spooled here.
        self.spool_dir = Path(spool_dir)
        self.registry = registry if registry is not None else METRICS
        self.tracer = tracer if tracer is not None else TRACER
        #: prepare identity -> resident PreparedProgram (the warm path).
        self._resident: Dict[Tuple, object] = {}
        self._batches = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        self._thread = threading.Thread(
            target=self._loop, name="repro-service-scheduler", daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 30.0) -> None:
        """Finish the in-flight job, then stop the drain thread."""
        self._stop.set()
        self.store.close()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    @property
    def alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _loop(self) -> None:
        while not self._stop.is_set():
            if not self.store.wait_for_work(timeout=0.2):
                continue
            claimed = self.store.take_queued()
            if claimed and not self._stop.is_set():
                self.drain(claimed)

    # -- batching ----------------------------------------------------------

    def drain(self, jobs: List[Job]) -> None:
        """Run a claim set as fingerprint batches, submission order
        preserved within each batch and across batch leaders."""
        batches: Dict[str, List[Job]] = {}
        for job in jobs:
            batches.setdefault(job.fingerprint, []).append(job)
        for fingerprint, batch in batches.items():
            self._batches += 1
            self.registry.counter("service.batches").inc()
            self.registry.histogram("service.batch.size").observe(len(batch))
            fstats = self.store.fingerprints.get(fingerprint)
            if fstats is not None:
                fstats["batches"] += 1
            for position, job in enumerate(batch):
                job.batch = self._batches
                job.batch_position = position
                self._run_job(job)

    # -- one job -----------------------------------------------------------

    def _prepare_key(self, job: Job) -> Tuple:
        spec = job.spec
        return (job.fingerprint, spec.train_args, spec.args,
                spec.checkpoint_period, spec.adapt)

    def _begin_job_trace(self, job: Job):
        """Open the per-job root span, set the ambient ``job``/``job_span``
        context every later event inherits (including events shipped back
        from forked workers), and land the phases that completed *before*
        the tracer existed — submit-side validation and queue wait — as
        synthetic spans carrying their wall-clock durations."""
        t = self.tracer
        span = t.span("job", cat="service", job=job.id,
                      fingerprint=job.fingerprint, program=job.spec.name,
                      workload=job.spec.workload, backend=job.spec.backend)
        t.set_context(job=job.id, job_span=span.attrs["span_id"])
        t.set_run_metadata(job=job.id, fingerprint=job.fingerprint)
        t.emit_span("job.submit", cat="service",
                    dur_us=max(0.0, job.validate_s) * 1e6,
                    submitted_unix=job.submitted_unix)
        started = job.started_unix or job.submitted_unix
        t.emit_span("job.queue_wait", cat="service",
                    dur_us=max(0.0, started - job.submitted_unix) * 1e6,
                    started_unix=job.started_unix)
        t.instant("job.batch", cat="service", batch=job.batch,
                  batch_position=job.batch_position)
        return span

    def _run_job(self, job: Job) -> None:
        spec = job.spec
        traced = spec.trace
        trace_path = self.spool_dir / f"{job.id}.trace.jsonl"
        job_span = None
        if traced:
            self.tracer.enable()  # resets events: the artifact is per-job
            job_span = self._begin_job_trace(job)
        try:
            try:
                self._execute(job)
            finally:
                if traced:
                    try:
                        job_span.end(state=job.state)
                        self.tracer.write_jsonl(trace_path)
                        job.trace_path = str(trace_path)
                    finally:
                        self.tracer.clear_context()
                        self.tracer.disable()
        except Exception as exc:  # noqa: BLE001 - jobs must not kill the drain
            detail = str(exc) or type(exc).__name__
            if isinstance(exc, SelectionError):
                reasons = "; ".join(exc.reasons)
                detail = f"no parallelizable loop: {reasons}"
            elif isinstance(exc, BackendError):
                detail = f"backend error: {detail}"
            elif not isinstance(exc, (SelectionError, BackendError)):
                detail = f"{type(exc).__name__}: {detail}"
                traceback.print_exc()
            self.store.finish(job, STATE_FAILED, error=detail)

    def _execute(self, job: Job) -> None:
        from ..bench.pipeline import prepare
        import time as _time

        spec = job.spec
        key = self._prepare_key(job)
        program = self._resident.get(key)
        job.warm = program is not None
        tier = cache_tier(job)
        t0 = _time.monotonic()
        with self.tracer.span("job.prepare", cat="service", tier=tier):
            if program is None:
                self.registry.counter("service.prepare.cold").inc()
                program = prepare(
                    spec.source, spec.name,
                    args=spec.train_args, ref_args=spec.args,
                    checkpoint_period=spec.checkpoint_period,
                    adapt=spec.adapt or None,
                )
                self._resident[key] = program
            else:
                self.registry.counter("service.prepare.warm").inc()
        self.registry.histogram(labeled(
            "service.job.prepare_us", tier=tier)).observe(
                (_time.monotonic() - t0) * 1e6)
        fstats = self.store.fingerprints.get(job.fingerprint)
        if fstats is not None:
            fstats["resident"] = True
            fstats["warm_runs" if job.warm else "cold_prepares"] += 1

        t0 = _time.monotonic()
        with self.tracer.span("job.execute", cat="service", tier=tier,
                              backend=spec.backend, workers=spec.workers):
            result = program.execute(
                workers=spec.workers,
                checkpoint_period=spec.checkpoint_period,
                misspec_period=spec.misspec_period,
                misspec_burst=spec.misspec_burst,
                backend=spec.backend,
                pool_workers=spec.pool_workers,
                adapt=spec.adapt or None,
            )
        exec_s = _time.monotonic() - t0
        self.registry.histogram("service.job.exec_us").observe(exec_s * 1e6)
        with self.tracer.span("job.commit", cat="service", tier=tier):
            payload = self._result_payload(job, program, result)
            matches = bool(payload["output_matches"])
            state = STATE_DONE if matches else STATE_MISSPECULATED
            # A traced run is not cached: a later cache hit could not
            # serve the trace artifact the client asked for.
            self.store.finish(job, state, result=payload,
                              cacheable=matches and not spec.trace,
                              error=None if matches else
                              "speculative output diverged from the "
                              "sequential baseline")
        self.registry.histogram(labeled(
            "service.job.execute_us", outcome=state, tier=tier)).observe(
                exec_s * 1e6)

    def _result_payload(self, job: Job, program, result) -> Dict[str, object]:
        """The Table-1/Table-3 style result rows plus misspec forensics
        summary reported by ``GET /jobs/<id>``."""
        from ..bench.figures import table3_row

        stats = result.runtime_stats
        matches = result.output == program.sequential.output
        payload: Dict[str, object] = {
            "output_matches": matches,
            "output": list(result.output),
            "return_value": result.return_value,
            "table1": {
                "program": program.name,
                "workers": result.workers,
                "speedup": round(program.speedup(result), 4),
                "sequential_cycles": program.sequential.cycles,
                "wall_cycles": result.total_wall_cycles,
            },
            "table3": table3_row(program, result),
            "misspeculations": stats.misspec_count(),
            "genuine_misspeculations": stats.misspec_count(
                include_injected=False),
            "recoveries": stats.recoveries,
            "squashed_iterations": sum(
                inv.recovered_iterations for inv in result.invocations),
            "checkpoints": stats.checkpoints,
            "invocations": stats.invocations,
            "warm": job.warm,
            "batch": job.batch,
            "batch_position": job.batch_position,
            "selected_loop": str(program.plan.ref),
            "fingerprint": job.fingerprint,
            "applied_demotions": list(program.applied_demotions),
        }
        if stats.misspec_count() > 0:
            payload["forensics"] = self._forensics_summary(result)
        return payload

    def _forensics_summary(self, result) -> Dict[str, object]:
        """Root-cause the run's misspeculations from its flight snapshot
        (same engine as ``repro explain``)."""
        from ..forensics.explain import explain_snapshot

        snapshot = getattr(result, "forensics", None) or {}
        try:
            diagnoses = explain_snapshot(snapshot)
        except Exception:  # noqa: BLE001 - forensics are best-effort
            diagnoses = []
        return {
            "diagnoses": [d.to_dict()
                          for d in diagnoses[:MAX_INLINE_DIAGNOSES]],
            "total_diagnoses": len(diagnoses),
            "flight_dump": getattr(result, "flight_dump", None),
        }
