"""Object classification: Algorithms 1 and 2 of the paper.

``classify`` partitions the loop's memory footprint (object allocation
sites) across the five logical heaps according to the profiled access
patterns:

* **short-lived** — allocated and freed within a single iteration;
* **reduction** — updated only by a single associative/commutative
  operator, with no other reads or writes;
* **unrestricted** — involved in a cross-iteration memory flow dependence
  that value prediction cannot remove;
* **private** — everything else that is written;
* **read-only** — everything else that is read.

The footprints come from the pointer-to-object profile rather than from a
static ``getFootprint`` recursion; profiled coverage plays the role of
control speculation ("limited profile coverage has minimal effect since
such code is likely removed via control speculation", §4.2).  A static
``get_footprint`` is also provided for the baseline comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.callgraph import CallGraph
from ..analysis.pointsto import PointsToAnalysis
from ..analysis.reduction import reduction_sites
from ..ir.instructions import Call, Load, Store
from ..ir.module import Function, Module
from ..profiling.data import FlowDep, LoopProfile, ValuePrediction
from .heaps import HeapKind


@dataclass
class HeapAssignment:
    """The classification result: object site -> logical heap, plus the
    speculation support the transformation must arrange."""

    loop: object  # LoopRef
    site_heaps: Dict[str, HeapKind] = field(default_factory=dict)
    redux_ops: Dict[str, str] = field(default_factory=dict)
    predictions: List[ValuePrediction] = field(default_factory=list)
    removed_deps: Set[FlowDep] = field(default_factory=set)
    residual_deps: Set[FlowDep] = field(default_factory=set)
    io_sites: Set[str] = field(default_factory=set)
    uses_control_speculation: bool = False
    unexecuted_blocks: Set[Tuple[str, str]] = field(default_factory=set)

    def sites_of(self, kind: HeapKind) -> Set[str]:
        return {s for s, k in self.site_heaps.items() if k is kind}

    @property
    def private_sites(self) -> Set[str]:
        return self.sites_of(HeapKind.PRIVATE)

    @property
    def shortlived_sites(self) -> Set[str]:
        return self.sites_of(HeapKind.SHORTLIVED)

    @property
    def readonly_sites(self) -> Set[str]:
        return self.sites_of(HeapKind.READONLY)

    @property
    def redux_sites(self) -> Set[str]:
        return self.sites_of(HeapKind.REDUX)

    @property
    def unrestricted_sites(self) -> Set[str]:
        return self.sites_of(HeapKind.UNRESTRICTED)

    @property
    def uses_value_prediction(self) -> bool:
        return bool(self.predictions)

    @property
    def uses_io_deferral(self) -> bool:
        return bool(self.io_sites)

    def counts(self) -> Dict[str, int]:
        """Static allocation sites per heap (Table 3 columns)."""
        return {
            "private": len(self.private_sites),
            "short_lived": len(self.shortlived_sites),
            "read_only": len(self.readonly_sites),
            "redux": len(self.redux_sites),
            "unrestricted": len(self.unrestricted_sites),
        }

    def extras(self) -> List[str]:
        """The 'Extras' column of Table 3."""
        out: List[str] = []
        if self.uses_value_prediction:
            out.append("Value")
        if self.uses_control_speculation:
            out.append("Control")
        if self.uses_io_deferral:
            out.append("I/O")
        return out

    def describe(self) -> str:
        lines = [f"Heap assignment for {self.loop}:"]
        for kind in (HeapKind.PRIVATE, HeapKind.SHORTLIVED, HeapKind.READONLY,
                     HeapKind.REDUX, HeapKind.UNRESTRICTED):
            sites = sorted(self.sites_of(kind))
            if sites:
                lines.append(f"  {kind.name:<12} {', '.join(sites)}")
        if self.predictions:
            lines.append("  value predictions: " +
                         "; ".join(str(p) for p in self.predictions))
        if self.io_sites:
            lines.append(f"  deferred I/O sites: {len(self.io_sites)}")
        return "\n".join(lines)


def classify(profile: LoopProfile) -> HeapAssignment:
    """Algorithm 1, driven by the loop profile."""
    from ..obs.trace import TRACER

    span = TRACER.span("pipeline.classify", cat="pipeline",
                       loop=str(profile.ref))
    assignment = HeapAssignment(loop=profile.ref)

    read = set(profile.read_sites)
    write = set(profile.write_sites)
    redux_fp = set(profile.redux_sites)

    # Short-lived: allocated and freed within one iteration, and actually
    # part of the loop's footprint.
    short_lived = profile.short_lived_sites & (read | write | redux_fp)

    # Reduction criterion: updated *only* through the reduction operator.
    redux = {o for o in redux_fp if o not in read and o not in write}
    for o in redux:
        assignment.redux_ops[o] = profile.redux_ops[o]

    # Cross-iteration flow dependences, minus those value prediction can
    # remove.  A prediction only helps if it covers *every* dependence on
    # its object.
    deps_by_obj: Dict[str, Set[FlowDep]] = {}
    for dep in profile.flow_deps:
        deps_by_obj.setdefault(dep.obj_site, set()).add(dep)

    predicted_deps: Set[FlowDep] = set()
    predictions_by_obj: Dict[str, List[ValuePrediction]] = {}
    for vp, deps in profile.value_predictions.items():
        predictions_by_obj.setdefault(vp.obj_site, []).append(vp)
        predicted_deps |= deps

    unrestricted: Set[str] = set()
    for obj, deps in deps_by_obj.items():
        if obj in short_lived or obj in redux:
            continue
        if deps <= predicted_deps:
            # Every dependence removable: commit to the predictions.
            for vp in predictions_by_obj.get(obj, []):
                assignment.predictions.append(vp)
            assignment.removed_deps |= deps
        else:
            unrestricted.add(obj)
            assignment.residual_deps |= deps

    private = write - short_lived - unrestricted - redux
    read_only = read - short_lived - unrestricted - redux - private

    for site in short_lived:
        assignment.site_heaps[site] = HeapKind.SHORTLIVED
    for site in redux:
        assignment.site_heaps[site] = HeapKind.REDUX
    for site in unrestricted:
        assignment.site_heaps[site] = HeapKind.UNRESTRICTED
    for site in private:
        assignment.site_heaps[site] = HeapKind.PRIVATE
    for site in read_only:
        assignment.site_heaps[site] = HeapKind.READONLY

    assignment.io_sites = set(profile.io_sites)
    assignment.unexecuted_blocks = set(profile.unexecuted_blocks)
    assignment.uses_control_speculation = bool(profile.unexecuted_blocks)
    if TRACER.enabled:
        from ..obs.metrics import METRICS

        counts = assignment.counts()
        for heap, n in counts.items():
            METRICS.counter(f"classify.sites.{heap}").inc(n)
        METRICS.counter("classify.predictions").inc(
            len(assignment.predictions))
        span.end(**counts)
    return assignment


def get_footprint(
    module: Module, fn: Function, blocks, pta: Optional[PointsToAnalysis] = None,
    _seen: Optional[Set[Function]] = None,
) -> Tuple[Set[str], Set[str], Set[str]]:
    """Algorithm 2, static version: (read, write, redux) footprints of a
    statement region, recursing into callees.  Object names are abstract
    points-to objects; TOP contributes the pseudo-site ``<any>``."""
    pta = pta or PointsToAnalysis(module)
    _seen = _seen if _seen is not None else set()
    reads: Set[str] = set()
    writes: Set[str] = set()
    redux: Set[str] = set()

    redux_map = reduction_sites(fn)

    def objects_of(ptr) -> Set[str]:
        s = pta.points_to(ptr)
        if s.is_top:
            return {"<any>"}
        return {str(o) for o in s.objects}

    for bb in blocks:
        for inst in bb.instructions:
            if isinstance(inst, Load):
                (redux if inst in redux_map else reads).update(
                    objects_of(inst.pointer))
            elif isinstance(inst, Store):
                (redux if inst in redux_map else writes).update(
                    objects_of(inst.pointer))
            elif isinstance(inst, Call):
                callee = inst.callee
                if callee.is_declaration or callee in _seen:
                    continue
                _seen.add(callee)
                r, w, x = get_footprint(module, callee, callee.blocks, pta, _seen)
                reads |= r
                writes |= w
                redux |= x
    return reads, writes, redux
