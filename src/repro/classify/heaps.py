"""Logical heaps and their address-space encoding (§3.2, §5.1).

Each memory object is assigned to one of five logical heaps.  At runtime
every heap occupies a fixed virtual range whose base encodes a 3-bit tag
in pointer bits 44–46, so

* a separation check is two bit operations on the pointer value, and
* the shadow-metadata address of a private byte is ``addr | SHADOW_BIT``
  (the private and shadow tags differ in exactly one bit).
"""

from __future__ import annotations

import enum

from ..interp.memory import TAG_SHIFT, heap_base_for_tag


class HeapKind(enum.IntEnum):
    """The five semantic heaps, plus the shadow heap backing privacy
    metadata.  Values are the 3-bit address tags."""

    PRIVATE = 0b001
    REDUX = 0b010
    SHORTLIVED = 0b011
    READONLY = 0b100
    UNRESTRICTED = 0b110
    # Shadow differs from PRIVATE only in bit 2 (0b001 -> 0b101): the
    # shadow address of a private byte is one OR away (§5.1).
    SHADOW = 0b101

    @property
    def base(self) -> int:
        return heap_base_for_tag(int(self))

    def __str__(self) -> str:
        return self.name.lower()


#: Bit that maps a private-heap address to its shadow-heap twin.
SHADOW_BIT = (HeapKind.SHADOW ^ HeapKind.PRIVATE) << TAG_SHIFT

#: Heaps whose loop-carried dependences are removed by privatization.
RELAXED_HEAPS = (HeapKind.PRIVATE, HeapKind.SHORTLIVED, HeapKind.REDUX)


def shadow_address(private_addr: int) -> int:
    """Shadow-metadata byte for a private byte — a single bitwise OR."""
    return private_addr | SHADOW_BIT


def tag_matches(addr: int, kind: HeapKind) -> bool:
    """The runtime separation check: does the pointer carry this tag?"""
    return (addr >> TAG_SHIFT) & 0x7 == int(kind)
