"""Classification of memory objects into logical heaps (Algorithms 1–2)."""

from .classifier import HeapAssignment, classify, get_footprint
from .heaps import RELAXED_HEAPS, SHADOW_BIT, HeapKind, shadow_address, tag_matches

__all__ = [
    "HeapAssignment", "HeapKind", "RELAXED_HEAPS", "SHADOW_BIT", "classify",
    "get_footprint", "shadow_address", "tag_matches",
]
