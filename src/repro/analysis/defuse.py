"""Def-use chains for mini-IR functions."""

from __future__ import annotations

from typing import Dict, List

from ..ir.instructions import Instruction
from ..ir.module import Function
from ..ir.values import Value


class DefUse:
    """Map from each value to the instructions using it."""

    def __init__(self, fn: Function):
        self.function = fn
        self.users: Dict[Value, List[Instruction]] = {}
        for inst in fn.instructions():
            for op in inst.operands:
                self.users.setdefault(op, []).append(inst)

    def uses_of(self, value: Value) -> List[Instruction]:
        return self.users.get(value, [])

    def is_dead(self, inst: Instruction) -> bool:
        """True for a value-producing instruction with no users and no side
        effects (loads are considered side-effect free)."""
        from ..ir.instructions import Call, Opcode

        if inst.is_terminator or isinstance(inst, Call):
            return False
        if inst.opcode == Opcode.STORE:
            return False
        return not self.uses_of(inst)
