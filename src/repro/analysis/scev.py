"""Scalar-evolution-lite: affine expressions over loop induction variables.

Pointer operands are decomposed into ``base + Σ coeff·phi + const`` where
each ``phi`` is an SSA phi node (typically a loop induction variable).
The dependence tester (:mod:`repro.analysis.deptest`) uses these to prove
that ``a[i]`` touches a different address on every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..ir.instructions import BinOp, BinOpKind, Cast, CastKind, Phi, PtrAdd
from ..ir.values import ConstInt, Value


@dataclass
class Affine:
    """``const + Σ coeffs[phi] * phi``; linear form over phi nodes."""

    const: int = 0
    coeffs: Dict[Phi, int] = field(default_factory=dict)

    def add(self, other: "Affine") -> "Affine":
        coeffs = dict(self.coeffs)
        for phi, c in other.coeffs.items():
            coeffs[phi] = coeffs.get(phi, 0) + c
        return Affine(self.const + other.const, {p: c for p, c in coeffs.items() if c})

    def negate(self) -> "Affine":
        return Affine(-self.const, {p: -c for p, c in self.coeffs.items()})

    def scale(self, factor: int) -> "Affine":
        if factor == 0:
            return Affine(0, {})
        return Affine(self.const * factor, {p: c * factor for p, c in self.coeffs.items()})

    def coeff_of(self, phi: Phi) -> int:
        return self.coeffs.get(phi, 0)

    def is_constant(self) -> bool:
        return not self.coeffs

    def depends_only_on(self, phi: Phi) -> bool:
        return all(p is phi for p in self.coeffs)

    def __repr__(self) -> str:
        terms = [str(self.const)] + [
            f"{c}*{p.short()}" for p, c in self.coeffs.items()
        ]
        return " + ".join(terms)


_MAX_DEPTH = 32


def as_affine(value: Value, depth: int = 0) -> Optional[Affine]:
    """Express ``value`` as an affine form over phis, or None if non-affine."""
    if depth > _MAX_DEPTH:
        return None
    if isinstance(value, ConstInt):
        return Affine(value.value, {})
    if isinstance(value, Phi):
        return Affine(0, {value: 1})
    if isinstance(value, Cast) and value.kind in (
        CastKind.SEXT,
        CastKind.ZEXT,
        CastKind.TRUNC,
    ):
        # Width changes are ignored; guest indices stay well within range.
        return as_affine(value.value, depth + 1)
    if isinstance(value, BinOp):
        lhs = as_affine(value.lhs, depth + 1)
        rhs = as_affine(value.rhs, depth + 1)
        if value.kind is BinOpKind.ADD and lhs and rhs:
            return lhs.add(rhs)
        if value.kind is BinOpKind.SUB and lhs and rhs:
            return lhs.add(rhs.negate())
        if value.kind is BinOpKind.MUL and lhs and rhs:
            if lhs.is_constant():
                return rhs.scale(lhs.const)
            if rhs.is_constant():
                return lhs.scale(rhs.const)
            return None
        if value.kind is BinOpKind.SHL and rhs and rhs is not None and rhs.is_constant() and lhs:
            return lhs.scale(1 << rhs.const)
        return None
    return None


def decompose_pointer(ptr: Value, depth: int = 0) -> Tuple[Value, Optional[Affine]]:
    """Strip ``ptradd``/bitcast chains: return (ultimate base, affine byte
    offset).  The offset is None when any step is non-affine."""
    offset: Optional[Affine] = Affine(0, {})
    base = ptr
    steps = 0
    while steps < _MAX_DEPTH:
        steps += 1
        if isinstance(base, PtrAdd):
            step = as_affine(base.offset)
            if step is None or offset is None:
                offset = None
            else:
                offset = offset.add(step)
            base = base.base
            continue
        if isinstance(base, Cast) and base.kind is CastKind.BITCAST:
            base = base.value
            continue
        break
    return base, offset
