"""Static analyses over the mini-IR: CFG, dominators, loops, mem2reg,
points-to, mod/ref, reductions, and loop dependences."""

from .callgraph import CallGraph
from .cfg import CFG
from .defuse import DefUse
from .depgraph import (
    DepEdge,
    DepKind,
    DOALLVerdict,
    LoopDependences,
    doall_legal_static,
)
from .dominators import DominatorTree
from .licm import hoist_loop_invariants, hoist_module
from .loops import InductionVariable, Loop, LoopInfo
from .mem2reg import promote_memory_to_registers, promote_module, promotable_allocas
from .modref import ModRefAnalysis, ModRefSummary
from .pointsto import AbstractObject, PointsToAnalysis, PointsToSet
from .reduction import (
    REDUCTION_IDENTITY,
    ReductionUpdate,
    apply_operator,
    find_reduction_updates,
    reduction_sites,
)
from .scev import Affine, as_affine, decompose_pointer

__all__ = [
    "AbstractObject", "Affine", "CallGraph", "CFG", "DefUse", "DepEdge",
    "DepKind", "DOALLVerdict", "DominatorTree", "InductionVariable", "Loop",
    "LoopDependences", "LoopInfo", "ModRefAnalysis", "ModRefSummary",
    "PointsToAnalysis", "PointsToSet", "REDUCTION_IDENTITY",
    "ReductionUpdate", "apply_operator", "as_affine", "decompose_pointer",
    "doall_legal_static", "find_reduction_updates", "hoist_loop_invariants",
    "hoist_module", "promotable_allocas",
    "promote_memory_to_registers", "promote_module", "reduction_sites",
]
