"""Control-flow graph utilities over mini-IR functions."""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.module import BasicBlock, Function


class CFG:
    """Predecessor/successor maps plus traversal orders for a function."""

    def __init__(self, fn: Function):
        self.function = fn
        self.succs: Dict[BasicBlock, List[BasicBlock]] = {}
        self.preds: Dict[BasicBlock, List[BasicBlock]] = {}
        for bb in fn.blocks:
            self.succs[bb] = bb.successors()
            self.preds.setdefault(bb, [])
        for bb in fn.blocks:
            for s in self.succs[bb]:
                self.preds.setdefault(s, []).append(bb)

    @property
    def entry(self) -> BasicBlock:
        return self.function.entry

    def reachable(self) -> Set[BasicBlock]:
        seen: Set[BasicBlock] = set()
        stack = [self.entry]
        while stack:
            bb = stack.pop()
            if bb in seen:
                continue
            seen.add(bb)
            stack.extend(self.succs.get(bb, []))
        return seen

    def reverse_postorder(self) -> List[BasicBlock]:
        """Blocks in reverse postorder of a DFS from the entry (a topological
        order for acyclic regions; loop headers precede their bodies)."""
        visited: Set[BasicBlock] = set()
        post: List[BasicBlock] = []

        # Iterative DFS so deep CFGs don't hit the recursion limit.
        stack: List[tuple] = [(self.entry, iter(self.succs.get(self.entry, [])))]
        visited.add(self.entry)
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(self.succs.get(succ, []))))
                    advanced = True
                    break
            if not advanced:
                post.append(node)
                stack.pop()
        post.reverse()
        return post

    def remove_unreachable(self) -> int:
        """Drop blocks not reachable from the entry; returns count removed."""
        live = self.reachable()
        dead = [bb for bb in self.function.blocks if bb not in live]
        for bb in dead:
            self.function.blocks.remove(bb)
        return len(dead)
