"""Call graph over a module (direct calls only, matching the mini-IR)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from ..ir.instructions import Call
from ..ir.module import Function, Module


class CallGraph:
    """Static call graph over a module's direct calls (callees and callers per function)."""
    def __init__(self, mod: Module):
        self.module = mod
        self.callees: Dict[Function, Set[Function]] = {}
        self.callers: Dict[Function, Set[Function]] = {}
        for fn in mod.functions.values():
            self.callees.setdefault(fn, set())
            self.callers.setdefault(fn, set())
        for fn in mod.defined_functions():
            for inst in fn.instructions():
                if isinstance(inst, Call):
                    self.callees[fn].add(inst.callee)
                    self.callers.setdefault(inst.callee, set()).add(fn)

    def transitive_callees(self, fn: Function) -> Set[Function]:
        """All functions reachable from ``fn`` through calls (excl. fn
        itself unless recursive)."""
        seen: Set[Function] = set()
        stack: List[Function] = list(self.callees.get(fn, ()))
        while stack:
            g = stack.pop()
            if g in seen:
                continue
            seen.add(g)
            stack.extend(self.callees.get(g, ()))
        return seen

    def is_recursive(self, fn: Function) -> bool:
        return fn in self.transitive_callees(fn)

    def functions_in_region(self, fn: Function) -> Iterator[Function]:
        """``fn`` plus every defined function transitively callable from it."""
        yield fn
        for g in self.transitive_callees(fn):
            if not g.is_declaration:
                yield g
