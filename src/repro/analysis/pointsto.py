"""Flow-insensitive points-to analysis.

This deliberately models the *weak* static analysis the paper argues
against: pointers loaded from memory, returned from calls, or produced by
integer casts are treated as pointing anywhere (``TOP``).  What remains
precise — direct uses of globals, allocas, and malloc results — is enough
to (a) elide provably-correct separation checks and (b) let the
non-speculative DOALL-only baseline parallelize simple array loops, while
failing on linked structures exactly as prior work does.

Abstract objects are allocation sites: one per global variable, alloca
instruction, and heap-allocation call site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Union

from ..ir.instructions import (
    Alloca,
    Call,
    Cast,
    CastKind,
    Load,
    Phi,
    PtrAdd,
    Select,
)
from ..ir.module import Function, Module
from ..ir.values import Argument, ConstNull, GlobalVariable, Value

HEAP_ALLOCATORS = ("malloc", "calloc", "h_alloc")


@dataclass(frozen=True)
class AbstractObject:
    """A static allocation site."""

    kind: str  # "global" | "stack" | "heap"
    name: str  # global name or instruction site id

    def __str__(self) -> str:
        return f"{self.kind}:{self.name}"


class PointsToSet:
    """Either a finite set of abstract objects, or TOP (anything)."""

    __slots__ = ("objects", "is_top")

    def __init__(self, objects: Optional[Set[AbstractObject]] = None, is_top: bool = False):
        self.objects: Set[AbstractObject] = set(objects or ())
        self.is_top = is_top

    @classmethod
    def top(cls) -> "PointsToSet":
        return cls(is_top=True)

    @classmethod
    def of(cls, *objs: AbstractObject) -> "PointsToSet":
        return cls(set(objs))

    def merge(self, other: "PointsToSet") -> bool:
        """Union ``other`` into self; returns True if self changed."""
        if self.is_top:
            return False
        if other.is_top:
            self.is_top = True
            self.objects.clear()
            return True
        before = len(self.objects)
        self.objects |= other.objects
        return len(self.objects) != before

    def may_alias(self, other: "PointsToSet") -> bool:
        if self.is_top or other.is_top:
            return True
        return bool(self.objects & other.objects)

    def is_singleton(self) -> bool:
        return not self.is_top and len(self.objects) == 1

    def __repr__(self) -> str:
        if self.is_top:
            return "PointsTo(TOP)"
        return f"PointsTo({{{', '.join(sorted(str(o) for o in self.objects))}}})"


class PointsToAnalysis:
    """Compute a points-to set for every pointer-typed value in a module."""

    def __init__(self, mod: Module):
        self.module = mod
        self.sets: Dict[Value, PointsToSet] = {}
        self._run()

    def _set_for(self, v: Value) -> PointsToSet:
        if v not in self.sets:
            self.sets[v] = PointsToSet()
        return self.sets[v]

    def _single_store_globals(self) -> Dict[GlobalVariable, Value]:
        """Global pointer variables written by exactly one store whose
        address never escapes: loads from them see the stored value's
        points-to set (the rule LLVM's GlobalOpt applies).  This is what
        lets the non-speculative baseline reason about simple programs
        like blackscholes while still failing on multi-store structures
        like dijkstra's queue."""
        from ..ir.instructions import Load, Store

        stores: Dict[GlobalVariable, list] = {}
        escaped: Set[GlobalVariable] = set()
        for fn in self.module.defined_functions():
            for inst in fn.instructions():
                for op in inst.operands:
                    if not isinstance(op, GlobalVariable):
                        continue
                    if isinstance(inst, Load) and inst.pointer is op:
                        continue
                    if isinstance(inst, Store) and inst.pointer is op and inst.value is not op:
                        stores.setdefault(op, []).append(inst.value)
                        continue
                    escaped.add(op)
        return {
            gv: values[0]
            for gv, values in stores.items()
            if len(values) == 1 and gv not in escaped
            and gv.value_type.is_pointer()
        }

    def _run(self) -> None:
        single_store = self._single_store_globals()
        # Seed the precise sources.
        for gv in self.module.globals.values():
            self.sets[gv] = PointsToSet.of(AbstractObject("global", gv.name))
        for fn in self.module.defined_functions():
            for inst in fn.instructions():
                if isinstance(inst, Alloca):
                    self.sets[inst] = PointsToSet.of(
                        AbstractObject("stack", inst.site_id())
                    )
                elif isinstance(inst, Call) and inst.callee.name in HEAP_ALLOCATORS:
                    self.sets[inst] = PointsToSet.of(
                        AbstractObject("heap", inst.site_id())
                    )

        # Iterate simple propagation rules to a fixed point.
        changed = True
        while changed:
            changed = False
            for fn in self.module.defined_functions():
                for inst in fn.instructions():
                    if not inst.type.is_pointer():
                        continue
                    if inst in self.sets and self.sets[inst].is_top:
                        continue
                    target = self._set_for(inst)
                    if isinstance(inst, Alloca):
                        pass  # seeded with its own site
                    elif isinstance(inst, PtrAdd):
                        changed |= target.merge(self._operand_set(inst.base))
                    elif isinstance(inst, Cast):
                        if inst.kind is CastKind.BITCAST:
                            changed |= target.merge(self._operand_set(inst.value))
                        else:  # inttoptr and friends: anything
                            changed |= target.merge(PointsToSet.top())
                    elif isinstance(inst, Select):
                        changed |= target.merge(self._operand_set(inst.operands[1]))
                        changed |= target.merge(self._operand_set(inst.operands[2]))
                    elif isinstance(inst, Phi):
                        for _, v in inst.incoming:
                            changed |= target.merge(self._operand_set(v))
                    elif isinstance(inst, Load):
                        pointer = inst.pointer
                        if (
                            isinstance(pointer, GlobalVariable)
                            and pointer in single_store
                        ):
                            changed |= target.merge(
                                self._operand_set(single_store[pointer]))
                        else:
                            # Field-insensitive, heap-opaque: a pointer read
                            # from memory may point anywhere.
                            changed |= target.merge(PointsToSet.top())
                    elif isinstance(inst, Call):
                        if inst.callee.name not in HEAP_ALLOCATORS:
                            changed |= target.merge(PointsToSet.top())
                    else:
                        changed |= target.merge(PointsToSet.top())
            # Arguments of address type are unconstrained callers' pointers.
            for fn in self.module.defined_functions():
                for arg in fn.args:
                    if arg.type.is_pointer():
                        changed |= self._set_for(arg).merge(self._points_of_callers(fn, arg))

    def _points_of_callers(self, fn: Function, arg: Argument) -> PointsToSet:
        out = PointsToSet()
        found_call = False
        for caller in self.module.defined_functions():
            for inst in caller.instructions():
                if isinstance(inst, Call) and inst.callee is fn:
                    found_call = True
                    if arg.index < len(inst.args):
                        out.merge(self._operand_set(inst.args[arg.index]))
                    else:
                        return PointsToSet.top()
        if not found_call:
            return PointsToSet.top()
        return out

    def _operand_set(self, v: Value) -> PointsToSet:
        from ..ir.instructions import Instruction

        if isinstance(v, ConstNull):
            return PointsToSet()
        if v in self.sets:
            return self.sets[v]
        if isinstance(v, GlobalVariable):
            return PointsToSet.of(AbstractObject("global", v.name))
        if isinstance(v, (Argument, Instruction)):
            # Not computed yet: return the (growing) set so the fixpoint
            # stays monotone instead of poisoning consumers with TOP.
            return self._set_for(v)
        if v.type.is_pointer():
            return PointsToSet.top()
        return PointsToSet()

    # -- queries -------------------------------------------------------------

    def points_to(self, v: Value) -> PointsToSet:
        return self._operand_set(v)

    def may_alias(self, a: Value, b: Value) -> bool:
        return self.points_to(a).may_alias(self.points_to(b))

    def unique_object(self, v: Value) -> Optional[AbstractObject]:
        s = self.points_to(v)
        if s.is_singleton():
            return next(iter(s.objects))
        return None
