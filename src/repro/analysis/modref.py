"""Mod/Ref summaries: which abstract objects each function may read or
write, including through its callees.

Used by the static dependence graph to model the memory effects of call
instructions, and by the DOALL-only baseline to reject loops whose callees
have unanalyzable side effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..ir.instructions import Call, Load, Store
from ..ir.module import Function, Module
from .callgraph import CallGraph
from .pointsto import AbstractObject, PointsToAnalysis, PointsToSet

#: Intrinsics with no guest-memory side effects relevant to dependences.
PURE_INTRINSICS = {
    "abs", "sqrt", "exp", "log", "pow", "fabs", "floor", "sin", "cos",
}
#: The guest PRNG carries hidden state: every call reads and advances it,
#: which is a genuine loop-carried dependence.
STATEFUL_INTRINSICS = {"rand_int", "rand_seed"}
#: Intrinsics that allocate/free but do not touch other guest objects.
ALLOCATOR_INTRINSICS = {"malloc", "calloc", "free", "h_alloc", "h_dealloc"}
#: Intrinsics with externally visible I/O effects.
IO_INTRINSICS = {"printf", "puts", "exit"}


@dataclass
class ModRefSummary:
    """What a function may modify and reference: points-to sets for
    mod/ref, plus I/O and allocation effect flags.
    """
    mod: PointsToSet = field(default_factory=PointsToSet)
    ref: PointsToSet = field(default_factory=PointsToSet)
    does_io: bool = False
    allocates: bool = False

    def merge(self, other: "ModRefSummary") -> bool:
        changed = self.mod.merge(other.mod)
        changed |= self.ref.merge(other.ref)
        if other.does_io and not self.does_io:
            self.does_io = changed = True
        if other.allocates and not self.allocates:
            self.allocates = changed = True
        return changed


class ModRefAnalysis:
    """Bottom-up interprocedural mod/ref: fixed-point propagation of
    ModRefSummary over the call graph.
    """
    def __init__(self, mod: Module, pta: Optional[PointsToAnalysis] = None):
        self.module = mod
        self.pta = pta or PointsToAnalysis(mod)
        self.callgraph = CallGraph(mod)
        self.summaries: Dict[Function, ModRefSummary] = {}
        self._run()

    def _run(self) -> None:
        for fn in self.module.functions.values():
            self.summaries[fn] = self._intrinsic_summary(fn) or ModRefSummary()

        changed = True
        while changed:
            changed = False
            for fn in self.module.defined_functions():
                summary = self.summaries[fn]
                for inst in fn.instructions():
                    if isinstance(inst, Load):
                        changed |= summary.ref.merge(self.pta.points_to(inst.pointer))
                    elif isinstance(inst, Store):
                        changed |= summary.mod.merge(self.pta.points_to(inst.pointer))
                    elif isinstance(inst, Call):
                        callee = self.summaries.get(inst.callee)
                        if callee is not None:
                            changed |= summary.merge(callee)

    def _intrinsic_summary(self, fn: Function) -> Optional[ModRefSummary]:
        if not fn.is_intrinsic and not fn.is_declaration:
            return None
        name = fn.name
        if name in PURE_INTRINSICS:
            return ModRefSummary()
        if name in STATEFUL_INTRINSICS:
            from .pointsto import AbstractObject

            prng = PointsToSet.of(AbstractObject("global", "<prng-state>"))
            return ModRefSummary(mod=prng, ref=PointsToSet(set(prng.objects)))
        if name in ALLOCATOR_INTRINSICS:
            return ModRefSummary(allocates=True)
        if name in IO_INTRINSICS:
            return ModRefSummary(does_io=True)
        if name in ("memset", "memcpy"):
            # Effects handled at the call site via argument points-to; be
            # conservative here.
            return ModRefSummary(mod=PointsToSet.top(), ref=PointsToSet.top())
        if name in ("private_read", "private_write", "check_heap", "predict_value",
                    "misspec", "loop_iter_begin", "loop_iter_end", "redux_update"):
            return ModRefSummary()  # validation intrinsics: no guest effects
        if fn.is_declaration:
            return ModRefSummary(mod=PointsToSet.top(), ref=PointsToSet.top(), does_io=True)
        return None

    def summary(self, fn: Function) -> ModRefSummary:
        return self.summaries[fn]
