"""Natural-loop detection, the loop forest, and canonical induction
variables.

The DOALL transformation (and hence everything Privateer enables) only
applies to *counted* loops: loops with a canonical induction variable
``iv = phi(init, iv + step)`` and an exit condition comparing the IV with a
loop-invariant bound.  This mirrors LLVM's ``LoopInfo`` +
``InductionDescriptor`` machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..ir.instructions import BinOp, BinOpKind, CmpPred, CondBr, ICmp, Phi
from ..ir.module import BasicBlock, Function
from ..ir.values import ConstInt, Value
from .cfg import CFG
from .dominators import DominatorTree


class Loop:
    """A natural loop: a header plus the set of blocks that can reach a
    back edge without leaving the header's dominance region."""

    def __init__(self, header: BasicBlock):
        self.header = header
        self.blocks: Set[BasicBlock] = {header}
        self.latches: List[BasicBlock] = []
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    @property
    def depth(self) -> int:
        d, p = 1, self.parent
        while p is not None:
            d += 1
            p = p.parent
        return d

    def contains_block(self, bb: BasicBlock) -> bool:
        return bb in self.blocks

    def contains_loop(self, other: "Loop") -> bool:
        node: Optional[Loop] = other
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks outside the loop that are targets of edges from inside."""
        out: List[BasicBlock] = []
        for bb in self.blocks:
            for s in bb.successors():
                if s not in self.blocks and s not in out:
                    out.append(s)
        return out

    def preheader(self, cfg: CFG) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if any."""
        outside = [p for p in cfg.preds.get(self.header, []) if p not in self.blocks]
        return outside[0] if len(outside) == 1 else None

    def __repr__(self) -> str:
        return f"<Loop header={self.header.name} blocks={len(self.blocks)} depth={self.depth}>"


@dataclass
class InductionVariable:
    """Canonical IV description: ``phi`` starts at ``init`` and advances by
    the constant ``step`` each trip; ``bound`` is the loop-invariant limit
    tested by ``compare`` in the header."""

    phi: Phi
    init: Value
    step: int
    update: BinOp
    compare: ICmp
    bound: Value
    pred: CmpPred
    exit_on_true: bool


class LoopInfo:
    """Loop forest for one function."""

    def __init__(self, fn: Function, cfg: Optional[CFG] = None,
                 domtree: Optional[DominatorTree] = None):
        self.function = fn
        self.cfg = cfg or CFG(fn)
        self.domtree = domtree or DominatorTree(fn, self.cfg)
        self.loops: List[Loop] = []
        self._block_loop: Dict[BasicBlock, Loop] = {}
        self._discover()

    def _discover(self) -> None:
        # Find back edges: tail -> head where head dominates tail.
        header_latches: Dict[BasicBlock, List[BasicBlock]] = {}
        for bb in self.cfg.reverse_postorder():
            for s in self.cfg.succs.get(bb, []):
                if self.domtree.dominates(s, bb):
                    header_latches.setdefault(s, []).append(bb)

        for header, latches in header_latches.items():
            loop = Loop(header)
            loop.latches = latches
            worklist = [latch for latch in latches if latch is not header]
            while worklist:
                bb = worklist.pop()
                if bb in loop.blocks:
                    continue
                loop.blocks.add(bb)
                worklist.extend(self.cfg.preds.get(bb, []))
            self.loops.append(loop)

        # Nest loops: smallest enclosing loop becomes the parent.
        by_size = sorted(self.loops, key=lambda l: len(l.blocks))
        for i, inner in enumerate(by_size):
            for outer in by_size[i + 1:]:
                if inner.header in outer.blocks and outer is not inner:
                    inner.parent = outer
                    outer.children.append(inner)
                    break

        # Innermost-loop map for each block.
        for loop in by_size:
            for bb in loop.blocks:
                if bb not in self._block_loop:
                    self._block_loop[bb] = loop

    def innermost_loop_of(self, bb: BasicBlock) -> Optional[Loop]:
        return self._block_loop.get(bb)

    def top_level_loops(self) -> List[Loop]:
        return [l for l in self.loops if l.parent is None]

    def loop_with_header(self, header_name: str) -> Loop:
        for loop in self.loops:
            if loop.header.name == header_name:
                return loop
        raise KeyError(f"no loop with header {header_name!r}")

    # -- canonical induction variables -----------------------------------

    def is_loop_invariant(self, value: Value, loop: Loop) -> bool:
        """A value is invariant if it is not produced inside the loop."""
        from ..ir.instructions import Instruction

        if not isinstance(value, Instruction):
            return True
        return value.parent not in loop.blocks

    def find_induction_variable(self, loop: Loop) -> Optional[InductionVariable]:
        """Match the canonical pattern produced by lowering a counted
        ``for`` loop after mem2reg."""
        preheader = loop.preheader(self.cfg)
        if preheader is None or len(loop.latches) != 1:
            return None
        latch = loop.latches[0]

        term = loop.header.terminator
        if not isinstance(term, CondBr):
            return None
        cond = term.cond
        if not isinstance(cond, ICmp):
            return None
        exit_true = term.if_true not in loop.blocks
        exit_false = term.if_false not in loop.blocks
        if exit_true == exit_false:
            return None

        for inst in loop.header.instructions:
            if not isinstance(inst, Phi):
                continue
            init = update = None
            for bb, v in inst.incoming:
                if bb is preheader:
                    init = v
                elif bb is latch:
                    update = v
            if init is None or update is None:
                continue
            if not isinstance(update, BinOp) or update.kind not in (
                BinOpKind.ADD,
                BinOpKind.SUB,
            ):
                continue
            # iv' = iv +/- const
            step: Optional[int] = None
            if update.lhs is inst and isinstance(update.rhs, ConstInt):
                step = update.rhs.value
            elif (
                update.kind is BinOpKind.ADD
                and update.rhs is inst
                and isinstance(update.lhs, ConstInt)
            ):
                step = update.lhs.value
            if step is None:
                continue
            if update.kind is BinOpKind.SUB:
                step = -step
            if step == 0:
                continue
            # Exit condition must compare the IV against an invariant bound.
            if cond.lhs is inst and self.is_loop_invariant(cond.rhs, loop):
                bound = cond.rhs
            elif cond.rhs is inst and self.is_loop_invariant(cond.lhs, loop):
                bound = cond.lhs
            else:
                continue
            if not self.is_loop_invariant(init, loop):
                continue
            return InductionVariable(
                phi=inst,
                init=init,
                step=step,
                update=update,
                compare=cond,
                bound=bound,
                pred=cond.pred,
                exit_on_true=exit_true,
            )
        return None
