"""Static loop dependence analysis and non-speculative DOALL legality.

This is the compiler's "pessimistic" view of the program — the view that,
per the paper's motivation, fails on programs that reuse data structures.
The speculative pipeline refines it with profile information (§4.3); the
DOALL-only baseline (Figure 7) uses it directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..ir.instructions import Call, Instruction, Load, Phi, Store
from ..ir.module import Function, Module
from ..ir.types import I8
from .loops import InductionVariable, Loop, LoopInfo
from .modref import ModRefAnalysis
from .pointsto import PointsToAnalysis, PointsToSet
from .scev import Affine, decompose_pointer


class DepKind(enum.Enum):
    """Memory dependence kind: flow (W->R), anti (R->W), or output (W->W)."""
    FLOW = "flow"     # write -> read
    ANTI = "anti"     # read -> write
    OUTPUT = "output"  # write -> write


@dataclass
class DepEdge:
    """One memory dependence between two instructions, with its kind,
    loop-carried flag, and the analysis reason that produced it.
    """
    src: Instruction
    dst: Instruction
    kind: DepKind
    loop_carried: bool
    reason: str = ""

    def __repr__(self) -> str:
        lc = "LC" if self.loop_carried else "II"
        return (
            f"<Dep {self.kind.value}/{lc} {self.src.site_id()} -> "
            f"{self.dst.site_id()} ({self.reason})>"
        )


@dataclass
class _Access:
    inst: Instruction
    is_read: bool
    is_write: bool
    points: PointsToSet
    offset: Optional[Affine]
    size: int


def _access_size(inst: Instruction) -> int:
    if isinstance(inst, Load):
        return inst.type.size
    if isinstance(inst, Store):
        try:
            return inst.value.type.size
        except Exception:
            return 8
    return 1


class LoopDependences:
    """All loop-carried memory and scalar dependences of one loop."""

    def __init__(
        self,
        module: Module,
        loop: Loop,
        loop_info: LoopInfo,
        pta: Optional[PointsToAnalysis] = None,
        modref: Optional[ModRefAnalysis] = None,
    ):
        self.module = module
        self.loop = loop
        self.loop_info = loop_info
        self.pta = pta or PointsToAnalysis(module)
        self.modref = modref or ModRefAnalysis(module, self.pta)
        self.iv: Optional[InductionVariable] = loop_info.find_induction_variable(loop)
        self.accesses: List[_Access] = []
        self.has_io = False
        self._collect()

    # -- access collection -------------------------------------------------

    def _collect(self) -> None:
        for bb in sorted(self.loop.blocks, key=lambda b: b.name):
            for inst in bb.instructions:
                if isinstance(inst, Load):
                    base, offset = decompose_pointer(inst.pointer)
                    self.accesses.append(
                        _Access(inst, True, False, self.pta.points_to(base),
                                offset, _access_size(inst))
                    )
                elif isinstance(inst, Store):
                    base, offset = decompose_pointer(inst.pointer)
                    self.accesses.append(
                        _Access(inst, False, True, self.pta.points_to(base),
                                offset, _access_size(inst))
                    )
                elif isinstance(inst, Call):
                    summary = self.modref.summary(inst.callee)
                    if summary.does_io:
                        self.has_io = True
                    ref_nonempty = summary.ref.is_top or summary.ref.objects
                    mod_nonempty = summary.mod.is_top or summary.mod.objects
                    if ref_nonempty or mod_nonempty:
                        points = PointsToSet()
                        points.merge(summary.ref)
                        points.merge(summary.mod)
                        self.accesses.append(
                            _Access(inst, bool(ref_nonempty), bool(mod_nonempty),
                                    points, None, 1)
                        )

    # -- pairwise tests ------------------------------------------------------

    def _pair_loop_carried(self, a: _Access, b: _Access) -> Optional[str]:
        """Return a reason string if a loop-carried dependence between the
        two accesses cannot be ruled out, else None."""
        if not a.points.may_alias(b.points):
            return None
        iv = self.iv
        if (
            iv is not None
            and a.points.is_singleton()
            and b.points.is_singleton()
            and a.points.objects == b.points.objects
            and a.offset is not None
            and b.offset is not None
            and self._symbolic_parts_match(a.offset, b.offset, iv.phi)
        ):
            ca, cb = a.offset.coeff_of(iv.phi), b.offset.coeff_of(iv.phi)
            da, db = a.offset.const, b.offset.const
            size = max(a.size, b.size)
            if ca == cb:
                if ca == 0:
                    # Same address (or fixed disjoint addresses) every trip.
                    if abs(da - db) >= size:
                        return None
                    return "same location every iteration"
                if da == db and abs(ca) >= size:
                    # a[i] vs a[i]: different iterations touch different
                    # elements; only an intra-iteration dependence.
                    return None
                delta = da - db
                if delta % ca != 0 and abs(delta % ca) >= size and abs(ca) - abs(delta % ca) >= size:
                    return None  # interleaved, never-overlapping strides
                return "strided accesses may collide across iterations"
            return "differing strides"
        return "unanalyzable addresses may alias"

    def _symbolic_parts_match(self, a: Affine, b: Affine, iv_phi) -> bool:
        """The two offsets may mention phis other than this loop's IV
        (e.g. an enclosing loop's counter) as long as those phis are
        invariant here and appear with equal coefficients — then they act
        as a common symbolic constant and the SIV tests below apply."""
        other = set(a.coeffs) | set(b.coeffs)
        other.discard(iv_phi)
        for phi in other:
            if a.coeffs.get(phi, 0) != b.coeffs.get(phi, 0):
                return False
            if phi.parent in self.loop.blocks:
                return False  # varies within this loop: not comparable
        return True

    def loop_carried_memory_deps(self) -> List[DepEdge]:
        edges: List[DepEdge] = []
        n = len(self.accesses)
        for i in range(n):
            for j in range(n):
                a, b = self.accesses[i], self.accesses[j]
                if not a.is_write and not b.is_write:
                    continue
                reason = self._pair_loop_carried(a, b)
                if reason is None:
                    continue
                if a.is_write and b.is_read:
                    edges.append(DepEdge(a.inst, b.inst, DepKind.FLOW, True, reason))
                if a.is_read and b.is_write:
                    edges.append(DepEdge(a.inst, b.inst, DepKind.ANTI, True, reason))
                if a.is_write and b.is_write and i <= j:
                    edges.append(DepEdge(a.inst, b.inst, DepKind.OUTPUT, True, reason))
        return edges

    def scalar_loop_carried_phis(self) -> List[Phi]:
        """Header phis other than the canonical IV: each is a scalar cycle
        (e.g. an accumulator kept in a register)."""
        out: List[Phi] = []
        for inst in self.loop.header.instructions:
            if isinstance(inst, Phi):
                if self.iv is not None and inst is self.iv.phi:
                    continue
                out.append(inst)
        return out


@dataclass
class DOALLVerdict:
    """Static DOALL legality answer: legal, or the reasons it is not."""
    legal: bool
    reasons: List[str]

    def __bool__(self) -> bool:
        return self.legal


def doall_legal_static(module: Module, loop: Loop, loop_info: LoopInfo,
                       pta: Optional[PointsToAnalysis] = None,
                       modref: Optional[ModRefAnalysis] = None) -> DOALLVerdict:
    """Non-speculative DOALL legality: the test the DOALL-only baseline
    applies (no privatization, no reductions, no speculation)."""
    reasons: List[str] = []
    deps = LoopDependences(module, loop, loop_info, pta, modref)
    if deps.iv is None:
        reasons.append("no canonical induction variable")
    if deps.has_io:
        reasons.append("loop performs I/O")
    scalar = deps.scalar_loop_carried_phis()
    if scalar:
        names = ", ".join(p.short() for p in scalar)
        reasons.append(f"scalar loop-carried values: {names}")
    mem = deps.loop_carried_memory_deps()
    if mem:
        # Summarize by reason to keep verdicts readable.
        seen = {}
        for e in mem:
            seen.setdefault(e.reason, 0)
            seen[e.reason] += 1
        for reason, count in sorted(seen.items()):
            reasons.append(f"{count} loop-carried memory dep(s): {reason}")
    return DOALLVerdict(not reasons, reasons)
