"""Dominator tree and dominance frontiers.

Implements the Cooper–Harvey–Kennedy "simple, fast dominance" algorithm,
which is the standard choice for compiler IRs of this size, plus the
dominance-frontier computation used by mem2reg's phi placement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.module import BasicBlock, Function
from .cfg import CFG


class DominatorTree:
    """Immediate-dominator tree and dominance frontiers for one
    function (Cooper-Harvey-Kennedy iteration over the CFG).
    """
    def __init__(self, fn: Function, cfg: Optional[CFG] = None):
        self.function = fn
        self.cfg = cfg or CFG(fn)
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._order_index: Dict[BasicBlock, int] = {}
        self._compute()

    def _compute(self) -> None:
        rpo = self.cfg.reverse_postorder()
        self._order_index = {bb: i for i, bb in enumerate(rpo)}
        entry = self.cfg.entry
        self.idom = {bb: None for bb in rpo}
        self.idom[entry] = entry

        changed = True
        while changed:
            changed = False
            for bb in rpo:
                if bb is entry:
                    continue
                preds = [
                    p for p in self.cfg.preds.get(bb, []) if self.idom.get(p) is not None
                ]
                if not preds:
                    continue
                new_idom = preds[0]
                for p in preds[1:]:
                    new_idom = self._intersect(p, new_idom)
                if self.idom[bb] is not new_idom:
                    self.idom[bb] = new_idom
                    changed = True

    def _intersect(self, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        idx = self._order_index
        while a is not b:
            while idx[a] > idx[b]:
                a = self.idom[a]  # type: ignore[assignment]
            while idx[b] > idx[a]:
                b = self.idom[b]  # type: ignore[assignment]
        return a

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        node: Optional[BasicBlock] = b
        entry = self.cfg.entry
        while node is not None:
            if node is a:
                return True
            if node is entry:
                return False
            node = self.idom.get(node)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def children(self) -> Dict[BasicBlock, List[BasicBlock]]:
        out: Dict[BasicBlock, List[BasicBlock]] = {bb: [] for bb in self.idom}
        for bb, parent in self.idom.items():
            if parent is not None and parent is not bb:
                out[parent].append(bb)
        return out

    def dominance_frontiers(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        df: Dict[BasicBlock, Set[BasicBlock]] = {bb: set() for bb in self.idom}
        for bb in self.idom:
            preds = self.cfg.preds.get(bb, [])
            if len(preds) < 2:
                continue
            for p in preds:
                if p not in self.idom:
                    continue
                runner: Optional[BasicBlock] = p
                while runner is not None and runner is not self.idom[bb]:
                    df[runner].add(bb)
                    if runner is self.cfg.entry:
                        break
                    runner = self.idom.get(runner)
        return df
