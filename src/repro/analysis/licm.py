"""Loop-invariant code motion.

Runs after mem2reg, before profiling — mirroring the LLVM cleanups the
paper's compiler depends on.  Two kinds of hoisting:

* **pure computations** (binops, comparisons, casts, pointer arithmetic,
  selects) whose operands are loop-invariant move to the preheader;
* **loads from global variables** move to the preheader when no store or
  unanalyzable call inside the loop can modify the global (checked with
  points-to + mod/ref).  This is what makes a loop bound like
  ``for (i = 0; i < numOptions; i++)`` recognizable as a canonical
  induction variable.

Loads are only hoisted when the pointer is a global (always mapped, so
executing the load early can never fault even for zero-trip loops).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.instructions import (
    BinOp,
    BinOpKind,
    Call,
    Cast,
    FCmp,
    ICmp,
    Instruction,
    Load,
    PtrAdd,
    Select,
    Store,
)
from ..ir.module import Function, Module
from ..ir.values import GlobalVariable, Value
from .cfg import CFG
from .loops import Loop, LoopInfo
from .modref import ModRefAnalysis
from .pointsto import PointsToAnalysis, PointsToSet

_PURE = (BinOp, ICmp, FCmp, Cast, PtrAdd, Select)

#: Division/remainder can trap; never speculate them out of the loop.
_TRAPPING = {BinOpKind.DIV, BinOpKind.REM}


def _is_invariant_operand(v: Value, loop: Loop, hoisted: Set[Instruction]) -> bool:
    if not isinstance(v, Instruction):
        return True  # constants, arguments, globals
    if v in hoisted:
        return True
    return v.parent not in loop.blocks


def _loop_mod_set(module: Module, loop: Loop, pta: PointsToAnalysis,
                  modref: ModRefAnalysis) -> PointsToSet:
    """Everything the loop may write (including through callees)."""
    mods = PointsToSet()
    for bb in loop.blocks:
        for inst in bb.instructions:
            if isinstance(inst, Store):
                mods.merge(pta.points_to(inst.pointer))
            elif isinstance(inst, Call):
                summary = modref.summary(inst.callee)
                mods.merge(summary.mod)
                if summary.allocates:
                    # Fresh objects can't alias pre-existing globals.
                    pass
    return mods


def hoist_loop_invariants(
    module: Module,
    fn: Function,
    pta: Optional[PointsToAnalysis] = None,
    modref: Optional[ModRefAnalysis] = None,
) -> int:
    """Hoist invariants in every loop of ``fn``; returns the number of
    instructions moved."""
    info = LoopInfo(fn)
    if not info.loops:
        return 0
    pta = pta or PointsToAnalysis(module)
    modref = modref or ModRefAnalysis(module, pta)
    cfg = info.cfg
    moved = 0

    # Innermost loops first, so invariants can bubble outward pass by pass.
    for loop in sorted(info.loops, key=lambda l: l.depth, reverse=True):
        preheader = loop.preheader(cfg)
        if preheader is None or preheader.terminator is None:
            continue
        mods = _loop_mod_set(module, loop, pta, modref)
        hoisted: Set[Instruction] = set()
        changed = True
        while changed:
            changed = False
            for bb in sorted(loop.blocks, key=lambda b: b.name):
                for inst in list(bb.instructions):
                    if inst in hoisted:
                        continue
                    if not _can_hoist(inst, loop, hoisted, mods, pta):
                        continue
                    bb.remove(inst)
                    preheader.insert(len(preheader.instructions) - 1, inst)
                    hoisted.add(inst)
                    moved += 1
                    changed = True
    return moved


def _can_hoist(inst: Instruction, loop: Loop, hoisted: Set[Instruction],
               mods: PointsToSet, pta: PointsToAnalysis) -> bool:
    if isinstance(inst, _PURE):
        if isinstance(inst, BinOp) and inst.kind in _TRAPPING:
            return False
        return all(_is_invariant_operand(op, loop, hoisted)
                   for op in inst.operands)
    if isinstance(inst, Load):
        pointer = inst.pointer
        if not isinstance(pointer, GlobalVariable):
            return False  # only always-mapped addresses are speculation-safe
        if not _is_invariant_operand(pointer, loop, hoisted):
            return False
        return not mods.may_alias(pta.points_to(pointer))
    return False


def hoist_module(module: Module) -> int:
    """Run LICM over every defined function; returns instructions moved."""
    pta = PointsToAnalysis(module)
    modref = ModRefAnalysis(module, pta)
    total = 0
    for fn in module.defined_functions():
        total += hoist_loop_invariants(module, fn, pta, modref)
    return total
