"""Static recognition of associative/commutative reduction updates.

Algorithm 2 of the paper looks for operation sequences that
"syntactically resemble an associative and commutative reduction
operation": a load from pointer ``p``, an assoc+comm binary op combining
the loaded value with new data, and a store of the result back through a
pointer that names the same location.

The recognizer returns :class:`ReductionUpdate` records tying together the
load, the operator, and the store; classification uses them to build the
reduction footprint, and the runtime uses the operator identity/merge
functions when privatizing the reduction heap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ir.instructions import BinOp, BinOpKind, Instruction, Load, Select, Store
from ..ir.module import Function
from ..ir.values import Value

#: Identity element for each reduction operator.
REDUCTION_IDENTITY: Dict[BinOpKind, float] = {
    BinOpKind.ADD: 0,
    BinOpKind.MUL: 1,
    BinOpKind.AND: -1,  # all-ones in two's complement
    BinOpKind.OR: 0,
    BinOpKind.XOR: 0,
    BinOpKind.FADD: 0.0,
    BinOpKind.FMUL: 1.0,
}


@dataclass
class ReductionUpdate:
    """One ``*p = *p (op) x`` update site."""

    load: Load
    operator: BinOpKind
    store: Store

    @property
    def pointer(self) -> Value:
        return self.store.pointer

    def __repr__(self) -> str:
        return f"<ReductionUpdate {self.operator.value} @ {self.store.site_id()}>"


def _same_address(a: Value, b: Value) -> bool:
    """Conservative syntactic same-address check: identical SSA value."""
    return a is b


def find_reduction_updates(fn: Function) -> List[ReductionUpdate]:
    """Find all reduction-shaped update sequences in a function."""
    out: List[ReductionUpdate] = []
    for bb in fn.blocks:
        for inst in bb.instructions:
            if not isinstance(inst, Store):
                continue
            update = _match_store(inst)
            if update is not None:
                out.append(update)
    return out


def _match_store(store: Store) -> Optional[ReductionUpdate]:
    value = store.value
    if not isinstance(value, BinOp):
        return None
    if not (value.kind.is_associative and value.kind.is_commutative):
        return None
    for operand in (value.lhs, value.rhs):
        if isinstance(operand, Load) and _same_address(operand.pointer, store.pointer):
            return ReductionUpdate(load=operand, operator=value.kind, store=store)
    return None


def reduction_sites(fn: Function) -> Dict[Instruction, ReductionUpdate]:
    """Map both the load and the store of each update to its record."""
    out: Dict[Instruction, ReductionUpdate] = {}
    for upd in find_reduction_updates(fn):
        out[upd.load] = upd
        out[upd.store] = upd
    return out


def apply_operator(kind: BinOpKind, a, b):
    """Evaluate a reduction operator on two Python numbers (used by the
    runtime when merging per-worker reduction heaps)."""
    if kind in (BinOpKind.ADD, BinOpKind.FADD):
        return a + b
    if kind in (BinOpKind.MUL, BinOpKind.FMUL):
        return a * b
    if kind is BinOpKind.AND:
        return a & b
    if kind is BinOpKind.OR:
        return a | b
    if kind is BinOpKind.XOR:
        return a ^ b
    raise ValueError(f"{kind} is not a reduction operator")
