"""Promote scalar stack slots to SSA registers (LLVM's mem2reg).

The MiniC frontend lowers every local variable to an ``alloca`` plus
loads/stores.  Before Privateer's classification runs, promotable scalars
(address never taken, never indexed, non-aggregate) are lifted into SSA
registers with phi nodes.  This matters for fidelity: without it the loop
induction variable is a memory object carrying a loop-carried flow
dependence, and no loop would ever be DOALL-able.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.instructions import Alloca, Instruction, Load, Phi, Store
from ..ir.module import BasicBlock, Function
from ..ir.values import ConstFloat, ConstInt, ConstNull, Undef, Value
from .cfg import CFG
from .dominators import DominatorTree


def promotable_allocas(fn: Function) -> List[Alloca]:
    """Allocas that are only ever loaded from or stored to (as the pointer
    operand), hold a single non-aggregate element, and never escape."""
    allocas: List[Alloca] = [
        inst
        for inst in fn.instructions()
        if isinstance(inst, Alloca)
        and isinstance(inst.count, ConstInt)
        and inst.count.value == 1
        and not inst.allocated_type.is_aggregate()
    ]
    promotable: List[Alloca] = []
    for alloca in allocas:
        ok = True
        for inst in fn.instructions():
            for op in inst.operands:
                if op is not alloca:
                    continue
                if isinstance(inst, Load):
                    continue
                if isinstance(inst, Store) and inst.pointer is alloca and inst.value is not alloca:
                    continue
                ok = False
            if not ok:
                break
        if ok:
            promotable.append(alloca)
    return promotable


def _default_value(alloca: Alloca) -> Value:
    ty = alloca.allocated_type
    if ty.is_integer():
        return ConstInt(ty, 0)  # type: ignore[arg-type]
    if ty.is_float():
        return ConstFloat(ty, 0.0)  # type: ignore[arg-type]
    if ty.is_pointer():
        return ConstNull(ty)  # type: ignore[arg-type]
    return Undef(ty)


class _Promoter:
    def __init__(self, fn: Function, allocas: List[Alloca]):
        self.fn = fn
        self.cfg = CFG(fn)
        self.domtree = DominatorTree(fn, self.cfg)
        self.allocas = allocas
        self.phi_slot: Dict[Phi, Alloca] = {}

    def run(self) -> None:
        frontiers = self.domtree.dominance_frontiers()
        reachable = self.cfg.reachable()

        # Phase 1: place phis at the iterated dominance frontier of defs.
        for alloca in self.allocas:
            def_blocks: Set[BasicBlock] = {
                inst.parent  # type: ignore[misc]
                for inst in self.fn.instructions()
                if isinstance(inst, Store) and inst.pointer is alloca
            }
            has_phi: Set[BasicBlock] = set()
            worklist = [bb for bb in def_blocks if bb in reachable]
            while worklist:
                bb = worklist.pop()
                for df_block in frontiers.get(bb, ()):
                    if df_block in has_phi or df_block not in reachable:
                        continue
                    phi = Phi(alloca.allocated_type, name=f"{alloca.name or 'mem'}.phi")
                    df_block.insert(0, phi)
                    self.phi_slot[phi] = alloca
                    has_phi.add(df_block)
                    if df_block not in def_blocks:
                        worklist.append(df_block)

        # Phase 2: rename along the dominator tree.
        stacks: Dict[Alloca, List[Value]] = {a: [_default_value(a)] for a in self.allocas}
        alloca_set = set(self.allocas)
        self._rename(self.cfg.entry, stacks, alloca_set, set())

        # Phase 3: delete the allocas and their dead loads/stores.
        for bb in self.fn.blocks:
            bb.instructions = [
                inst
                for inst in bb.instructions
                if not (
                    (isinstance(inst, Alloca) and inst in alloca_set)
                    or (isinstance(inst, Load) and inst.pointer in alloca_set)
                    or (isinstance(inst, Store) and inst.pointer in alloca_set)
                )
            ]

    def _rename(
        self,
        bb: BasicBlock,
        stacks: Dict[Alloca, List[Value]],
        alloca_set: Set[Alloca],
        visited: Set[BasicBlock],
    ) -> None:
        # Iterative DFS over the dominator tree with explicit push counts so
        # the value stacks unwind correctly.
        children = self.domtree.children()
        work: List[tuple] = [("visit", bb)]
        while work:
            action, node = work.pop()
            if action == "pop":
                for slot, count in node:  # node is a list of (alloca, pushes)
                    for _ in range(count):
                        stacks[slot].pop()
                continue
            if node in visited:
                continue
            visited.add(node)
            pushes: Dict[Alloca, int] = {}

            replacements: Dict[Value, Value] = {}
            new_insts: List[Instruction] = []
            for inst in node.instructions:
                if isinstance(inst, Phi) and inst in self.phi_slot:
                    slot = self.phi_slot[inst]
                    stacks[slot].append(inst)
                    pushes[slot] = pushes.get(slot, 0) + 1
                    new_insts.append(inst)
                elif isinstance(inst, Load) and inst.pointer in alloca_set:
                    replacements[inst] = stacks[inst.pointer][-1]  # type: ignore[index]
                elif isinstance(inst, Store) and inst.pointer in alloca_set:
                    slot = inst.pointer  # type: ignore[assignment]
                    value = replacements.get(inst.value, inst.value)
                    stacks[slot].append(value)
                    pushes[slot] = pushes.get(slot, 0) + 1
                else:
                    for old, new in replacements.items():
                        inst.replace_operand(old, new)
                    new_insts.append(inst)
            # Propagate replacements into *later* blocks via the stacks (done)
            # and rewrite any remaining uses in this function lazily below.
            if replacements:
                self._pending_replacements.update(replacements)

            # Fill phi arms in CFG successors.
            for succ in self.cfg.succs.get(node, []):
                for inst in succ.instructions:
                    if isinstance(inst, Phi) and inst in self.phi_slot:
                        slot = self.phi_slot[inst]
                        inst.add_incoming(node, stacks[slot][-1])

            work.append(("pop", list(pushes.items())))
            for child in children.get(node, []):
                work.append(("visit", child))

    _pending_replacements: Dict[Value, Value]


def _prune_dead_phis(fn: Function) -> int:
    """Remove phis with no (transitive) non-phi users.

    Blind phi placement at dominance frontiers creates phis for variables
    that are dead across the join (e.g. an inner-loop counter at the outer
    loop's header).  Such phis would look like loop-carried scalar state
    and wrongly disqualify loops from DOALL, so prune them — this makes
    the construction semi-pruned SSA, like LLVM's.
    """
    # A phi is live iff it is reachable, through phi operands, from some
    # non-phi instruction.  This handles cycles of mutually-referencing
    # dead phis, which a simple no-users fixpoint would keep forever.
    live: Set[Phi] = set()
    worklist: List[Phi] = []
    for inst in fn.instructions():
        if isinstance(inst, Phi):
            continue
        for op in inst.operands:
            if isinstance(op, Phi) and op not in live:
                live.add(op)
                worklist.append(op)
    while worklist:
        phi = worklist.pop()
        for _bb, value in phi.incoming:
            if isinstance(value, Phi) and value not in live:
                live.add(value)
                worklist.append(value)

    removed_total = 0
    for bb in fn.blocks:
        dead = [i for i in bb.instructions if isinstance(i, Phi) and i not in live]
        for phi in dead:
            bb.remove(phi)
            removed_total += 1
    return removed_total


def promote_memory_to_registers(fn: Function) -> int:
    """Run mem2reg on ``fn``; returns the number of allocas promoted."""
    allocas = promotable_allocas(fn)
    if not allocas:
        return 0
    promoter = _Promoter(fn, allocas)
    promoter._pending_replacements = {}
    promoter.run()
    # Rewrite any uses of deleted loads that appear in blocks dominated by
    # the definition but visited before the replacement map was recorded.
    if promoter._pending_replacements:
        for inst in fn.instructions():
            for old, new in promoter._pending_replacements.items():
                inst.replace_operand(old, new)
    _prune_dead_phis(fn)
    return len(allocas)


def promote_module(mod) -> int:
    """Run mem2reg on every defined function in a module."""
    total = 0
    for fn in mod.defined_functions():
        total += promote_memory_to_registers(fn)
    return total
