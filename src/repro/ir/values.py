"""Value hierarchy for the Privateer mini-IR.

Everything that can appear as an operand is a :class:`Value`: constants,
function arguments, global variables, functions, and instruction results.
Values carry their type; instructions are defined in
:mod:`repro.ir.instructions`.
"""

from __future__ import annotations

import itertools
import struct as _struct
from typing import Optional

from .types import (
    BOOL,
    F64,
    I64,
    FloatType,
    IntType,
    IRTypeError,
    PointerType,
    Type,
)

_value_ids = itertools.count(1)


class Value:
    """Base class for every IR value."""

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name
        self.uid = next(_value_ids)
        #: Interpreter fast path: non-None for compile-time constants.
        self.cval = None

    def short(self) -> str:
        """Compact operand spelling used by the printer."""
        return f"%{self.name or self.uid}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.short()}: {self.type}>"


class Constant(Value):
    """Base class for compile-time constants."""


class ConstInt(Constant):
    """Integer constant, wrapped to its type's width."""
    def __init__(self, type_: IntType, value: int):
        if not isinstance(type_, IntType):
            raise IRTypeError(f"ConstInt requires an integer type, got {type_}")
        super().__init__(type_)
        self.value = type_.wrap(int(value))
        self.cval = self.value

    def short(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstInt)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class ConstFloat(Constant):
    """Floating-point constant, stored at its type's precision."""
    def __init__(self, type_: FloatType, value: float):
        if not isinstance(type_, FloatType):
            raise IRTypeError(f"ConstFloat requires a float type, got {type_}")
        super().__init__(type_)
        # Round-trip through the storage width so f32 constants behave
        # like their in-memory representation.
        if type_.bits == 32:
            value = _struct.unpack("<f", _struct.pack("<f", float(value)))[0]
        self.value = float(value)
        self.cval = self.value

    def short(self) -> str:
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstFloat)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class ConstNull(Constant):
    """The null pointer."""

    def __init__(self, type_: Optional[PointerType] = None):
        super().__init__(type_ or PointerType())
        self.cval = 0

    def short(self) -> str:
        return "null"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstNull)

    def __hash__(self) -> int:
        return hash("null")


class Undef(Constant):
    """An undefined value of a given type (used for padding/initializers)."""

    def __init__(self, type_: Type):
        super().__init__(type_)
        self.cval = 0

    def short(self) -> str:
        return "undef"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: Type, name: str, index: int):
        super().__init__(type_, name)
        self.index = index


class GlobalValue(Value):
    """Base for module-level values (globals and functions).

    A ``GlobalValue`` used as an operand always has pointer type: globals
    denote the *address* of their storage.
    """

    def short(self) -> str:
        return f"@{self.name}"


class GlobalVariable(GlobalValue):
    """A module-level variable.

    ``value_type`` is the type of the storage; the value itself has pointer
    type.  ``initializer`` is either ``None`` (zero-initialized), a
    :class:`bytes` blob, or a flat list of constants laid out in order.
    """

    def __init__(
        self,
        name: str,
        value_type: Type,
        initializer: Optional[object] = None,
        constant: bool = False,
    ):
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.constant = constant

    @property
    def byte_size(self) -> int:
        return self.value_type.size


class GlobalString(GlobalVariable):
    """A NUL-terminated constant string in global storage."""

    def __init__(self, name: str, text: str):
        data = text.encode("utf-8") + b"\x00"
        from .types import ArrayType, I8  # local import to avoid cycle noise

        super().__init__(name, ArrayType(I8, len(data)), initializer=data, constant=True)
        self.text = text


def const_int(value: int, type_: IntType = I64) -> ConstInt:
    return ConstInt(type_, value)


def const_float(value: float, type_: FloatType = F64) -> ConstFloat:
    return ConstFloat(type_, value)


def const_bool(value: bool) -> ConstInt:
    return ConstInt(BOOL, 1 if value else 0)


TRUE = const_bool(True)
FALSE = const_bool(False)
NULL = ConstNull()
