"""Graphviz (DOT) export for CFGs and loop dependence graphs.

Developer tooling: visualize a function's control flow (with loop nesting
and Privateer check annotations) or a loop's residual dependence edges.

    from repro.ir.dot import cfg_to_dot
    print(cfg_to_dot(module.function_named("main")))
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .instructions import Call, Instruction
from .module import BasicBlock, Function


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _block_label(bb: BasicBlock, max_instructions: int = 12) -> str:
    from .printer import format_instruction

    lines = [f"{bb.name}:"]
    shown = bb.instructions[:max_instructions]
    for inst in shown:
        lines.append("  " + format_instruction(inst))
    if len(bb.instructions) > max_instructions:
        lines.append(f"  ... ({len(bb.instructions) - max_instructions} more)")
    return "\\l".join(_escape(line) for line in lines) + "\\l"


def cfg_to_dot(fn: Function, include_instructions: bool = True,
               highlight_checks: bool = True) -> str:
    """Render a function's CFG as DOT, clustering loop bodies.

    Blocks containing Privateer validation calls are tinted so the effect
    of the transformation is visible at a glance.
    """
    from ..analysis.loops import LoopInfo
    from .instructions import PRIVATEER_INTRINSICS

    info = LoopInfo(fn)
    out: List[str] = [
        f'digraph "{_escape(fn.name)}" {{',
        '  node [shape=box, fontname="monospace", fontsize=9];',
    ]

    def has_checks(bb: BasicBlock) -> bool:
        return any(
            isinstance(i, Call) and i.callee.name in PRIVATEER_INTRINSICS
            for i in bb.instructions
        )

    for bb in fn.blocks:
        label = _block_label(bb) if include_instructions else _escape(bb.name)
        attrs = [f'label="{label}"']
        if highlight_checks and has_checks(bb):
            attrs.append('style=filled, fillcolor="#fff2cc"')
        loop = info.innermost_loop_of(bb)
        if loop is not None and bb is loop.header:
            attrs.append("penwidth=2")
        out.append(f'  "{bb.name}" [{", ".join(attrs)}];')

    for bb in fn.blocks:
        for succ in bb.successors():
            style = ""
            loop = info.innermost_loop_of(bb)
            if loop is not None and succ is loop.header and bb in loop.blocks:
                style = ' [color=blue, label="back"]'
            out.append(f'  "{bb.name}" -> "{succ.name}"{style};')

    out.append("}")
    return "\n".join(out)


def deps_to_dot(module, loop, loop_info, name: str = "deps") -> str:
    """Render a loop's loop-carried memory dependences (the ones the
    static analysis cannot rule out) as DOT."""
    from ..analysis.depgraph import LoopDependences

    deps = LoopDependences(module, loop, loop_info)
    edges = deps.loop_carried_memory_deps()
    out: List[str] = [
        f'digraph "{_escape(name)}" {{',
        '  node [shape=ellipse, fontname="monospace", fontsize=9];',
    ]
    seen: Dict[str, str] = {}

    def node(inst: Instruction) -> str:
        site = inst.site_id()
        if site not in seen:
            seen[site] = site
            out.append(f'  "{site}" [label="{_escape(site)}\\n'
                       f'{_escape(inst.opcode.value)}"];')
        return site

    colors = {"flow": "red", "anti": "orange", "output": "gray"}
    for edge in edges:
        src = node(edge.src)
        dst = node(edge.dst)
        color = colors.get(edge.kind.value, "black")
        out.append(f'  "{src}" -> "{dst}" [color={color}, '
                   f'label="{edge.kind.value}"];')
    out.append("}")
    return "\n".join(out)
