"""Textual printer for the mini-IR.

The output format is LLVM-flavoured and is used by the examples to show
the "before vs after" of the Privateer transformation (Figure 2 of the
paper), and by tests to assert on structural properties.
"""

from __future__ import annotations

from typing import List

from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Phi,
    PtrAdd,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .values import GlobalString, GlobalVariable, Value


def _op(v: Value) -> str:
    return v.short()


def format_instruction(inst: Instruction) -> str:
    if isinstance(inst, Phi):
        arms = ", ".join(f"[{_op(v)}, %{bb.name}]" for bb, v in inst.incoming)
        return f"{_op(inst)} = phi {inst.type} {arms}"
    if isinstance(inst, Alloca):
        return f"{_op(inst)} = alloca {inst.allocated_type}, count {_op(inst.count)}"
    if isinstance(inst, Load):
        return f"{_op(inst)} = load {inst.type}, {_op(inst.pointer)}"
    if isinstance(inst, Store):
        return f"store {inst.value.type} {_op(inst.value)}, {_op(inst.pointer)}"
    if isinstance(inst, PtrAdd):
        return f"{_op(inst)} = ptradd {_op(inst.base)}, {_op(inst.offset)}"
    if isinstance(inst, BinOp):
        return (
            f"{_op(inst)} = {inst.kind.value} {inst.type} "
            f"{_op(inst.lhs)}, {_op(inst.rhs)}"
        )
    if isinstance(inst, ICmp):
        return (
            f"{_op(inst)} = icmp {inst.pred.value} {inst.lhs.type} "
            f"{_op(inst.lhs)}, {_op(inst.rhs)}"
        )
    if isinstance(inst, FCmp):
        return (
            f"{_op(inst)} = fcmp {inst.pred.value} {inst.lhs.type} "
            f"{_op(inst.lhs)}, {_op(inst.rhs)}"
        )
    if isinstance(inst, Cast):
        return f"{_op(inst)} = {inst.kind.value} {_op(inst.value)} to {inst.type}"
    if isinstance(inst, Select):
        a, b = inst.operands[1], inst.operands[2]
        return f"{_op(inst)} = select {_op(inst.cond)}, {_op(a)}, {_op(b)}"
    if isinstance(inst, Call):
        args = ", ".join(_op(a) for a in inst.args)
        prefix = "" if inst.type.is_void() else f"{_op(inst)} = "
        return f"{prefix}call {inst.callee.short()}({args})"
    if isinstance(inst, Br):
        return f"br label %{inst.target.name}"
    if isinstance(inst, CondBr):
        return (
            f"condbr {_op(inst.cond)}, label %{inst.if_true.name}, "
            f"label %{inst.if_false.name}"
        )
    if isinstance(inst, Ret):
        return f"ret {_op(inst.value)}" if inst.value is not None else "ret void"
    if isinstance(inst, Unreachable):
        return "unreachable"
    return f"<unknown instruction {inst.opcode}>"


def format_block(bb: BasicBlock) -> str:
    lines = [f"{bb.name}:"]
    for inst in bb.instructions:
        note = ""
        if inst.meta.get("privateer"):
            note = f"    ; privateer: {inst.meta['privateer']}"
        lines.append(f"  {format_instruction(inst)}{note}")
    return "\n".join(lines)


def format_function(fn: Function) -> str:
    params = ", ".join(f"{a.type} {_op(a)}" for a in fn.args)
    head = f"define {fn.return_type} @{fn.name}({params})"
    if fn.is_declaration:
        return f"declare {fn.return_type} @{fn.name}({params})"
    body = "\n\n".join(format_block(bb) for bb in fn.blocks)
    return f"{head} {{\n{body}\n}}"


def format_global(gv: GlobalVariable) -> str:
    kind = "constant" if gv.constant else "global"
    if isinstance(gv, GlobalString):
        return f"@{gv.name} = {kind} {gv.value_type} c{gv.text!r}"
    init = "" if gv.initializer is None else " <initialized>"
    return f"@{gv.name} = {kind} {gv.value_type}{init}"


def format_module(mod: Module) -> str:
    parts: List[str] = [f"; module {mod.name}"]
    for st in mod.types.structs.values():
        fields = ", ".join(f"{f.type} {f.name}" for f in st.fields)
        parts.append(f"%{st.name} = struct {{ {fields} }}")
    for gv in mod.globals.values():
        parts.append(format_global(gv))
    for fn in mod.functions.values():
        parts.append(format_function(fn))
    return "\n\n".join(parts) + "\n"
