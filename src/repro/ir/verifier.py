"""Structural verifier for the mini-IR.

Run after frontend lowering and after each Privateer transformation to
catch malformed IR early.  Checks:

* every block ends in exactly one terminator (and only at the end);
* branch targets belong to the same function;
* operand types satisfy per-instruction constraints;
* instruction results are defined before use within a block ordering that
  dominates the use (approximated: defined somewhere in the function);
* calls reference functions that exist in the module.
"""

from __future__ import annotations

from typing import List, Set

from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    Instruction,
    Load,
    PtrAdd,
    Ret,
    Store,
)
from .module import Function, Module
from .types import IntType
from .values import Argument, Constant, Value


class VerificationError(Exception):
    """Raised when the IR is structurally invalid."""

    def __init__(self, errors: List[str]):
        super().__init__("; ".join(errors))
        self.errors = errors


def verify_module(mod: Module) -> None:
    errors: List[str] = []
    for fn in mod.functions.values():
        if not fn.is_declaration:
            errors.extend(_verify_function(mod, fn))
    if errors:
        raise VerificationError(errors)


def _verify_function(mod: Module, fn: Function) -> List[str]:
    errors: List[str] = []
    blocks: Set[object] = set(fn.blocks)

    defined: Set[Value] = set(fn.args)
    for inst in fn.instructions():
        if not inst.type.is_void():
            defined.add(inst)

    for bb in fn.blocks:
        term = bb.terminator
        if term is None:
            errors.append(f"{fn.name}/{bb.name}: missing terminator")
        for i, inst in enumerate(bb.instructions):
            if inst.is_terminator and i != len(bb.instructions) - 1:
                errors.append(f"{fn.name}/{bb.name}: terminator not at block end")
            errors.extend(_verify_instruction(mod, fn, bb.name, inst, defined, blocks))
    return errors


def _verify_instruction(mod, fn, bname, inst: Instruction, defined, blocks) -> List[str]:
    errors: List[str] = []
    where = f"{fn.name}/{bname}"

    for op in inst.operands:
        if op is None:
            errors.append(f"{where}: null operand in {inst.opcode.value}")
            continue
        if isinstance(op, (Constant, Argument)):
            continue
        if isinstance(op, Instruction) and op not in defined:
            errors.append(
                f"{where}: {inst.opcode.value} uses undefined value {op.short()}"
            )

    if isinstance(inst, Load) and not inst.pointer.type.is_pointer():
        errors.append(f"{where}: load from non-pointer")
    if isinstance(inst, Store) and not inst.pointer.type.is_pointer():
        errors.append(f"{where}: store to non-pointer")
    if isinstance(inst, PtrAdd):
        if not inst.base.type.is_pointer():
            errors.append(f"{where}: ptradd base is not a pointer")
        if not inst.offset.type.is_integer():
            errors.append(f"{where}: ptradd offset is not an integer")
    if isinstance(inst, BinOp):
        if inst.kind.is_float and not inst.lhs.type.is_float():
            errors.append(f"{where}: float binop on {inst.lhs.type}")
        if not inst.kind.is_float and not (
            inst.lhs.type.is_integer() or inst.lhs.type.is_pointer()
        ):
            errors.append(f"{where}: integer binop on {inst.lhs.type}")
    if isinstance(inst, Alloca):
        if not isinstance(inst.count.type, IntType):
            errors.append(f"{where}: alloca count is not an integer")
    if isinstance(inst, Call):
        if inst.callee.name not in mod.functions:
            errors.append(f"{where}: call to unknown function @{inst.callee.name}")
    if isinstance(inst, Br) and inst.target not in blocks:
        errors.append(f"{where}: branch to foreign block {inst.target.name}")
    if isinstance(inst, CondBr):
        if inst.if_true not in blocks or inst.if_false not in blocks:
            errors.append(f"{where}: condbr to foreign block")
        if not isinstance(inst.cond.type, IntType):
            errors.append(f"{where}: condbr condition is not an integer")
    if isinstance(inst, Ret):
        want_void = fn.return_type.is_void()
        if want_void and inst.value is not None:
            errors.append(f"{where}: ret with value in void function")
        if not want_void and inst.value is None:
            errors.append(f"{where}: ret void in non-void function")
    return errors
