"""Type system for the Privateer mini-IR.

The IR is byte-addressed and little-endian, mirroring the x86-64 target of
the paper's LLVM-based implementation.  Every first-class type knows its
size and alignment; struct layout follows the usual C rules (each field is
aligned to its natural alignment, the struct is padded to a multiple of its
own alignment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

POINTER_SIZE = 8
POINTER_ALIGN = 8


class IRTypeError(Exception):
    """Raised for malformed or mismatched IR types."""


class Type:
    """Base class of all IR types."""

    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def align(self) -> int:
        raise NotImplementedError

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def is_aggregate(self) -> bool:
        return isinstance(self, (ArrayType, StructType))

    def __repr__(self) -> str:
        return str(self)


@dataclass(frozen=True)
class VoidType(Type):
    """The void type: no size, usable only as a return type."""

    @property
    def size(self) -> int:
        raise IRTypeError("void has no size")

    @property
    def align(self) -> int:
        raise IRTypeError("void has no alignment")

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """Fixed-width integer.  ``signed`` controls division, comparison and
    right-shift semantics; storage is two's complement either way."""

    bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.bits not in (1, 8, 16, 32, 64):
            raise IRTypeError(f"unsupported integer width: {self.bits}")
        # Cached wrap() constants (the dataclass is frozen, so go through
        # object.__setattr__); wrap() is on the interpreter's hot path.
        object.__setattr__(self, "_mask", (1 << self.bits) - 1)
        object.__setattr__(
            self, "_max", (1 << (self.bits - 1)) - 1 if self.signed
            else (1 << self.bits) - 1)
        object.__setattr__(self, "_modulus", 1 << self.bits)

    @property
    def size(self) -> int:
        return max(1, self.bits // 8)

    @property
    def align(self) -> int:
        return self.size

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        if self.signed:
            return (1 << (self.bits - 1)) - 1
        return (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Wrap an arbitrary Python int into this type's value range."""
        value &= self._mask  # type: ignore[attr-defined]
        if self.signed and value > self._max:  # type: ignore[attr-defined]
            value -= self._modulus  # type: ignore[attr-defined]
        return value

    def __str__(self) -> str:
        prefix = "i" if self.signed else "u"
        return f"{prefix}{self.bits}"


@dataclass(frozen=True)
class FloatType(Type):
    """IEEE-754 floating point (f64 only; f32 is accepted for storage)."""

    bits: int = 64

    def __post_init__(self) -> None:
        if self.bits not in (32, 64):
            raise IRTypeError(f"unsupported float width: {self.bits}")

    @property
    def size(self) -> int:
        return self.bits // 8

    @property
    def align(self) -> int:
        return self.size

    def __str__(self) -> str:
        return f"f{self.bits}"


@dataclass(frozen=True)
class PointerType(Type):
    """Pointer to ``pointee``.  ``pointee`` may be None for an opaque
    pointer (the result of an int-to-pointer cast, for example)."""

    pointee: Optional[Type] = None

    @property
    def size(self) -> int:
        return POINTER_SIZE

    @property
    def align(self) -> int:
        return POINTER_ALIGN

    def __str__(self) -> str:
        return f"{self.pointee}*" if self.pointee is not None else "ptr"


@dataclass(frozen=True)
class ArrayType(Type):
    """Fixed-length array type with C layout."""
    element: Type
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise IRTypeError("array count must be non-negative")

    @property
    def size(self) -> int:
        return self.element.size * self.count

    @property
    def align(self) -> int:
        return self.element.align

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


@dataclass(frozen=True)
class StructField:
    """One named, typed field of a struct type."""
    name: str
    type: Type


class StructType(Type):
    """Named struct with C-style layout.

    Structs are mutable (fields may be set after creation) to allow
    recursive types such as linked-list nodes; identity is by name.
    """

    def __init__(self, name: str, fields: Optional[List[StructField]] = None):
        self.name = name
        self._fields: List[StructField] = list(fields or [])
        self._layout: Optional[Tuple[Tuple[int, ...], int, int]] = None

    @property
    def fields(self) -> List[StructField]:
        return self._fields

    def set_fields(self, fields: List[StructField]) -> None:
        self._fields = list(fields)
        self._layout = None

    def _compute_layout(self) -> Tuple[Tuple[int, ...], int, int]:
        if self._layout is None:
            offsets: List[int] = []
            offset = 0
            align = 1
            for f in self._fields:
                fa = f.type.align
                align = max(align, fa)
                offset = (offset + fa - 1) // fa * fa
                offsets.append(offset)
                offset += f.type.size
            size = (offset + align - 1) // align * align if offset else 0
            self._layout = (tuple(offsets), max(size, 0), align)
        return self._layout

    @property
    def size(self) -> int:
        return self._compute_layout()[1]

    @property
    def align(self) -> int:
        return self._compute_layout()[2]

    def field_index(self, name: str) -> int:
        for i, f in enumerate(self._fields):
            if f.name == name:
                return i
        raise IRTypeError(f"struct {self.name} has no field {name!r}")

    def field_offset(self, index: int) -> int:
        offsets = self._compute_layout()[0]
        if not 0 <= index < len(offsets):
            raise IRTypeError(f"struct {self.name}: field index {index} out of range")
        return offsets[index]

    def field_type(self, index: int) -> Type:
        return self._fields[index].type

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("struct", self.name))

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class FunctionType(Type):
    """Function signature type: return type, parameters, variadic flag."""
    return_type: Type
    param_types: Tuple[Type, ...]
    variadic: bool = False

    @property
    def size(self) -> int:
        raise IRTypeError("function type has no size")

    @property
    def align(self) -> int:
        raise IRTypeError("function type has no alignment")

    def __str__(self) -> str:
        params = ", ".join(str(t) for t in self.param_types)
        if self.variadic:
            params = params + ", ..." if params else "..."
        return f"{self.return_type} ({params})"


# Canonical singletons for the common types.
VOID = VoidType()
BOOL = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
U8 = IntType(8, signed=False)
U16 = IntType(16, signed=False)
U32 = IntType(32, signed=False)
U64 = IntType(64, signed=False)
F32 = FloatType(32)
F64 = FloatType(64)


def ptr(pointee: Optional[Type] = None) -> PointerType:
    """Convenience constructor for pointer types."""
    return PointerType(pointee)


def types_compatible(a: Type, b: Type) -> bool:
    """Structural compatibility used by the verifier: identical types, or
    any two pointers (the IR, like LLVM with opaque pointers, does not
    distinguish pointer element types at the value level)."""
    if a == b:
        return True
    if a.is_pointer() and b.is_pointer():
        return True
    return False


class TypeContext:
    """Registry of named struct types for a module."""

    def __init__(self) -> None:
        self._structs: Dict[str, StructType] = {}

    def declare_struct(self, name: str) -> StructType:
        if name not in self._structs:
            self._structs[name] = StructType(name)
        return self._structs[name]

    def define_struct(self, name: str, fields: List[StructField]) -> StructType:
        st = self.declare_struct(name)
        st.set_fields(fields)
        return st

    def get_struct(self, name: str) -> StructType:
        if name not in self._structs:
            raise IRTypeError(f"unknown struct {name!r}")
        return self._structs[name]

    def has_struct(self, name: str) -> bool:
        return name in self._structs

    @property
    def structs(self) -> Dict[str, StructType]:
        return dict(self._structs)
