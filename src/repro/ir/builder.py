"""IRBuilder: convenience layer for constructing IR, in the style of
``llvm::IRBuilder``.

The builder tracks an insertion point (a basic block) and provides one
method per instruction.  It also performs the small amount of implicit
coercion the frontend relies on (wrapping Python ints/floats in constants).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .instructions import (
    Alloca,
    BinOp,
    BinOpKind,
    Br,
    Call,
    Cast,
    CastKind,
    CmpPred,
    CondBr,
    FCmp,
    ICmp,
    Instruction,
    Load,
    PtrAdd,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .types import F64, FloatType, I64, IntType, IRTypeError, Type
from .values import ConstFloat, ConstInt, Value

Operand = Union[Value, int, float]


class IRBuilder:
    """Convenience layer for emitting IR: tracks an insertion point and
    constant-folds as it builds.
    """
    def __init__(self, module: Module, block: Optional[BasicBlock] = None):
        self.module = module
        self.block = block

    # -- positioning ---------------------------------------------------------

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise IRTypeError("builder has no insertion point")
        return self.block.parent

    def _emit(self, inst: Instruction) -> Instruction:
        if self.block is None:
            raise IRTypeError("builder has no insertion point")
        self.block.append(inst)
        return inst

    # -- operand coercion ----------------------------------------------------

    def _coerce(self, v: Operand, like: Optional[Type] = None) -> Value:
        if isinstance(v, Value):
            return v
        if isinstance(v, bool):
            return ConstInt(IntType(1), int(v))
        if isinstance(v, int):
            ty = like if isinstance(like, IntType) else I64
            return ConstInt(ty, v)
        if isinstance(v, float):
            ty = like if isinstance(like, FloatType) else F64
            return ConstFloat(ty, v)
        raise IRTypeError(f"cannot use {v!r} as an operand")

    def _coerce_pair(self, a: Operand, b: Operand) -> tuple:
        if isinstance(a, Value) and not isinstance(b, Value):
            return a, self._coerce(b, a.type)
        if isinstance(b, Value) and not isinstance(a, Value):
            return self._coerce(a, b.type), b
        return self._coerce(a), self._coerce(b)

    # -- memory ---------------------------------------------------------------

    def alloca(self, type_: Type, count: Operand = 1, name: str = "") -> Alloca:
        return self._emit(Alloca(type_, self._coerce(count, I64), name))  # type: ignore[return-value]

    def load(self, pointer: Value, type_: Type, name: str = "") -> Load:
        return self._emit(Load(pointer, type_, name))  # type: ignore[return-value]

    def store(self, value: Operand, pointer: Value) -> Store:
        return self._emit(Store(self._coerce(value), pointer))  # type: ignore[return-value]

    def ptradd(
        self,
        base: Value,
        offset: Operand,
        pointee: Optional[Type] = None,
        name: str = "",
    ) -> PtrAdd:
        return self._emit(PtrAdd(base, self._coerce(offset, I64), pointee, name))  # type: ignore[return-value]

    # -- arithmetic ------------------------------------------------------------

    _FOLDABLE_INT_OPS = {
        BinOpKind.ADD: lambda a, b: a + b,
        BinOpKind.SUB: lambda a, b: a - b,
        BinOpKind.MUL: lambda a, b: a * b,
        BinOpKind.AND: lambda a, b: a & b,
        BinOpKind.OR: lambda a, b: a | b,
        BinOpKind.XOR: lambda a, b: a ^ b,
        BinOpKind.SHL: lambda a, b: a << (b & 63),
    }

    def binop(self, kind: BinOpKind, a: Operand, b: Operand, name: str = ""):
        lhs, rhs = self._coerce_pair(a, b)
        # Fold constant integer arithmetic at build time; this removes the
        # literal-heavy address computations the frontend generates.
        if (
            isinstance(lhs, ConstInt)
            and isinstance(rhs, ConstInt)
            and kind in self._FOLDABLE_INT_OPS
            and isinstance(lhs.type, IntType)
        ):
            value = self._FOLDABLE_INT_OPS[kind](lhs.value, rhs.value)
            return ConstInt(lhs.type, value)
        return self._emit(BinOp(kind, lhs, rhs, name))  # type: ignore[return-value]

    def add(self, a: Operand, b: Operand, name: str = "") -> BinOp:
        return self.binop(BinOpKind.ADD, a, b, name)

    def sub(self, a: Operand, b: Operand, name: str = "") -> BinOp:
        return self.binop(BinOpKind.SUB, a, b, name)

    def mul(self, a: Operand, b: Operand, name: str = "") -> BinOp:
        return self.binop(BinOpKind.MUL, a, b, name)

    def div(self, a: Operand, b: Operand, name: str = "") -> BinOp:
        return self.binop(BinOpKind.DIV, a, b, name)

    def rem(self, a: Operand, b: Operand, name: str = "") -> BinOp:
        return self.binop(BinOpKind.REM, a, b, name)

    def and_(self, a: Operand, b: Operand, name: str = "") -> BinOp:
        return self.binop(BinOpKind.AND, a, b, name)

    def or_(self, a: Operand, b: Operand, name: str = "") -> BinOp:
        return self.binop(BinOpKind.OR, a, b, name)

    def xor(self, a: Operand, b: Operand, name: str = "") -> BinOp:
        return self.binop(BinOpKind.XOR, a, b, name)

    def shl(self, a: Operand, b: Operand, name: str = "") -> BinOp:
        return self.binop(BinOpKind.SHL, a, b, name)

    def shr(self, a: Operand, b: Operand, name: str = "") -> BinOp:
        return self.binop(BinOpKind.SHR, a, b, name)

    def fadd(self, a: Operand, b: Operand, name: str = "") -> BinOp:
        return self.binop(BinOpKind.FADD, a, b, name)

    def fsub(self, a: Operand, b: Operand, name: str = "") -> BinOp:
        return self.binop(BinOpKind.FSUB, a, b, name)

    def fmul(self, a: Operand, b: Operand, name: str = "") -> BinOp:
        return self.binop(BinOpKind.FMUL, a, b, name)

    def fdiv(self, a: Operand, b: Operand, name: str = "") -> BinOp:
        return self.binop(BinOpKind.FDIV, a, b, name)

    # -- comparisons -------------------------------------------------------------

    def icmp(self, pred: CmpPred, a: Operand, b: Operand, name: str = "") -> ICmp:
        lhs, rhs = self._coerce_pair(a, b)
        return self._emit(ICmp(pred, lhs, rhs, name))  # type: ignore[return-value]

    def fcmp(self, pred: CmpPred, a: Operand, b: Operand, name: str = "") -> FCmp:
        lhs, rhs = self._coerce_pair(a, b)
        return self._emit(FCmp(pred, lhs, rhs, name))  # type: ignore[return-value]

    # -- casts ---------------------------------------------------------------------

    def cast(self, kind: CastKind, value: Value, to_type: Type, name: str = ""):
        # Fold integer width/sign changes of constants at build time.
        if isinstance(value, ConstInt) and isinstance(to_type, IntType) and kind in (
            CastKind.TRUNC, CastKind.ZEXT, CastKind.SEXT,
        ):
            iv = value.value
            if kind is CastKind.ZEXT and isinstance(value.type, IntType):
                iv &= (1 << value.type.bits) - 1
            return ConstInt(to_type, iv)
        if isinstance(value, ConstInt) and isinstance(to_type, FloatType) and kind in (
            CastKind.SITOFP, CastKind.UITOFP,
        ):
            iv = value.value
            if kind is CastKind.UITOFP and isinstance(value.type, IntType):
                iv &= (1 << value.type.bits) - 1
            return ConstFloat(to_type, float(iv))
        return self._emit(Cast(kind, value, to_type, name))  # type: ignore[return-value]

    def select(self, cond: Value, a: Operand, b: Operand, name: str = "") -> Select:
        lhs, rhs = self._coerce_pair(a, b)
        return self._emit(Select(cond, lhs, rhs, name))  # type: ignore[return-value]

    # -- calls / intrinsics ----------------------------------------------------------

    def call(self, callee: Function, args: Sequence[Value], name: str = "") -> Call:
        return self._emit(Call(callee, args, name))  # type: ignore[return-value]

    def call_intrinsic(self, name: str, args: Sequence[Operand]) -> Call:
        fn = self.module.get_or_declare_intrinsic(name)
        coerced: List[Value] = [self._coerce(a) for a in args]
        return self._emit(Call(fn, coerced))  # type: ignore[return-value]

    # -- control flow ------------------------------------------------------------------

    def br(self, target: BasicBlock) -> Br:
        return self._emit(Br(target))  # type: ignore[return-value]

    def condbr(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> CondBr:
        return self._emit(CondBr(cond, if_true, if_false))  # type: ignore[return-value]

    def ret(self, value: Optional[Operand] = None) -> Ret:
        coerced = self._coerce(value) if value is not None else None
        return self._emit(Ret(coerced))  # type: ignore[return-value]

    def unreachable(self) -> Unreachable:
        return self._emit(Unreachable())  # type: ignore[return-value]
