"""Basic blocks, functions, and modules for the Privateer mini-IR."""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence

from .instructions import ALL_INTRINSICS, Br, CondBr, Instruction
from .types import (
    F64,
    FunctionType,
    I32,
    I64,
    IRTypeError,
    PointerType,
    Type,
    TypeContext,
    VOID,
)
from .values import Argument, GlobalString, GlobalValue, GlobalVariable

_block_ids = itertools.count(1)


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str = "", parent: Optional["Function"] = None):
        self.name = name or f"bb{next(_block_ids)}"
        self.parent = parent
        self.instructions: List[Instruction] = []

    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated:
            raise IRTypeError(f"block {self.name} already has a terminator")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def remove(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if isinstance(term, Br):
            return [term.target]
        if isinstance(term, CondBr):
            return [term.if_true, term.if_false]
        return []

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"


class Function(GlobalValue):
    """A function definition or declaration.

    Intrinsics (``malloc``, ``check_heap`` …) are modelled as declarations
    with :attr:`is_intrinsic` set; the interpreter and runtime give them
    their semantics.
    """

    def __init__(
        self,
        name: str,
        type_: FunctionType,
        param_names: Optional[Sequence[str]] = None,
        is_intrinsic: bool = False,
    ):
        super().__init__(type_, name)
        self.function_type = type_
        self.blocks: List[BasicBlock] = []
        self.is_intrinsic = is_intrinsic
        names = list(param_names or [])
        while len(names) < len(type_.param_types):
            names.append(f"arg{len(names)}")
        self.args: List[Argument] = [
            Argument(t, n, i) for i, (t, n) in enumerate(zip(type_.param_types, names))
        ]

    @property
    def return_type(self) -> Type:
        return self.function_type.return_type

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRTypeError(f"function {self.name} has no body")
        return self.blocks[0]

    def add_block(self, name: str = "") -> BasicBlock:
        # Block names are used as stable loop identifiers (LoopRef), so
        # keep them unique within the function.
        if name:
            existing = {bb.name for bb in self.blocks}
            if name in existing:
                suffix = 1
                while f"{name}.{suffix}" in existing:
                    suffix += 1
                name = f"{name}.{suffix}"
        bb = BasicBlock(name, parent=self)
        self.blocks.append(bb)
        return bb

    def block_named(self, name: str) -> BasicBlock:
        for bb in self.blocks:
            if bb.name == name:
                return bb
        raise KeyError(f"{self.name}: no block named {name!r}")

    def instructions(self) -> Iterator[Instruction]:
        for bb in self.blocks:
            yield from bb.instructions

    def __repr__(self) -> str:
        kind = "intrinsic" if self.is_intrinsic else ("decl" if self.is_declaration else "def")
        return f"<Function @{self.name} [{kind}]>"


class Module:
    """A translation unit: named globals, functions, and struct types."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.types = TypeContext()
        self.globals: Dict[str, GlobalVariable] = {}
        self.functions: Dict[str, Function] = {}
        self._string_counter = itertools.count()

    # -- globals ------------------------------------------------------------

    def add_global(self, gv: GlobalVariable) -> GlobalVariable:
        if gv.name in self.globals:
            raise IRTypeError(f"duplicate global {gv.name!r}")
        self.globals[gv.name] = gv
        return gv

    def global_named(self, name: str) -> GlobalVariable:
        return self.globals[name]

    def intern_string(self, text: str) -> GlobalString:
        """Create (or reuse) a constant string global."""
        for gv in self.globals.values():
            if isinstance(gv, GlobalString) and gv.text == text:
                return gv
        gs = GlobalString(f".str{next(self._string_counter)}", text)
        return self.add_global(gs)  # type: ignore[return-value]

    # -- functions ----------------------------------------------------------

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise IRTypeError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn
        return fn

    def function_named(self, name: str) -> Function:
        return self.functions[name]

    def get_or_declare_intrinsic(self, name: str) -> Function:
        """Return the declaration for a known intrinsic, creating it with a
        permissive variadic signature on first use."""
        if name in self.functions:
            return self.functions[name]
        if name not in ALL_INTRINSICS:
            raise IRTypeError(f"unknown intrinsic {name!r}")
        ret: Type = VOID
        if name in ("malloc", "calloc", "h_alloc", "memset", "memcpy"):
            ret = PointerType()
        elif name in ("abs", "rand_int"):
            ret = I64
        elif name in ("sqrt", "exp", "log", "pow", "fabs", "floor", "sin", "cos"):
            ret = F64
        elif name == "printf":
            ret = I32
        fn = Function(name, FunctionType(ret, (), variadic=True), is_intrinsic=True)
        return self.add_function(fn)

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def __repr__(self) -> str:
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
