"""Instruction set of the Privateer mini-IR.

The instruction set intentionally mirrors the LLVM subset that the paper's
compiler manipulates: stack allocation, loads/stores through pointers,
pointer arithmetic, integer/float arithmetic, comparisons, casts, calls,
and structured control flow via basic-block terminators.

Privateer-specific runtime operations (``h_alloc``, ``check_heap``,
``private_read`` …) are modelled as calls to intrinsics — see
:data:`PRIVATEER_INTRINSICS`.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence

from .types import BOOL, I64, IntType, IRTypeError, PointerType, Type, VOID
from .values import Value


class Opcode(enum.Enum):
    """Instruction opcodes of the mini-IR."""
    PHI = "phi"
    ALLOCA = "alloca"
    LOAD = "load"
    STORE = "store"
    PTRADD = "ptradd"
    BINOP = "binop"
    ICMP = "icmp"
    FCMP = "fcmp"
    CAST = "cast"
    SELECT = "select"
    CALL = "call"
    BR = "br"
    CONDBR = "condbr"
    RET = "ret"
    UNREACHABLE = "unreachable"


class BinOpKind(enum.Enum):
    """Binary arithmetic/logic operation kinds (f-prefixed = float)."""
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"  # arithmetic for signed types, logical for unsigned
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"

    @property
    def is_float(self) -> bool:
        return self.value.startswith("f")

    @property
    def is_commutative(self) -> bool:
        return self in (
            BinOpKind.ADD,
            BinOpKind.MUL,
            BinOpKind.AND,
            BinOpKind.OR,
            BinOpKind.XOR,
            BinOpKind.FADD,
            BinOpKind.FMUL,
        )

    @property
    def is_associative(self) -> bool:
        """Treated-as-associative set for reduction recognition.

        Following the paper (and LRPD), floating-point add/mul are treated
        as associative for reduction purposes even though they are only
        approximately so.
        """
        return self.is_commutative


class CmpPred(enum.Enum):
    """Comparison predicates for icmp/fcmp."""
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"


class CastKind(enum.Enum):
    """Conversion kinds for the cast instruction."""
    TRUNC = "trunc"
    ZEXT = "zext"
    SEXT = "sext"
    BITCAST = "bitcast"
    PTRTOINT = "ptrtoint"
    INTTOPTR = "inttoptr"
    SITOFP = "sitofp"
    UITOFP = "uitofp"
    FPTOSI = "fptosi"
    FPTOUI = "fptoui"
    FPEXT = "fpext"
    FPTRUNC = "fptrunc"


class Instruction(Value):
    """Base class for all instructions.

    ``operands`` is the authoritative list of value operands — transforms
    that rewrite operands must go through :meth:`replace_operand` so
    subclass accessors stay consistent.
    """

    opcode: Opcode

    def __init__(self, type_: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(type_, name)
        self.operands: List[Value] = list(operands)
        self.parent: Optional["BasicBlock"] = None  # set on insertion
        self.meta: dict = {}

    @property
    def is_terminator(self) -> bool:
        return self.opcode in (Opcode.BR, Opcode.CONDBR, Opcode.RET, Opcode.UNREACHABLE)

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` in the operand list; returns
        the number of replacements."""
        count = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                count += 1
        return count

    def site_id(self) -> str:
        """Stable name for this instruction as a static program point
        (used by the profilers to name allocation sites and accesses)."""
        fn = self.parent.parent.name if self.parent is not None else "?"
        return f"{fn}:{self.uid}"


class Phi(Instruction):
    """SSA phi node.  ``incoming`` maps predecessor blocks to values.

    Phis are created by the mem2reg pass (:mod:`repro.analysis.mem2reg`);
    the frontend lowers all mutable locals to allocas.
    """

    opcode = Opcode.PHI

    def __init__(self, type_: Type, name: str = ""):
        super().__init__(type_, [], name)
        self.incoming: "List[tuple]" = []  # (BasicBlock, Value) pairs

    def add_incoming(self, block: "BasicBlock", value: Value) -> None:
        self.incoming.append((block, value))
        self.operands.append(value)

    def incoming_for(self, block: "BasicBlock") -> Value:
        for bb, v in self.incoming:
            if bb is block:
                return v
        raise IRTypeError(f"phi has no incoming value for block {block.name}")

    def replace_operand(self, old: Value, new: Value) -> int:
        count = super().replace_operand(old, new)
        self.incoming = [
            (bb, new if v is old else v) for bb, v in self.incoming
        ]
        return count


class Alloca(Instruction):
    """Stack allocation of ``count`` elements of ``allocated_type``.

    Returns a pointer into the current function's stack frame; the slot is
    deallocated when the frame pops.
    """

    opcode = Opcode.ALLOCA

    def __init__(self, allocated_type: Type, count: Value, name: str = ""):
        super().__init__(PointerType(allocated_type), [count], name)
        self.allocated_type = allocated_type

    @property
    def count(self) -> Value:
        return self.operands[0]


class Load(Instruction):
    """Memory load: *ptr -> value."""
    opcode = Opcode.LOAD

    def __init__(self, pointer: Value, type_: Type, name: str = ""):
        if not pointer.type.is_pointer():
            raise IRTypeError(f"load requires a pointer operand, got {pointer.type}")
        super().__init__(type_, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    """Memory store: *ptr <- value."""
    opcode = Opcode.STORE

    def __init__(self, value: Value, pointer: Value):
        if not pointer.type.is_pointer():
            raise IRTypeError(f"store requires a pointer operand, got {pointer.type}")
        super().__init__(VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class PtrAdd(Instruction):
    """Pointer plus byte offset.  ``result_pointee`` records the element
    type the frontend believes lives at the computed address (used only
    for printing and for typing subsequent loads)."""

    opcode = Opcode.PTRADD

    def __init__(
        self,
        base: Value,
        offset: Value,
        result_pointee: Optional[Type] = None,
        name: str = "",
    ):
        if not base.type.is_pointer():
            raise IRTypeError(f"ptradd requires a pointer base, got {base.type}")
        super().__init__(PointerType(result_pointee), [base, offset], name)

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def offset(self) -> Value:
        return self.operands[1]


class BinOp(Instruction):
    """Binary arithmetic/logic instruction."""
    opcode = Opcode.BINOP

    def __init__(self, kind: BinOpKind, lhs: Value, rhs: Value, name: str = ""):
        if lhs.type != rhs.type:
            raise IRTypeError(f"binop operand mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.kind = kind
        self.float_op = kind.is_float  # cached for the interpreter hot path

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class ICmp(Instruction):
    """Integer (or pointer) comparison producing an i1."""
    opcode = Opcode.ICMP

    def __init__(self, pred: CmpPred, lhs: Value, rhs: Value, name: str = ""):
        super().__init__(BOOL, [lhs, rhs], name)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class FCmp(Instruction):
    """Floating-point comparison producing an i1."""
    opcode = Opcode.FCMP

    def __init__(self, pred: CmpPred, lhs: Value, rhs: Value, name: str = ""):
        super().__init__(BOOL, [lhs, rhs], name)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class Cast(Instruction):
    """Type conversion instruction."""
    opcode = Opcode.CAST

    def __init__(self, kind: CastKind, value: Value, to_type: Type, name: str = ""):
        super().__init__(to_type, [value], name)
        self.kind = kind

    @property
    def value(self) -> Value:
        return self.operands[0]


class Select(Instruction):
    """``select cond, a, b`` — the ternary operator."""

    opcode = Opcode.SELECT

    def __init__(self, cond: Value, a: Value, b: Value, name: str = ""):
        if a.type != b.type:
            raise IRTypeError(f"select arm mismatch: {a.type} vs {b.type}")
        super().__init__(a.type, [cond, a, b], name)

    @property
    def cond(self) -> Value:
        return self.operands[0]


class Call(Instruction):
    """Direct call to a function or intrinsic."""

    opcode = Opcode.CALL

    def __init__(self, callee: "Function", args: Sequence[Value], name: str = ""):
        super().__init__(callee.return_type, list(args), name)
        self.callee = callee

    @property
    def args(self) -> List[Value]:
        return self.operands


class Br(Instruction):
    """Unconditional branch."""
    opcode = Opcode.BR

    def __init__(self, target: "BasicBlock"):
        super().__init__(VOID, [])
        self.target = target


class CondBr(Instruction):
    """Conditional branch on an i1 operand."""
    opcode = Opcode.CONDBR

    def __init__(self, cond: Value, if_true: "BasicBlock", if_false: "BasicBlock"):
        super().__init__(VOID, [cond])
        self.if_true = if_true
        self.if_false = if_false

    @property
    def cond(self) -> Value:
        return self.operands[0]


class Ret(Instruction):
    """Function return, with optional value."""
    opcode = Opcode.RET

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


class Unreachable(Instruction):
    """Marks statically unreachable control flow; trapping if executed."""
    opcode = Opcode.UNREACHABLE

    def __init__(self) -> None:
        super().__init__(VOID, [])


# ---------------------------------------------------------------------------
# Intrinsics
# ---------------------------------------------------------------------------

#: Library intrinsics available to guest programs (MiniC maps libc-ish
#: calls onto these).  Each entry is name -> (return kind, purpose).
LIBRARY_INTRINSICS = {
    "malloc": "heap allocation",
    "free": "heap deallocation",
    "calloc": "zeroed heap allocation",
    "memset": "byte fill",
    "memcpy": "byte copy",
    "printf": "formatted output (deferred under speculation)",
    "puts": "line output (deferred under speculation)",
    "exit": "program termination",
    "abs": "integer absolute value",
    "sqrt": "float square root",
    "exp": "float exponential",
    "log": "float natural logarithm",
    "sin": "float sine",
    "cos": "float cosine",
    "pow": "float power",
    "fabs": "float absolute value",
    "floor": "float floor",
    "rand_seed": "seed the deterministic guest PRNG",
    "rand_int": "deterministic guest PRNG (xorshift64*)",
}

#: Runtime intrinsics inserted by the Privateer transformation (§4.4–§4.6).
PRIVATEER_INTRINSICS = {
    "h_alloc": "allocate from a logical heap (heap kind as immediate)",
    "h_dealloc": "free into a logical heap",
    "check_heap": "separation check: pointer must carry the expected heap tag",
    "private_read": "privacy check before a load from the private heap",
    "private_write": "privacy check before a store to the private heap",
    "redux_update": "register a reduction update (operator as immediate)",
    "predict_value": "value-prediction check: misspeculate on mismatch",
    "misspec": "explicit misspeculation trigger",
    "loop_iter_begin": "parallel-region iteration boundary marker",
    "loop_iter_end": "parallel-region iteration boundary marker (validates short-lived)",
}

ALL_INTRINSICS = {**LIBRARY_INTRINSICS, **PRIVATEER_INTRINSICS}
