"""Typed mini-IR: the compiler substrate for the Privateer reproduction.

Public surface::

    from repro.ir import (
        Module, Function, BasicBlock, IRBuilder,
        types, values, instructions,
        format_module, verify_module,
    )
"""

from . import instructions, types, values
from .builder import IRBuilder
from .instructions import (
    Alloca,
    BinOp,
    BinOpKind,
    Br,
    Call,
    Cast,
    CastKind,
    CmpPred,
    CondBr,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Opcode,
    Phi,
    PtrAdd,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .printer import format_function, format_instruction, format_module
from .types import (
    BOOL,
    F32,
    F64,
    I8,
    I16,
    I32,
    I64,
    U8,
    U16,
    U32,
    U64,
    VOID,
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    IRTypeError,
    PointerType,
    StructField,
    StructType,
    Type,
    TypeContext,
    ptr,
)
from .values import (
    Argument,
    ConstFloat,
    ConstInt,
    ConstNull,
    Constant,
    GlobalString,
    GlobalValue,
    GlobalVariable,
    Undef,
    Value,
    const_bool,
    const_float,
    const_int,
)
from .verifier import VerificationError, verify_module

__all__ = [
    "Alloca", "ArrayType", "Argument", "BOOL", "BasicBlock", "BinOp",
    "BinOpKind", "Br", "Call", "Cast", "CastKind", "CmpPred", "CondBr",
    "ConstFloat", "ConstInt", "ConstNull", "Constant", "F32", "F64", "FCmp",
    "FloatType", "Function", "FunctionType", "GlobalString", "GlobalValue",
    "GlobalVariable", "I16", "I32", "I64", "I8", "ICmp", "IRBuilder",
    "IRTypeError", "Instruction", "IntType", "Load", "Module", "Opcode", "Phi",
    "PointerType", "PtrAdd", "Ret", "Select", "Store", "StructField",
    "StructType", "Type", "TypeContext", "U16", "U32", "U64", "U8", "Undef",
    "Unreachable", "VOID", "Value", "VerificationError", "const_bool",
    "const_float", "const_int", "format_function", "format_instruction",
    "format_module", "instructions", "ptr", "types", "values",
    "verify_module",
]
