"""Windowed misspeculation-rate monitor.

One monitor instance watches one (workload, loop) pair.  It is fed two
event streams by the runtime — epoch commits (how many iterations
retired cleanly) and squashes (how many iterations were thrown away) —
and maintains a sliding window of recent epoch outcomes from which the
controller reads its rate estimate.  A windowed rate, rather than a
lifetime average, is what lets the controller *recover*: once a burst of
misspeculation ages out of the window the rate falls back toward zero
and the epoch size can grow again.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple


class MisspecRateMonitor:
    """Sliding-window estimate of the squashed-iteration rate.

    Each entry is one epoch attempt: ``(iterations, squashed)`` where
    ``iterations`` counts everything the epoch tried to retire and
    ``squashed`` the subset that was discarded by a misspeculation.
    """

    __slots__ = ("window", "outcomes", "epochs", "total_iterations",
                 "total_squashed", "misspecs_by_kind")

    def __init__(self, window: int = 32):
        if window < 1:
            raise ValueError(f"window must be >= 1 (got {window})")
        self.window = window
        self.outcomes: Deque[Tuple[int, int]] = deque(maxlen=window)
        self.epochs = 0
        self.total_iterations = 0
        self.total_squashed = 0
        self.misspecs_by_kind: Dict[str, int] = {}

    def record_commit(self, iterations: int) -> None:
        """One epoch retired ``iterations`` iterations cleanly."""
        self._record(iterations, 0)

    def record_squash(self, squashed: int) -> None:
        """One epoch attempt lost ``squashed`` iterations to a squash."""
        self._record(squashed, squashed)

    def record_misspec(self, kind: str) -> None:
        """Count one misspeculation event by kind (privacy/separation/…)."""
        self.misspecs_by_kind[kind] = self.misspecs_by_kind.get(kind, 0) + 1

    def _record(self, iterations: int, squashed: int) -> None:
        self.outcomes.append((iterations, squashed))
        self.epochs += 1
        self.total_iterations += iterations
        self.total_squashed += squashed

    def rate(self) -> float:
        """Fraction of attempted iterations squashed, over the window."""
        attempted = sum(n for n, _s in self.outcomes)
        if attempted == 0:
            return 0.0
        return sum(s for _n, s in self.outcomes) / attempted

    def lifetime_rate(self) -> float:
        """Fraction of attempted iterations squashed since creation."""
        if self.total_iterations == 0:
            return 0.0
        return self.total_squashed / self.total_iterations

    def snapshot(self) -> Dict[str, object]:
        return {
            "window": self.window,
            "epochs": self.epochs,
            "rate": round(self.rate(), 4),
            "lifetime_rate": round(self.lifetime_rate(), 4),
            "total_iterations": self.total_iterations,
            "total_squashed": self.total_squashed,
            "misspecs_by_kind": dict(sorted(self.misspecs_by_kind.items())),
        }
