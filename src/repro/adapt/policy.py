"""On-disk policy store for learned speculation decisions.

Mirrors :mod:`repro.bench.cache`: one standalone JSON file per module,
keyed by the pre-transform module fingerprint (the same key the profile
cache uses), atomically replaced on write and treated as a miss when
corrupt.  Each file records per-loop policies::

    {
      "version": 1,
      "fingerprint": "...",
      "workload": "dijkstra",
      "loops": {
        "main:for.cond": {
          "epoch_size": 48,
          "demotions": ["global:state"],
          "fallbacks": 2,
          "runs": 3
        }
      }
    }

``epoch_size`` warm-starts the AIMD controller on the next run;
``demotions`` are object sites whose classification repeatedly
misspeculated and which ``prepare()`` demotes to the unrestricted heap
before the transform — the re-plan then either rejects the loop (and the
pipeline falls through to the next hottest candidate) or parallelizes it
without speculating on the offending object.

Location: ``$REPRO_ADAPT_DIR`` if set, else ``~/.cache/repro-adapt``.
Writes are best-effort: an unwritable store degrades to cold starts, it
never fails a run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from ..classify.classifier import HeapAssignment
from ..classify.heaps import HeapKind

#: Environment variable overriding the policy-store directory.
ADAPT_DIR_ENV = "REPRO_ADAPT_DIR"

#: Bumped when the on-disk layout changes; older files read as misses.
POLICY_VERSION = 1


def policy_dir() -> Path:
    override = os.environ.get(ADAPT_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-adapt"


class PolicyStore:
    """Load/merge/persist per-(module, loop) speculation policies."""

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else None

    def _dir(self) -> Path:
        return self.root if self.root is not None else policy_dir()

    def path_for(self, fingerprint: str) -> Path:
        return self._dir() / f"policy-{fingerprint[:24]}.json"

    def load(self, fingerprint: str) -> Optional[Dict]:
        """Decoded policy file for ``fingerprint``, or None on a miss /
        corrupt / version-stale / mismatched entry."""
        try:
            data = json.loads(self.path_for(fingerprint).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict):
            return None
        if data.get("version") != POLICY_VERSION:
            return None
        if data.get("fingerprint") != fingerprint:
            return None
        if not isinstance(data.get("loops"), dict):
            return None
        return data

    def loop_policy(self, fingerprint: str, loop: str) -> Optional[Dict]:
        data = self.load(fingerprint)
        if data is None:
            return None
        entry = data["loops"].get(loop)
        return entry if isinstance(entry, dict) else None

    def demotions_for(self, fingerprint: str, loop: str) -> List[str]:
        entry = self.loop_policy(fingerprint, loop)
        if not entry:
            return []
        demotions = entry.get("demotions")
        return sorted(str(s) for s in demotions) if isinstance(demotions, list) \
            else []

    def update(self, fingerprint: str, loop: str, *, epoch_size: int,
               demotions: Iterable[str] = (), fallbacks: int = 0,
               workload: str = "") -> None:
        """Merge one run's learned decisions into the store.

        Demotions are unioned (a learned demotion is never forgotten by a
        later clean run); the epoch size and fallback count reflect the
        latest run.  Failures to write are silent — the store is
        best-effort, like the profile cache.
        """
        data = self.load(fingerprint) or {
            "version": POLICY_VERSION,
            "fingerprint": fingerprint,
            "workload": workload,
            "loops": {},
        }
        if workload:
            data["workload"] = workload
        entry = data["loops"].setdefault(loop, {})
        prior = set(entry.get("demotions") or [])
        entry["epoch_size"] = int(epoch_size)
        entry["demotions"] = sorted(prior | {str(s) for s in demotions})
        entry["fallbacks"] = int(fallbacks)
        entry["runs"] = int(entry.get("runs", 0)) + 1
        path = self.path_for(fingerprint)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(data, indent=2, sort_keys=True))
            tmp.replace(path)
        except OSError:
            pass


def apply_demotions(assignment: HeapAssignment,
                    demotions: Iterable[str]) -> List[str]:
    """Demote the given object sites to the unrestricted heap in-place.

    Only sites currently assigned to a speculative class (private,
    short-lived, redux, read-only) are demoted; unknown sites and sites
    already unrestricted are ignored.  Returns the sites actually
    demoted, in sorted order.  Demoting a site re-opens its loop-carried
    dependences, so the subsequent ``check_transformable`` either rejects
    the loop (re-plan falls through to the next candidate) or proceeds
    without speculating on that object.
    """
    applied: List[str] = []
    for site in sorted(set(demotions)):
        kind = assignment.site_heaps.get(site)
        if kind is None or kind is HeapKind.UNRESTRICTED:
            continue
        assignment.site_heaps[site] = HeapKind.UNRESTRICTED
        assignment.redux_ops.pop(site, None)
        applied.append(site)
    return applied
