"""Adaptive speculation control plane.

The data plane (runtime validation, checkpoint commit, squash/recovery)
executes speculation decisions; this package *makes* them, online, from
runtime outcomes:

* :mod:`repro.adapt.monitor` — a windowed misspeculation-rate estimator
  fed from :meth:`RuntimeSystem.record_misspeculation` and checkpoint
  commit stats, per (workload, loop);
* :mod:`repro.adapt.controller` — the :class:`SpeculationController`:
  AIMD epoch sizing (grow the checkpoint period additively on clean
  commits, shrink it multiplicatively on squash), classification
  demotion after repeated misspeculations attributable to one object,
  and sequential fallback with exponential backoff after consecutive
  whole-epoch squashes;
* :mod:`repro.adapt.policy` — the on-disk policy store persisting
  learned decisions (epoch size, demotions) keyed by the same module
  fingerprint as the profile cache, so a second run starts warm.

Everything is deterministic — decisions are pure functions of the
(identical-across-backends) sequence of epoch outcomes, never of wall
clocks — so the simulated and process backends stay in lockstep and the
parity suite covers adaptive runs too.

Enabled by ``--adapt`` on ``run``/``trace``/``perf`` or ``REPRO_ADAPT=1``;
``--no-adapt`` (or leaving both unset) fully bypasses the subsystem.
"""

from __future__ import annotations

import os
from typing import Optional

from .controller import AdaptConfig, SpeculationController, format_summary
from .monitor import MisspecRateMonitor
from .policy import PolicyStore, apply_demotions

#: Environment variable enabling the adaptive controller by default.
ADAPT_ENV = "REPRO_ADAPT"

#: Truthy spellings accepted by :data:`ADAPT_ENV`.
_TRUTHY = ("1", "true", "yes", "on")


def resolve_adapt_enabled(flag: Optional[bool] = None) -> bool:
    """Resolve whether adaptation is on: explicit flag > ``REPRO_ADAPT``
    environment variable > disabled."""
    if flag is not None:
        return flag
    return os.environ.get(ADAPT_ENV, "").strip().lower() in _TRUTHY


__all__ = [
    "ADAPT_ENV",
    "AdaptConfig",
    "MisspecRateMonitor",
    "PolicyStore",
    "SpeculationController",
    "apply_demotions",
    "format_summary",
    "resolve_adapt_enabled",
]
