"""The online speculation controller.

One :class:`SpeculationController` instance closes the loop between
runtime outcomes and speculation decisions for one (workload, loop)
pair, across all invocations of one execution:

* **AIMD epoch sizing** — the checkpoint period (iterations per epoch)
  grows additively on every clean commit, amortizing the fixed
  checkpoint cost, and shrinks multiplicatively on every squash,
  bounding the re-execution window §5.3 charges per misspeculation.
  Always clamped to ``[min_epoch, MAX_CHECKPOINT_PERIOD]`` so shadow
  timestamps keep fitting in a metadata byte.
* **Classification demotion** — misspeculations are attributed to the
  object (allocation site) whose speculative classification caused them;
  after ``demote_after`` strikes the site is recorded as demoted.  The
  decision takes effect through the policy store on the next run, when
  ``prepare()`` demotes the site to the unrestricted heap and re-plans;
  within the current run the backoff machinery below bounds the damage.
* **Sequential fallback with exponential backoff** — after
  ``fallback_after`` consecutive whole-epoch squashes the executor is
  told to run the next ``backoff`` iterations sequentially (committed,
  non-speculative), then probe speculation again; each re-entry doubles
  the span up to ``backoff_max``, and a clean commit resets it.

Every decision is a pure function of the epoch-outcome sequence — no
wall clocks, no randomness — so both execution backends drive the
controller through identical state trajectories and differential parity
holds under adaptation.  Decisions are observable as ``adapt.*`` metrics
and trace instants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..obs.log import get_logger
from ..obs.metrics import METRICS
from ..obs.trace import TRACER
from ..transform.plan import MAX_CHECKPOINT_PERIOD
from .monitor import MisspecRateMonitor
from .policy import PolicyStore

log = get_logger("adapt")


@dataclass
class AdaptConfig:
    """Tuning knobs for the speculation controller (all deterministic)."""

    #: Epoch-size bounds; the upper bound may never exceed the shadow
    #: timestamp limit of :data:`MAX_CHECKPOINT_PERIOD`.
    min_epoch: int = 2
    max_epoch: int = MAX_CHECKPOINT_PERIOD
    #: Additive increase per clean commit.
    grow_add: int = 4
    #: Multiplicative decrease on squash: ``epoch * num // den``.
    shrink_num: int = 1
    shrink_den: int = 2
    #: Misspeculations attributable to one object site before it is
    #: demoted (recorded for the next run's re-plan).
    demote_after: int = 8
    #: Consecutive whole-epoch squashes before sequential fallback.
    fallback_after: int = 3
    #: Initial / maximum sequential-fallback span (iterations), and the
    #: growth factor applied on every consecutive fallback.
    backoff_initial: int = 8
    backoff_factor: int = 2
    backoff_max: int = 512
    #: Monitor window, in epoch attempts.
    window: int = 32

    def __post_init__(self) -> None:
        self.max_epoch = min(self.max_epoch, MAX_CHECKPOINT_PERIOD)
        self.min_epoch = max(1, min(self.min_epoch, self.max_epoch))

    def clamp(self, epoch: int) -> int:
        return max(self.min_epoch, min(self.max_epoch, epoch))


class SpeculationController:
    """Online feedback controller for one (workload, loop) pair."""

    def __init__(self, key: str = "", loop: str = "", workload: str = "",
                 config: Optional[AdaptConfig] = None,
                 store: Optional[PolicyStore] = None):
        self.key = key
        self.loop = loop
        self.workload = workload
        self.config = config or AdaptConfig()
        self.store = store
        self.monitor = MisspecRateMonitor(window=self.config.window)

        #: Current epoch size; seeded lazily by :meth:`begin_invocation`
        #: so the executor's default period wins on a cold start.
        self.epoch_size: Optional[int] = None
        self.initial_epoch: Optional[int] = None
        self.min_epoch_seen: Optional[int] = None
        self.max_epoch_seen: Optional[int] = None

        self.grows = 0
        self.shrinks = 0
        self.fallbacks = 0
        self.sequential_iterations = 0
        self.consecutive_squashes = 0
        self.backoff = self.config.backoff_initial

        #: Misspeculation strike counts per attributed object site.
        self.site_strikes: Dict[str, int] = {}
        #: Latest forensic diagnosis per attributed site (so demotion
        #: decisions carry a root cause, not just a strike count).
        self.site_diagnoses: Dict[str, str] = {}
        #: Demotions decided during *this* run.
        self.new_demotions: Set[str] = set()
        #: Flight recorder that decisions are mirrored into
        #: (:class:`repro.forensics.recorder.FlightRecorder`); installed
        #: by the executor alongside ``RuntimeSystem.controller``.
        self.recorder = None

        # Warm start: reload the persisted policy for this loop.
        self.warm_start = False
        self.warm_epoch: Optional[int] = None
        self.persisted_demotions: Set[str] = set()
        if store is not None and key:
            entry = store.loop_policy(key, loop)
            if entry:
                self.warm_start = True
                size = entry.get("epoch_size")
                if isinstance(size, int) and size > 0:
                    self.warm_epoch = self.config.clamp(size)
                self.persisted_demotions = set(entry.get("demotions") or [])

    # -- executor-facing decisions -------------------------------------------

    def _record_decision(self, action: str, **fields: object) -> None:
        """Mirror one controller decision into the flight recorder."""
        if self.recorder is not None and self.recorder.enabled:
            self.recorder.record("decision", action=action, loop=self.loop,
                                 **fields)

    def begin_invocation(self, default_epoch: int) -> None:
        """Seed the epoch size on the first invocation: warm-started from
        the policy store when available, the executor's default otherwise.
        Later invocations keep the learned size."""
        if self.epoch_size is not None:
            return
        seed = self.warm_epoch if self.warm_epoch is not None else default_epoch
        self.epoch_size = self.config.clamp(seed)
        self.initial_epoch = self.epoch_size
        self.min_epoch_seen = self.epoch_size
        self.max_epoch_seen = self.epoch_size
        self._record_decision("seed", epoch_size=self.epoch_size,
                              warm_start=self.warm_start)
        if TRACER.enabled:
            METRICS.gauge("adapt.epoch_size").set(self.epoch_size)
            TRACER.instant("adapt.seed", cat="adapt", loop=self.loop,
                           epoch_size=self.epoch_size,
                           warm_start=self.warm_start)

    def next_epoch_size(self) -> int:
        assert self.epoch_size is not None, "begin_invocation not called"
        return self.epoch_size

    def should_fallback(self) -> bool:
        """Has speculation squashed often enough to pause it?"""
        return self.consecutive_squashes >= self.config.fallback_after

    def begin_fallback(self) -> int:
        """Enter sequential fallback: returns the span (iterations) to run
        non-speculatively, and doubles the backoff for the next entry.
        The squash counter is re-armed one below the threshold, so a
        single squash right after the probe resumes falls straight back —
        that is what makes the backoff exponential under a sustained
        misspeculation storm."""
        span = self.backoff
        self.backoff = min(self.config.backoff_max,
                           self.backoff * self.config.backoff_factor)
        self.fallbacks += 1
        self.consecutive_squashes = self.config.fallback_after - 1
        log.info("adapt: sequential fallback for %d iteration(s) "
                 "(next backoff %d)", span, self.backoff)
        self._record_decision("fallback", span=span, next_backoff=self.backoff)
        if TRACER.enabled:
            METRICS.counter("adapt.fallbacks").inc()
            TRACER.instant("adapt.fallback", cat="adapt", loop=self.loop,
                           span=span, next_backoff=self.backoff)
        return span

    def end_fallback(self, iterations: int) -> None:
        self.sequential_iterations += iterations
        self._record_decision("reenable", sequential_iterations=iterations,
                              epoch_size=self.epoch_size)
        if TRACER.enabled:
            TRACER.instant("adapt.reenable", cat="adapt", loop=self.loop,
                           sequential_iterations=iterations,
                           epoch_size=self.epoch_size)

    def on_squash(self, squashed_iterations: int, kind: str = "") -> None:
        """An epoch attempt squashed: shrink multiplicatively and arm the
        fallback counter."""
        assert self.epoch_size is not None, "begin_invocation not called"
        self.monitor.record_squash(max(0, squashed_iterations))
        self.consecutive_squashes += 1
        old = self.epoch_size
        cfg = self.config
        self.epoch_size = cfg.clamp(old * cfg.shrink_num // cfg.shrink_den)
        if self.epoch_size < old:
            self.shrinks += 1
            log.info("adapt: epoch %d -> %d after %s squash "
                     "(%d iteration(s) lost)", old, self.epoch_size, kind,
                     squashed_iterations)
        self.min_epoch_seen = min(self.min_epoch_seen, self.epoch_size)
        if self.epoch_size < old:
            self._record_decision("shrink", from_size=old,
                                  to_size=self.epoch_size, cause=kind)
        if TRACER.enabled:
            if self.epoch_size < old:
                METRICS.counter("adapt.epoch.shrinks").inc()
                TRACER.instant("adapt.resize", cat="adapt", loop=self.loop,
                               direction="shrink", from_size=old,
                               to_size=self.epoch_size, cause=kind)
            METRICS.gauge("adapt.epoch_size").set(self.epoch_size)
            METRICS.gauge("adapt.misspec_rate").set(self.monitor.rate())

    # -- runtime-facing feedback (monitor inputs) ----------------------------

    def note_commit(self, epoch_start: int, epoch_end: int) -> None:
        """A checkpoint committed ``[epoch_start, epoch_end)`` cleanly:
        grow additively, reset the fallback state."""
        assert self.epoch_size is not None, "begin_invocation not called"
        self.monitor.record_commit(epoch_end - epoch_start)
        self.consecutive_squashes = 0
        self.backoff = self.config.backoff_initial
        old = self.epoch_size
        self.epoch_size = self.config.clamp(old + self.config.grow_add)
        if self.epoch_size > old:
            self.grows += 1
        self.max_epoch_seen = max(self.max_epoch_seen, self.epoch_size)
        if self.epoch_size > old:
            self._record_decision("grow", from_size=old,
                                  to_size=self.epoch_size)
        if TRACER.enabled:
            if self.epoch_size > old:
                METRICS.counter("adapt.epoch.grows").inc()
                TRACER.instant("adapt.resize", cat="adapt", loop=self.loop,
                               direction="grow", from_size=old,
                               to_size=self.epoch_size)
            METRICS.gauge("adapt.epoch_size").set(self.epoch_size)
            METRICS.gauge("adapt.misspec_rate").set(self.monitor.rate())

    def note_misspec(self, kind: str, iteration: int,
                     site: Optional[str],
                     diagnosis: Optional[str] = None) -> None:
        """One misspeculation event, attributed (when possible) to the
        object site whose classification caused it.  ``demote_after``
        strikes against one site record a demotion decision; the latest
        forensic ``diagnosis`` string rides along so the decision names
        the root cause, not just a count."""
        self.monitor.record_misspec(kind)
        if site is None or site in self.new_demotions \
                or site in self.persisted_demotions:
            return
        strikes = self.site_strikes.get(site, 0) + 1
        self.site_strikes[site] = strikes
        if diagnosis is not None:
            self.site_diagnoses[site] = diagnosis
        if strikes < self.config.demote_after:
            return
        self.new_demotions.add(site)
        cause = self.site_diagnoses.get(site, kind)
        log.warning("adapt: demoting %s to unrestricted after %d "
                    "misspeculation(s) (%s); takes effect on the next "
                    "run's re-plan", site, strikes, cause)
        self._record_decision("demote", site=site, strikes=strikes,
                              cause=kind, diagnosis=self.site_diagnoses.get(site))
        if TRACER.enabled:
            METRICS.counter("adapt.demotions").inc()
            TRACER.instant("adapt.demote", cat="adapt", loop=self.loop,
                           site=site, strikes=strikes, cause=kind)

    # -- persistence ----------------------------------------------------------

    def save(self) -> None:
        """Persist the learned policy (no-op without a store or before
        the first invocation seeded an epoch size)."""
        if self.store is None or not self.key or self.epoch_size is None:
            return
        self.store.update(
            self.key, self.loop, epoch_size=self.epoch_size,
            demotions=self.persisted_demotions | self.new_demotions,
            fallbacks=self.fallbacks, workload=self.workload)

    # -- reporting ------------------------------------------------------------

    def converged(self) -> bool:
        """Did the controller shrink under misspeculation pressure and
        then recover (grow back off its minimum)?"""
        return (self.shrinks > 0
                and self.initial_epoch is not None
                and self.min_epoch_seen < self.initial_epoch
                and self.epoch_size > self.min_epoch_seen)

    def decision_counts(self) -> Dict[str, int]:
        return {
            "grows": self.grows,
            "shrinks": self.shrinks,
            "fallbacks": self.fallbacks,
            "demotions": len(self.new_demotions),
        }

    def summary(self) -> Dict[str, object]:
        return {
            **self.decision_counts(),
            "loop": self.loop,
            "workload": self.workload,
            "warm_start": self.warm_start,
            "initial_epoch": self.initial_epoch,
            "min_epoch": self.min_epoch_seen,
            "max_epoch": self.max_epoch_seen,
            "final_epoch": self.epoch_size,
            "sequential_iterations": self.sequential_iterations,
            "demotions": sorted(self.new_demotions),
            "demotion_diagnoses": {
                site: self.site_diagnoses[site]
                for site in sorted(self.new_demotions)
                if site in self.site_diagnoses
            },
            "persisted_demotions": sorted(self.persisted_demotions),
            "converged": self.converged(),
            "monitor": self.monitor.snapshot(),
        }

    def summary_line(self) -> str:
        """One-line human summary (the CI smoke job greps this)."""
        return format_summary(self.summary())


def format_summary(summary: Dict[str, object]) -> str:
    """Render a controller summary dict (``ExecutionResult.adapt``) as the
    one-line form the CLI prints and the CI smoke job greps."""
    monitor = summary.get("monitor") or {}
    return (f"epoch {summary['initial_epoch']}->{summary['min_epoch']}"
            f"->{summary['final_epoch']} grows={summary['grows']} "
            f"shrinks={summary['shrinks']} fallbacks={summary['fallbacks']} "
            f"seq_iters={summary['sequential_iterations']} "
            f"demotions={len(summary['demotions'])} "
            f"misspec_rate={monitor.get('rate', 0.0):.1%} "
            f"warm={'yes' if summary['warm_start'] else 'no'} "
            f"converged={'yes' if summary['converged'] else 'no'}")
