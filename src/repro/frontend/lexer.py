"""Lexer for MiniC, the C subset the workloads are written in.

MiniC covers the C features that matter to the paper's argument: pointers,
type casts, structs, fixed-size arrays, dynamic allocation, and ordinary
control flow.  The evaluated programs (dijkstra, blackscholes, swaptions,
alvinn, enc-md5) are all expressed in it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional


class CompileError(Exception):
    """Raised for lexical, syntactic, and semantic errors in guest code."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        super().__init__(f"{line}:{col}: {message}" if line else message)
        self.line = line
        self.col = col


class TokKind(enum.Enum):
    """Token categories produced by the lexer."""
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    CHAR = "char"
    STRING = "string"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = {
    "break", "char", "continue", "const", "double", "else", "for", "if",
    "int", "long", "return", "sizeof", "struct", "unsigned", "void", "while",
}

# Longest-match-first punctuation table.
PUNCTUATION = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
]

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v",
}


@dataclass
class Token:
    """One lexed token: kind, text, and source position."""
    kind: TokKind
    text: str
    value: object = None
    line: int = 0
    col: int = 0

    def is_punct(self, text: str) -> bool:
        return self.kind is TokKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.text == text

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r})"


class Lexer:
    """Hand-written MiniC lexer producing a Token stream."""
    def __init__(self, source: str, filename: str = "<minic>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    def _error(self, message: str) -> CompileError:
        return CompileError(message, self.line, self.col)

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def _advance(self, n: int = 1) -> str:
        text = self.source[self.pos:self.pos + n]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += n
        return text

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                break

    def tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is TokKind.EOF:
                return out

    def next_token(self) -> Token:
        self._skip_trivia()
        line, col = self.line, self.col
        if self.pos >= len(self.source):
            return Token(TokKind.EOF, "", line=line, col=col)
        ch = self._peek()

        if ch.isalpha() or ch == "_":
            start = self.pos
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            text = self.source[start:self.pos]
            kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
            return Token(kind, text, line=line, col=col)

        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(line, col)

        if ch == "'":
            return self._lex_char(line, col)
        if ch == '"':
            return self._lex_string(line, col)

        for punct in PUNCTUATION:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokKind.PUNCT, punct, line=line, col=col)

        raise self._error(f"unexpected character {ch!r}")

    def _lex_number(self, line: int, col: int) -> Token:
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start:self.pos]
            value = int(text, 16)
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek() == "." and self._peek(1).isdigit():
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek() and self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                is_float = True
                self._advance()
                if self._peek() and self._peek() in "+-":
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
            text = self.source[start:self.pos]
            value = float(text) if is_float else int(text)
        # Integer suffixes (L, U, UL) are accepted and ignored.
        while self._peek() and self._peek() in "uUlL" and not is_float:
            text += self._advance()
        kind = TokKind.FLOAT if is_float else TokKind.INT
        return Token(kind, text, value, line=line, col=col)

    def _read_escape(self) -> str:
        self._advance()  # backslash
        ch = self._advance()
        if ch in _ESCAPES:
            return _ESCAPES[ch]
        if ch == "x":
            digits = ""
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                digits += self._advance()
            if not digits:
                raise self._error("\\x with no hex digits")
            return chr(int(digits, 16))
        raise self._error(f"unknown escape \\{ch}")

    def _lex_char(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        if self._peek() == "\\":
            ch = self._read_escape()
        else:
            ch = self._advance()
        if self._peek() != "'":
            raise self._error("unterminated character literal")
        self._advance()
        return Token(TokKind.CHAR, f"'{ch}'", ord(ch), line=line, col=col)

    def _lex_string(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated string literal")
            ch = self._peek()
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                chars.append(self._read_escape())
            else:
                chars.append(self._advance())
        text = "".join(chars)
        return Token(TokKind.STRING, text, text, line=line, col=col)


def tokenize(source: str, filename: str = "<minic>") -> List[Token]:
    return Lexer(source, filename).tokens()
