"""MiniC frontend: lexer, parser, and IR lowering."""

from .lexer import CompileError, Lexer, TokKind, Token, tokenize
from .lower import Lowerer, compile_minic
from .parser import Parser, parse

__all__ = [
    "CompileError", "Lexer", "Lowerer", "Parser", "TokKind", "Token",
    "compile_minic", "parse", "tokenize",
]
