"""Abstract syntax tree for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    line: int = 0
    col: int = 0


# -- type expressions ---------------------------------------------------------


@dataclass
class TypeExpr(Node):
    """A parsed type: base name plus pointer depth and array dimensions."""

    base: str = "int"            # "void"|"char"|"int"|"unsigned"|"long"|"double"|struct name
    is_struct: bool = False
    pointer_depth: int = 0
    array_dims: Tuple[int, ...] = ()

    def with_pointer(self) -> "TypeExpr":
        return TypeExpr(self.line, self.col, self.base, self.is_struct,
                        self.pointer_depth + 1, self.array_dims)


# -- expressions -----------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""                 # "-" "!" "~" "*" "&" "++" "--" "p++" "p--"
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class Assign(Expr):
    op: str = "="                # "=" "+=" "-=" ...
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Conditional(Expr):
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    otherwise: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Member(Expr):
    base: Optional[Expr] = None
    field_name: str = ""
    arrow: bool = False          # True for ``->``, False for ``.``


@dataclass
class CastExpr(Expr):
    type: Optional[TypeExpr] = None
    operand: Optional[Expr] = None


@dataclass
class SizeofExpr(Expr):
    type: Optional[TypeExpr] = None


# -- statements ----------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class DeclStmt(Stmt):
    type: Optional[TypeExpr] = None
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None      # DeclStmt or ExprStmt or None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# -- top level -------------------------------------------------------------------------


@dataclass
class StructDef(Node):
    name: str = ""
    fields: List[Tuple[TypeExpr, str]] = field(default_factory=list)


@dataclass
class GlobalDef(Node):
    type: Optional[TypeExpr] = None
    name: str = ""
    init: Optional[Expr] = None
    is_const: bool = False


@dataclass
class Param(Node):
    type: Optional[TypeExpr] = None
    name: str = ""


@dataclass
class FunctionDef(Node):
    return_type: Optional[TypeExpr] = None
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Optional[Block] = None


@dataclass
class Program(Node):
    structs: List[StructDef] = field(default_factory=list)
    globals: List[GlobalDef] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)
