"""Abstract syntax tree for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    """Base class of all MiniC AST nodes; carries the source line."""
    line: int = 0
    col: int = 0


# -- type expressions ---------------------------------------------------------


@dataclass
class TypeExpr(Node):
    """A parsed type: base name plus pointer depth and array dimensions."""

    base: str = "int"            # "void"|"char"|"int"|"unsigned"|"long"|"double"|struct name
    is_struct: bool = False
    pointer_depth: int = 0
    array_dims: Tuple[int, ...] = ()

    def with_pointer(self) -> "TypeExpr":
        return TypeExpr(self.line, self.col, self.base, self.is_struct,
                        self.pointer_depth + 1, self.array_dims)


# -- expressions -----------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expression nodes."""
    pass


@dataclass
class IntLit(Expr):
    """Integer literal."""
    value: int = 0


@dataclass
class FloatLit(Expr):
    """Floating-point literal."""
    value: float = 0.0


@dataclass
class StringLit(Expr):
    """String literal (used only as a printf format argument)."""
    value: str = ""


@dataclass
class Ident(Expr):
    """Name reference."""
    name: str = ""


@dataclass
class Unary(Expr):
    """Unary operation: -, !, ~, *, &, ++/-- (pre/post)."""
    op: str = ""                 # "-" "!" "~" "*" "&" "++" "--" "p++" "p--"
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    """Binary operation, including short-circuit && and ||."""
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class Assign(Expr):
    """Assignment (optionally compound: +=, -=, ...)."""
    op: str = "="                # "=" "+=" "-=" ...
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Conditional(Expr):
    """Ternary conditional: cond ? then : other."""
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    otherwise: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    """Function call."""
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """Array subscript: base[index]."""
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Member(Expr):
    """Struct member access: base.field or base->field."""
    base: Optional[Expr] = None
    field_name: str = ""
    arrow: bool = False          # True for ``->``, False for ``.``


@dataclass
class CastExpr(Expr):
    """C-style cast: (type)expr."""
    type: Optional[TypeExpr] = None
    operand: Optional[Expr] = None


@dataclass
class SizeofExpr(Expr):
    """sizeof(type) or sizeof(expr)."""
    type: Optional[TypeExpr] = None


# -- statements ----------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statement nodes."""
    pass


@dataclass
class ExprStmt(Stmt):
    """Expression evaluated for its side effects."""
    expr: Optional[Expr] = None


@dataclass
class DeclStmt(Stmt):
    """Local variable declaration, with optional initializer."""
    type: Optional[TypeExpr] = None
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Block(Stmt):
    """Brace-delimited statement list with its own scope."""
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    """if/else statement."""
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    """while loop."""
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class For(Stmt):
    """C-style for loop."""
    init: Optional[Stmt] = None      # DeclStmt or ExprStmt or None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    """return statement, with optional value."""
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    """break statement."""
    pass


@dataclass
class Continue(Stmt):
    """continue statement."""
    pass


# -- top level -------------------------------------------------------------------------


@dataclass
class StructDef(Node):
    """struct type definition."""
    name: str = ""
    fields: List[Tuple[TypeExpr, str]] = field(default_factory=list)


@dataclass
class GlobalDef(Node):
    """Global variable definition, with optional initializer."""
    type: Optional[TypeExpr] = None
    name: str = ""
    init: Optional[Expr] = None
    is_const: bool = False


@dataclass
class Param(Node):
    """One formal function parameter."""
    type: Optional[TypeExpr] = None
    name: str = ""


@dataclass
class FunctionDef(Node):
    """Function definition: signature plus body."""
    return_type: Optional[TypeExpr] = None
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Optional[Block] = None


@dataclass
class Program(Node):
    """A whole translation unit: structs, globals, and functions."""
    structs: List[StructDef] = field(default_factory=list)
    globals: List[GlobalDef] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)
