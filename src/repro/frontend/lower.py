"""Lowering from the MiniC AST to the mini-IR, with C-style type checking.

Follows the clang/LLVM playbook: every local variable becomes an ``alloca``
in the function's entry block with explicit loads/stores, arrays decay to
pointers, struct member access becomes byte-offset pointer arithmetic, and
short-circuit operators become control flow.  The mem2reg pass
(:mod:`repro.analysis.mem2reg`) later promotes scalar allocas to SSA.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.builder import IRBuilder
from ..ir.instructions import ALL_INTRINSICS, BinOpKind, CastKind, CmpPred
from ..ir.module import BasicBlock, Function, Module
from ..ir.types import (
    BOOL,
    F64,
    I8,
    I32,
    I64,
    U8,
    U32,
    U64,
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    IRTypeError,
    PointerType,
    StructField,
    StructType,
    Type,
    VOID,
)
from ..ir.values import ConstFloat, ConstInt, ConstNull, GlobalVariable, Value
from . import ast
from .lexer import CompileError

_BASE_TYPES: Dict[str, Type] = {
    "void": VOID,
    "char": I8,
    "int": I32,
    "unsigned": U32,
    "unsigned_char": U8,
    "long": I64,
    "unsigned_long": U64,
    "double": F64,
}

_ARITH_BINOPS = {
    "+": (BinOpKind.ADD, BinOpKind.FADD),
    "-": (BinOpKind.SUB, BinOpKind.FSUB),
    "*": (BinOpKind.MUL, BinOpKind.FMUL),
    "/": (BinOpKind.DIV, BinOpKind.FDIV),
    "%": (BinOpKind.REM, None),
    "&": (BinOpKind.AND, None),
    "|": (BinOpKind.OR, None),
    "^": (BinOpKind.XOR, None),
    "<<": (BinOpKind.SHL, None),
    ">>": (BinOpKind.SHR, None),
}

_CMP_OPS = {
    "==": CmpPred.EQ, "!=": CmpPred.NE, "<": CmpPred.LT,
    "<=": CmpPred.LE, ">": CmpPred.GT, ">=": CmpPred.GE,
}

#: Typed signatures for the library intrinsics (argument coercion).
_PTR = PointerType()
_INTRINSIC_SIGS: Dict[str, Tuple[Tuple[Type, ...], bool]] = {
    "malloc": ((I64,), False),
    "calloc": ((I64, I64), False),
    "free": ((_PTR,), False),
    "memset": ((_PTR, I32, I64), False),
    "memcpy": ((_PTR, _PTR, I64), False),
    "printf": ((_PTR,), True),
    "puts": ((_PTR,), False),
    "exit": ((I32,), False),
    "abs": ((I64,), False),
    "sqrt": ((F64,), False),
    "exp": ((F64,), False),
    "log": ((F64,), False),
    "sin": ((F64,), False),
    "cos": ((F64,), False),
    "pow": ((F64, F64), False),
    "fabs": ((F64,), False),
    "floor": ((F64,), False),
    "rand_seed": ((I64,), False),
    "rand_int": ((), False),
}


class _RV:
    """An rvalue: IR value plus its MiniC-level type."""

    __slots__ = ("value", "type")

    def __init__(self, value: Value, type_: Type):
        self.value = value
        self.type = type_


class _LV:
    """An lvalue: the address of a location plus the located type."""

    __slots__ = ("addr", "type")

    def __init__(self, addr: Value, type_: Type):
        self.addr = addr
        self.type = type_


class Lowerer:
    """Lowers a type-checked MiniC AST to the typed mini-IR: control
    flow to blocks/branches, lvalues to addresses, with deterministic
    value numbering so module fingerprints are stable.
    """
    def __init__(self, program: ast.Program, module_name: str = "minic"):
        self.program = program
        self.module = Module(module_name)
        self.builder = IRBuilder(self.module)
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self.scopes: List[Dict[str, _LV]] = []
        self.current_fn: Optional[Function] = None
        self.entry_block: Optional[BasicBlock] = None
        self.break_targets: List[BasicBlock] = []
        self.continue_targets: List[BasicBlock] = []

    # -- errors / types -----------------------------------------------------

    @staticmethod
    def _error(node: ast.Node, message: str) -> CompileError:
        return CompileError(message, node.line, node.col)

    def resolve_type(self, te: ast.TypeExpr) -> Type:
        if te.is_struct:
            if not self.module.types.has_struct(te.base):
                raise self._error(te, f"unknown struct {te.base!r}")
            base: Type = self.module.types.get_struct(te.base)
        else:
            if te.base not in _BASE_TYPES:
                raise self._error(te, f"unknown type {te.base!r}")
            base = _BASE_TYPES[te.base]
        for _ in range(te.pointer_depth):
            base = PointerType(base)
        for dim in reversed(te.array_dims):
            base = ArrayType(base, dim)
        return base

    # -- entry point --------------------------------------------------------

    def lower(self) -> Module:
        # Pass 1: declare struct names (to allow recursive pointers).
        for sd in self.program.structs:
            self.module.types.declare_struct(sd.name)
        # Pass 2: define struct bodies.
        for sd in self.program.structs:
            fields = [
                StructField(name, self.resolve_type(te)) for te, name in sd.fields
            ]
            self.module.types.define_struct(sd.name, fields)
        # Pass 3: globals.
        for gd in self.program.globals:
            self._lower_global(gd)
        # Pass 4: function signatures (allowing forward references).
        for fd in self.program.functions:
            ret = self.resolve_type(fd.return_type)  # type: ignore[arg-type]
            params = tuple(self.resolve_type(p.type) for p in fd.params)  # type: ignore[arg-type]
            fn = Function(fd.name, FunctionType(ret, params),
                          [p.name for p in fd.params])
            self.module.add_function(fn)
            self.functions[fd.name] = fn
        # Pass 5: bodies.
        for fd in self.program.functions:
            self._lower_function(fd)
        return self.module

    # -- globals -----------------------------------------------------------------

    def _lower_global(self, gd: ast.GlobalDef) -> None:
        ty = self.resolve_type(gd.type)  # type: ignore[arg-type]
        init_bytes: Optional[bytes] = None
        if gd.init is not None:
            value = self._const_eval(gd.init)
            init_bytes = self._scalar_bytes(value, ty, gd)
        gv = GlobalVariable(gd.name, ty, init_bytes, constant=gd.is_const)
        self.module.add_global(gv)
        self.globals[gd.name] = gv

    def _const_eval(self, expr: ast.Expr):
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._const_eval(expr.operand)  # type: ignore[arg-type]
        if isinstance(expr, ast.SizeofExpr):
            return self.resolve_type(expr.type).size  # type: ignore[arg-type]
        if isinstance(expr, ast.Binary):
            a = self._const_eval(expr.lhs)  # type: ignore[arg-type]
            b = self._const_eval(expr.rhs)  # type: ignore[arg-type]
            ops = {"+": lambda: a + b, "-": lambda: a - b, "*": lambda: a * b,
                   "/": lambda: a // b if isinstance(a, int) else a / b}
            if expr.op in ops:
                return ops[expr.op]()
        raise self._error(expr, "global initializer must be a constant expression")

    def _scalar_bytes(self, value, ty: Type, node: ast.Node) -> bytes:
        import struct as _struct

        if isinstance(ty, IntType):
            return (ty.wrap(int(value)) & ((1 << ty.bits) - 1)).to_bytes(
                ty.size, "little"
            )
        if isinstance(ty, FloatType):
            return _struct.pack("<d" if ty.bits == 64 else "<f", float(value))
        raise self._error(node, f"cannot initialize global of type {ty}")

    # -- functions --------------------------------------------------------------------

    def _lower_function(self, fd: ast.FunctionDef) -> None:
        fn = self.functions[fd.name]
        self.current_fn = fn
        self.entry_block = fn.add_block("entry")
        start = fn.add_block("start")
        self.builder.position_at_end(start)
        self.scopes = [{}]

        # Parameters become mutable locals (mem2reg re-promotes them).
        for formal in fn.args:
            slot = self._entry_alloca(formal.type, formal.name)
            self._emit_store_raw(_RV(formal, formal.type), slot)
            self.scopes[-1][formal.name] = slot

        self._lower_block(fd.body)  # type: ignore[arg-type]

        # Implicit return.
        if not self.builder.block.is_terminated:  # type: ignore[union-attr]
            if fn.return_type.is_void():
                self.builder.ret()
            elif fn.return_type.is_float():
                self.builder.ret(0.0)
            elif fn.return_type.is_pointer():
                self.builder.ret(ConstNull())
            else:
                self.builder.ret(ConstInt(fn.return_type, 0))  # type: ignore[arg-type]

        # Seal the entry block: allocas then a jump to the first real block.
        entry_builder = IRBuilder(self.module, self.entry_block)
        entry_builder.br(start)
        self.current_fn = None

    def _entry_alloca(self, ty: Type, name: str) -> _LV:
        entry_builder = IRBuilder(self.module, self.entry_block)
        alloca = entry_builder.alloca(ty, 1, name=name)
        return _LV(alloca, ty)

    # -- scope helpers -------------------------------------------------------------

    def _declare_local(self, node: ast.Node, name: str, ty: Type) -> _LV:
        if name in self.scopes[-1]:
            raise self._error(node, f"redeclaration of {name!r}")
        slot = self._entry_alloca(ty, name)
        self.scopes[-1][name] = slot
        return slot

    def _lookup(self, node: ast.Node, name: str) -> _LV:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        if name in self.globals:
            gv = self.globals[name]
            return _LV(gv, gv.value_type)
        raise self._error(node, f"use of undeclared identifier {name!r}")

    # -- statements ------------------------------------------------------------------

    def _new_block(self, name: str) -> BasicBlock:
        assert self.current_fn is not None
        return self.current_fn.add_block(name)

    def _ensure_block(self) -> None:
        """After a terminator, open a fresh (unreachable) block so later
        statements in the source still lower without error."""
        if self.builder.block.is_terminated:  # type: ignore[union-attr]
            dead = self._new_block("dead")
            self.builder.position_at_end(dead)

    def _lower_block(self, block: ast.Block) -> None:
        self.scopes.append({})
        for stmt in block.statements:
            self._lower_stmt(stmt)
        self.scopes.pop()

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        self._ensure_block()
        if isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.DeclStmt):
            self._lower_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.break_targets:
                raise self._error(stmt, "break outside of loop")
            self.builder.br(self.break_targets[-1])
        elif isinstance(stmt, ast.Continue):
            if not self.continue_targets:
                raise self._error(stmt, "continue outside of loop")
            self.builder.br(self.continue_targets[-1])
        else:  # pragma: no cover - exhaustive
            raise self._error(stmt, f"unhandled statement {type(stmt).__name__}")

    def _lower_decl(self, stmt: ast.DeclStmt) -> None:
        ty = self.resolve_type(stmt.type)  # type: ignore[arg-type]
        slot = self._declare_local(stmt, stmt.name, ty)
        if stmt.init is not None:
            value = self._lower_expr(stmt.init)
            self._emit_store(stmt, value, slot)

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self._condition(stmt.cond)  # type: ignore[arg-type]
        then_bb = self._new_block("if.then")
        merge_bb = self._new_block("if.end")
        else_bb = self._new_block("if.else") if stmt.otherwise else merge_bb
        self.builder.condbr(cond, then_bb, else_bb)

        self.builder.position_at_end(then_bb)
        self._lower_stmt(stmt.then)  # type: ignore[arg-type]
        if not self.builder.block.is_terminated:  # type: ignore[union-attr]
            self.builder.br(merge_bb)

        if stmt.otherwise is not None:
            self.builder.position_at_end(else_bb)
            self._lower_stmt(stmt.otherwise)
            if not self.builder.block.is_terminated:  # type: ignore[union-attr]
                self.builder.br(merge_bb)

        self.builder.position_at_end(merge_bb)

    def _lower_while(self, stmt: ast.While) -> None:
        header = self._new_block("while.cond")
        body = self._new_block("while.body")
        exit_bb = self._new_block("while.end")
        self.builder.br(header)

        self.builder.position_at_end(header)
        cond = self._condition(stmt.cond)  # type: ignore[arg-type]
        self.builder.condbr(cond, body, exit_bb)

        self.builder.position_at_end(body)
        self.break_targets.append(exit_bb)
        self.continue_targets.append(header)
        self._lower_stmt(stmt.body)  # type: ignore[arg-type]
        self.continue_targets.pop()
        self.break_targets.pop()
        if not self.builder.block.is_terminated:  # type: ignore[union-attr]
            self.builder.br(header)

        self.builder.position_at_end(exit_bb)

    def _lower_for(self, stmt: ast.For) -> None:
        self.scopes.append({})
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        header = self._new_block("for.cond")
        body = self._new_block("for.body")
        latch = self._new_block("for.inc")
        exit_bb = self._new_block("for.end")
        self.builder.br(header)

        self.builder.position_at_end(header)
        if stmt.cond is not None:
            cond = self._condition(stmt.cond)
            self.builder.condbr(cond, body, exit_bb)
        else:
            self.builder.br(body)

        self.builder.position_at_end(body)
        self.break_targets.append(exit_bb)
        self.continue_targets.append(latch)
        self._lower_stmt(stmt.body)  # type: ignore[arg-type]
        self.continue_targets.pop()
        self.break_targets.pop()
        if not self.builder.block.is_terminated:  # type: ignore[union-attr]
            self.builder.br(latch)

        self.builder.position_at_end(latch)
        if stmt.step is not None:
            self._lower_expr(stmt.step)
        self.builder.br(header)

        self.builder.position_at_end(exit_bb)
        self.scopes.pop()

    def _lower_return(self, stmt: ast.Return) -> None:
        assert self.current_fn is not None
        ret_ty = self.current_fn.return_type
        if stmt.value is None:
            if not ret_ty.is_void():
                raise self._error(stmt, "return without value in non-void function")
            self.builder.ret()
            return
        value = self._lower_expr(stmt.value)
        converted = self._convert(stmt, value, ret_ty)
        self.builder.ret(converted.value)

    # -- expression dispatch ------------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> _RV:
        if isinstance(expr, ast.IntLit):
            ty = I64 if expr.value > 0x7FFFFFFF or expr.value < -0x80000000 else I32
            return _RV(ConstInt(ty, expr.value), ty)
        if isinstance(expr, ast.FloatLit):
            return _RV(ConstFloat(F64, expr.value), F64)
        if isinstance(expr, ast.StringLit):
            gs = self.module.intern_string(expr.value)
            return _RV(gs, PointerType(I8))
        if isinstance(expr, ast.Ident):
            return self._load_lvalue(expr, self._lvalue(expr))
        if isinstance(expr, (ast.Index, ast.Member)):
            return self._load_lvalue(expr, self._lvalue(expr))
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, ast.Conditional):
            return self._lower_conditional(expr)
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr)
        if isinstance(expr, ast.CastExpr):
            value = self._lower_expr(expr.operand)  # type: ignore[arg-type]
            return self._convert(expr, value, self.resolve_type(expr.type))  # type: ignore[arg-type]
        if isinstance(expr, ast.SizeofExpr):
            size = self.resolve_type(expr.type).size  # type: ignore[arg-type]
            return _RV(ConstInt(I64, size), I64)
        raise self._error(expr, f"unhandled expression {type(expr).__name__}")

    # -- lvalues --------------------------------------------------------------------------

    def _lvalue(self, expr: ast.Expr) -> _LV:
        if isinstance(expr, ast.Ident):
            return self._lookup(expr, expr.name)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            ptr = self._lower_expr(expr.operand)  # type: ignore[arg-type]
            if not isinstance(ptr.type, PointerType) or ptr.type.pointee is None:
                raise self._error(expr, "dereference of non-pointer")
            return _LV(ptr.value, ptr.type.pointee)
        if isinstance(expr, ast.Index):
            return self._index_lvalue(expr)
        if isinstance(expr, ast.Member):
            return self._member_lvalue(expr)
        raise self._error(expr, "expression is not assignable")

    def _index_lvalue(self, expr: ast.Index) -> _LV:
        base_expr = expr.base
        assert base_expr is not None
        # Arrays index in place; pointers index through their value.
        base_ty = self._type_of_lvalue_base(base_expr)
        if base_ty is not None and isinstance(base_ty, ArrayType):
            base = self._lvalue(base_expr)
            elem = base.type.element  # type: ignore[union-attr]
            addr_base = base.addr
        else:
            ptr = self._lower_expr(base_expr)
            if not isinstance(ptr.type, PointerType) or ptr.type.pointee is None:
                raise self._error(expr, "indexing a non-pointer")
            elem = ptr.type.pointee
            addr_base = ptr.value
        index = self._lower_expr(expr.index)  # type: ignore[arg-type]
        idx64 = self._convert(expr, index, I64)
        offset = self.builder.mul(idx64.value, elem.size)
        addr = self.builder.ptradd(addr_base, offset, elem)
        return _LV(addr, elem)

    def _type_of_lvalue_base(self, expr: ast.Expr) -> Optional[Type]:
        """Type of an expression *as an lvalue*, or None if not an lvalue.
        Used to distinguish ``arr[i]`` (in-place) from ``ptr[i]``."""
        try:
            if isinstance(expr, ast.Ident):
                return self._lookup(expr, expr.name).type
            if isinstance(expr, ast.Index):
                base_ty = self._type_of_lvalue_base(expr.base)  # type: ignore[arg-type]
                if isinstance(base_ty, ArrayType):
                    return base_ty.element
                if isinstance(base_ty, PointerType):
                    return base_ty.pointee
                return None
            if isinstance(expr, ast.Member):
                st = self._struct_of_member(expr)
                if st is None:
                    return None
                return st.field_type(st.field_index(expr.field_name))
        except CompileError:
            return None
        return None

    def _struct_of_member(self, expr: ast.Member) -> Optional[StructType]:
        base_expr = expr.base
        assert base_expr is not None
        if expr.arrow:
            try:
                ptr_ty = self._type_of_lvalue_base(base_expr)
            except CompileError:
                ptr_ty = None
            if isinstance(ptr_ty, PointerType) and isinstance(ptr_ty.pointee, StructType):
                return ptr_ty.pointee
            return None
        base_ty = self._type_of_lvalue_base(base_expr)
        return base_ty if isinstance(base_ty, StructType) else None

    def _member_lvalue(self, expr: ast.Member) -> _LV:
        assert expr.base is not None
        if expr.arrow:
            ptr = self._lower_expr(expr.base)
            if not isinstance(ptr.type, PointerType) or not isinstance(
                ptr.type.pointee, StructType
            ):
                raise self._error(expr, "-> on non-struct-pointer")
            st = ptr.type.pointee
            base_addr = ptr.value
        else:
            base = self._lvalue(expr.base)
            if not isinstance(base.type, StructType):
                raise self._error(expr, ". on non-struct value")
            st = base.type
            base_addr = base.addr
        try:
            index = st.field_index(expr.field_name)
        except IRTypeError as e:
            raise self._error(expr, str(e)) from None
        field_ty = st.field_type(index)
        offset = st.field_offset(index)
        addr = self.builder.ptradd(base_addr, offset, field_ty,
                                   name=f"{st.name}.{expr.field_name}")
        return _LV(addr, field_ty)

    def _load_lvalue(self, node: ast.Node, lv: _LV) -> _RV:
        if isinstance(lv.type, ArrayType):
            # Array-to-pointer decay.
            return _RV(lv.addr, PointerType(lv.type.element))
        if isinstance(lv.type, StructType):
            # Struct rvalues are only used for member access / address-of;
            # represent them by their address.
            return _RV(lv.addr, PointerType(lv.type))
        load = self.builder.load(lv.addr, lv.type)
        return _RV(load, lv.type)

    # -- stores / conversions --------------------------------------------------------------

    def _emit_store(self, node: ast.Node, value: _RV, slot: _LV) -> _RV:
        converted = self._convert(node, value, slot.type)
        self.builder.store(converted.value, slot.addr)
        return converted

    def _emit_store_raw(self, value: _RV, slot: _LV) -> None:
        self.builder.store(value.value, slot.addr)

    def _convert(self, node: ast.Node, rv: _RV, to_ty: Type) -> _RV:
        from_ty = rv.type
        if from_ty == to_ty:
            return rv
        b = self.builder
        if isinstance(from_ty, IntType) and isinstance(to_ty, IntType):
            if to_ty.bits > from_ty.bits:
                kind = CastKind.SEXT if from_ty.signed else CastKind.ZEXT
            else:
                kind = CastKind.TRUNC
            return _RV(b.cast(kind, rv.value, to_ty), to_ty)
        if isinstance(from_ty, IntType) and isinstance(to_ty, FloatType):
            kind = CastKind.SITOFP if from_ty.signed else CastKind.UITOFP
            return _RV(b.cast(kind, rv.value, to_ty), to_ty)
        if isinstance(from_ty, FloatType) and isinstance(to_ty, IntType):
            kind = CastKind.FPTOSI if to_ty.signed else CastKind.FPTOUI
            return _RV(b.cast(kind, rv.value, to_ty), to_ty)
        if isinstance(from_ty, FloatType) and isinstance(to_ty, FloatType):
            kind = CastKind.FPEXT if to_ty.bits > from_ty.bits else CastKind.FPTRUNC
            return _RV(b.cast(kind, rv.value, to_ty), to_ty)
        if isinstance(from_ty, PointerType) and isinstance(to_ty, PointerType):
            return _RV(b.cast(CastKind.BITCAST, rv.value, to_ty), to_ty)
        if isinstance(from_ty, IntType) and isinstance(to_ty, PointerType):
            return _RV(b.cast(CastKind.INTTOPTR, rv.value, to_ty), to_ty)
        if isinstance(from_ty, PointerType) and isinstance(to_ty, IntType):
            return _RV(b.cast(CastKind.PTRTOINT, rv.value, to_ty), to_ty)
        raise self._error(node, f"cannot convert {from_ty} to {to_ty}")

    def _condition(self, expr: ast.Expr) -> Value:
        rv = self._lower_expr(expr)
        if rv.type == BOOL:
            return rv.value
        if isinstance(rv.type, IntType):
            return self.builder.icmp(CmpPred.NE, rv.value, ConstInt(rv.type, 0))
        if isinstance(rv.type, PointerType):
            return self.builder.icmp(CmpPred.NE, rv.value, ConstNull(rv.type))
        if isinstance(rv.type, FloatType):
            return self.builder.fcmp(CmpPred.NE, rv.value, ConstFloat(rv.type, 0.0))
        raise self._error(expr, f"type {rv.type} is not a condition")

    # -- unary / binary --------------------------------------------------------------------

    def _lower_unary(self, expr: ast.Unary) -> _RV:
        assert expr.operand is not None
        op = expr.op
        if op == "&":
            lv = self._lvalue(expr.operand)
            return _RV(lv.addr, PointerType(lv.type))
        if op == "*":
            lv = self._lvalue(expr)
            return self._load_lvalue(expr, lv)
        if op in ("++", "--", "p++", "p--"):
            return self._lower_incdec(expr)
        rv = self._lower_expr(expr.operand)
        rv = self._bool_to_int(rv)
        if op == "-":
            if isinstance(rv.type, FloatType):
                return _RV(self.builder.fsub(ConstFloat(rv.type, 0.0), rv.value), rv.type)
            if isinstance(rv.type, IntType):
                return _RV(self.builder.sub(ConstInt(rv.type, 0), rv.value), rv.type)
            raise self._error(expr, "unary - on non-numeric value")
        if op == "!":
            if isinstance(rv.type, PointerType):
                cmp = self.builder.icmp(CmpPred.EQ, rv.value, ConstNull(rv.type))
            elif isinstance(rv.type, FloatType):
                cmp = self.builder.fcmp(CmpPred.EQ, rv.value, ConstFloat(rv.type, 0.0))
            else:
                cmp = self.builder.icmp(CmpPred.EQ, rv.value, ConstInt(rv.type, 0))  # type: ignore[arg-type]
            return _RV(cmp, BOOL)
        if op == "~":
            if not isinstance(rv.type, IntType):
                raise self._error(expr, "~ on non-integer value")
            return _RV(self.builder.xor(rv.value, ConstInt(rv.type, -1)), rv.type)
        raise self._error(expr, f"unhandled unary operator {op!r}")

    def _lower_incdec(self, expr: ast.Unary) -> _RV:
        assert expr.operand is not None
        lv = self._lvalue(expr.operand)
        old = self._load_lvalue(expr, lv)
        is_post = expr.op.startswith("p")
        delta = 1 if expr.op.endswith("++") else -1
        if isinstance(lv.type, PointerType):
            if lv.type.pointee is None:
                raise self._error(expr, "++/-- on opaque pointer")
            new_val = self.builder.ptradd(
                old.value, delta * lv.type.pointee.size, lv.type.pointee
            )
            new = _RV(new_val, lv.type)
        elif isinstance(lv.type, FloatType):
            new = _RV(self.builder.fadd(old.value, ConstFloat(lv.type, float(delta))), lv.type)
        elif isinstance(lv.type, IntType):
            new = _RV(self.builder.add(old.value, ConstInt(lv.type, delta)), lv.type)
        else:
            raise self._error(expr, "++/-- on unsupported type")
        self._emit_store_raw(new, lv)
        return old if is_post else new

    def _bool_to_int(self, rv: _RV) -> _RV:
        if rv.type == BOOL:
            value = self.builder.cast(CastKind.ZEXT, rv.value, I32)
            return _RV(value, I32)
        return rv

    def _promote_pair(self, node: ast.Node, lhs: _RV, rhs: _RV) -> Tuple[_RV, _RV, Type]:
        lhs = self._bool_to_int(lhs)
        rhs = self._bool_to_int(rhs)
        lt, rt = lhs.type, rhs.type
        if isinstance(lt, FloatType) or isinstance(rt, FloatType):
            common: Type = F64
        else:
            assert isinstance(lt, IntType) and isinstance(rt, IntType)
            rank = {(64, False): 5, (64, True): 4, (32, False): 3, (32, True): 2}
            lr = rank.get((lt.bits, lt.signed), 1)
            rr = rank.get((rt.bits, rt.signed), 1)
            best = max(lr, rr, 2)
            common = {5: U64, 4: I64, 3: U32, 2: I32}[best]
        return (
            self._convert(node, lhs, common),
            self._convert(node, rhs, common),
            common,
        )

    def _lower_binary(self, expr: ast.Binary) -> _RV:
        op = expr.op
        assert expr.lhs is not None and expr.rhs is not None
        if op in ("&&", "||"):
            return self._lower_logical(expr)

        lhs = self._lower_expr(expr.lhs)
        rhs = self._lower_expr(expr.rhs)
        return self._binary_values(expr, op, lhs, rhs)

    def _binary_values(self, expr: ast.Node, op: str, lhs: _RV, rhs: _RV) -> _RV:
        # Pointer arithmetic and comparisons.
        lp = isinstance(lhs.type, PointerType)
        rp = isinstance(rhs.type, PointerType)
        if op in _CMP_OPS and (lp or rp):
            lv = lhs.value if lp else self._convert(expr, lhs, PointerType()).value
            rv = rhs.value if rp else self._convert(expr, rhs, PointerType()).value
            return _RV(self.builder.icmp(_CMP_OPS[op], lv, rv), BOOL)
        if op in ("+", "-") and lp and not rp:
            return self._pointer_offset(expr, lhs, rhs, negate=(op == "-"))
        if op == "+" and rp and not lp:
            return self._pointer_offset(expr, rhs, lhs, negate=False)
        if op == "-" and lp and rp:
            if lhs.type.pointee is None:  # type: ignore[union-attr]
                raise self._error(expr, "difference of opaque pointers")
            li = self.builder.cast(CastKind.PTRTOINT, lhs.value, I64)
            ri = self.builder.cast(CastKind.PTRTOINT, rhs.value, I64)
            diff = self.builder.sub(li, ri)
            size = lhs.type.pointee.size  # type: ignore[union-attr]
            return _RV(self.builder.div(diff, size), I64)

        lhs2, rhs2, common = self._promote_pair(expr, lhs, rhs)
        if op in _CMP_OPS:
            if isinstance(common, FloatType):
                return _RV(self.builder.fcmp(_CMP_OPS[op], lhs2.value, rhs2.value), BOOL)
            return _RV(self.builder.icmp(_CMP_OPS[op], lhs2.value, rhs2.value), BOOL)
        if op in _ARITH_BINOPS:
            int_kind, float_kind = _ARITH_BINOPS[op]
            if isinstance(common, FloatType):
                if float_kind is None:
                    raise self._error(expr, f"operator {op!r} on floating-point values")
                return _RV(self.builder.binop(float_kind, lhs2.value, rhs2.value), common)
            return _RV(self.builder.binop(int_kind, lhs2.value, rhs2.value), common)
        raise self._error(expr, f"unhandled binary operator {op!r}")

    def _pointer_offset(self, node: ast.Node, ptr: _RV, idx: _RV, negate: bool) -> _RV:
        assert isinstance(ptr.type, PointerType)
        if ptr.type.pointee is None:
            raise self._error(node, "arithmetic on opaque pointer")
        idx64 = self._convert(node, self._bool_to_int(idx), I64)
        scaled = self.builder.mul(idx64.value, ptr.type.pointee.size)
        if negate:
            scaled = self.builder.sub(ConstInt(I64, 0), scaled)
        return _RV(self.builder.ptradd(ptr.value, scaled, ptr.type.pointee), ptr.type)

    def _lower_logical(self, expr: ast.Binary) -> _RV:
        """Short-circuit && / || via a temporary slot (promoted by mem2reg)."""
        assert expr.lhs is not None and expr.rhs is not None
        slot = self._entry_alloca(I32, f"logical{expr.line}")
        rhs_bb = self._new_block("logic.rhs")
        merge_bb = self._new_block("logic.end")

        lhs_cond = self._condition(expr.lhs)
        if expr.op == "&&":
            self._emit_store_raw(_RV(ConstInt(I32, 0), I32), slot)
            self.builder.condbr(lhs_cond, rhs_bb, merge_bb)
        else:
            self._emit_store_raw(_RV(ConstInt(I32, 1), I32), slot)
            self.builder.condbr(lhs_cond, merge_bb, rhs_bb)

        self.builder.position_at_end(rhs_bb)
        rhs_cond = self._condition(expr.rhs)
        as_int = self.builder.cast(CastKind.ZEXT, rhs_cond, I32)
        self._emit_store_raw(_RV(as_int, I32), slot)
        self.builder.br(merge_bb)

        self.builder.position_at_end(merge_bb)
        return self._load_lvalue(expr, slot)

    # -- assignment / conditional / call ------------------------------------------------------

    def _lower_assign(self, expr: ast.Assign) -> _RV:
        assert expr.target is not None and expr.value is not None
        slot = self._lvalue(expr.target)
        if expr.op == "=":
            value = self._lower_expr(expr.value)
            return self._emit_store(expr, value, slot)
        # Compound assignment: the lvalue is evaluated exactly once (C
        # semantics) — the load and store share the same address value,
        # which is also what the reduction recognizer keys on.
        old = self._load_lvalue(expr, slot)
        rhs = self._lower_expr(expr.value)
        value = self._binary_values(expr, expr.op[:-1], old, rhs)
        return self._emit_store(expr, value, slot)

    def _lower_conditional(self, expr: ast.Conditional) -> _RV:
        assert expr.cond and expr.then and expr.otherwise
        then_bb = self._new_block("sel.then")
        else_bb = self._new_block("sel.else")
        merge_bb = self._new_block("sel.end")
        cond = self._condition(expr.cond)
        self.builder.condbr(cond, then_bb, else_bb)

        # Evaluate both arms into a temporary of the common type.  The
        # common type is discovered from the "then" arm; the else arm is
        # converted to match.
        self.builder.position_at_end(then_bb)
        then_rv = self._bool_to_int(self._lower_expr(expr.then))
        slot = self._entry_alloca(then_rv.type, f"sel{expr.line}")
        self._emit_store_raw(then_rv, slot)
        self.builder.br(merge_bb)

        self.builder.position_at_end(else_bb)
        else_rv = self._lower_expr(expr.otherwise)
        self._emit_store(expr, else_rv, slot)
        self.builder.br(merge_bb)

        self.builder.position_at_end(merge_bb)
        return self._load_lvalue(expr, slot)

    def _lower_call(self, expr: ast.CallExpr) -> _RV:
        args = [self._lower_expr(a) for a in expr.args]
        if expr.name in self.functions:
            fn = self.functions[expr.name]
            if len(args) != len(fn.function_type.param_types):
                raise self._error(
                    expr,
                    f"{expr.name} expects {len(fn.function_type.param_types)} "
                    f"arguments, got {len(args)}",
                )
            converted = [
                self._convert(expr, a, t).value
                for a, t in zip(args, fn.function_type.param_types)
            ]
            call = self.builder.call(fn, converted)
            return _RV(call, fn.return_type)
        if expr.name in ALL_INTRINSICS:
            fn = self.module.get_or_declare_intrinsic(expr.name)
            sig = _INTRINSIC_SIGS.get(expr.name)
            values: List[Value] = []
            for i, a in enumerate(args):
                a = self._bool_to_int(a)
                if sig is not None and i < len(sig[0]):
                    a = self._convert(expr, a, sig[0][i])
                values.append(a.value)
            call = self.builder.call(fn, values)
            return _RV(call, fn.return_type)
        raise self._error(expr, f"call to undeclared function {expr.name!r}")


def _renumber_values(module: Module) -> None:
    """Deterministically renumber value uids in structural order.

    Fresh values draw uids from a process-global counter, so compiling
    the same source twice would otherwise yield different uids — and a
    different module fingerprint, defeating the on-disk profile cache
    (:mod:`repro.bench.cache`) within a process.  Renumbering to 1..N in
    walk order makes the fingerprint a pure function of the source.
    Values created *after* compilation (by transforms) keep drawing from
    the global counter, which has already advanced past N, so uids stay
    unique within the module.
    """
    import itertools

    counter = itertools.count(1)
    seen = set()

    def visit(v: Value) -> None:
        if id(v) not in seen:
            seen.add(id(v))
            v.uid = next(counter)

    for gv in module.globals.values():
        visit(gv)
    for fn in module.functions.values():
        visit(fn)
        for arg in fn.args:
            visit(arg)
        for bb in fn.blocks:
            for inst in bb.instructions:
                visit(inst)
        for bb in fn.blocks:
            for inst in bb.instructions:
                for op in inst.operands:
                    visit(op)


def compile_minic(source: str, module_name: str = "minic",
                  promote: bool = True, licm: bool = True,
                  verify: bool = True) -> Module:
    """Compile MiniC source text to a verified IR module.

    ``promote`` runs mem2reg and ``licm`` hoists loop invariants (both on
    by default, matching the paper's pipeline where LLVM's standard
    cleanups run before Privateer).
    """
    from ..obs.trace import TRACER
    from .parser import parse

    with TRACER.span("pipeline.compile", cat="pipeline",
                     module=module_name) as sp:
        program = parse(source)
        module = Lowerer(program, module_name).lower()
        if promote:
            from ..analysis.mem2reg import promote_module

            promote_module(module)
        if licm and promote:
            from ..analysis.licm import hoist_module

            hoist_module(module)
        if verify:
            from ..ir.verifier import verify_module

            verify_module(module)
        _renumber_values(module)
        if TRACER.enabled:
            defined = module.defined_functions()
            sp.set(functions=len(defined),
                   instructions=sum(len(bb.instructions)
                                    for fn in defined for bb in fn.blocks))
    return module
