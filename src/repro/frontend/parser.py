"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from . import ast
from .lexer import CompileError, TokKind, Token, tokenize

_TYPE_KEYWORDS = {"void", "char", "int", "unsigned", "long", "double", "struct"}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

# Binary operator precedence levels, lowest binds weakest.
_BINARY_LEVELS: List[List[str]] = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    """Recursive-descent MiniC parser with C operator precedence,
    producing the AST consumed by semantic analysis.
    """
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self.struct_names: Set[str] = set()

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def _error(self, message: str, tok: Optional[Token] = None) -> CompileError:
        tok = tok or self._peek()
        return CompileError(message, tok.line, tok.col)

    def _expect_punct(self, text: str) -> Token:
        tok = self._next()
        if not tok.is_punct(text):
            raise self._error(f"expected {text!r}, found {tok.text!r}", tok)
        return tok

    def _expect_ident(self) -> Token:
        tok = self._next()
        if tok.kind is not TokKind.IDENT:
            raise self._error(f"expected identifier, found {tok.text!r}", tok)
        return tok

    def _accept_punct(self, text: str) -> bool:
        if self._peek().is_punct(text):
            self.pos += 1
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self._peek().is_keyword(text):
            self.pos += 1
            return True
        return False

    # -- types ---------------------------------------------------------------

    def _at_type(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        return tok.kind is TokKind.KEYWORD and tok.text in _TYPE_KEYWORDS

    def parse_type(self) -> ast.TypeExpr:
        tok = self._peek()
        self._accept_keyword("const")
        tok = self._peek()
        if not self._at_type():
            raise self._error(f"expected type, found {tok.text!r}")
        base = self._next().text
        is_struct = False
        if base == "struct":
            name = self._expect_ident()
            base = name.text
            is_struct = True
        elif base == "unsigned":
            # Accept "unsigned [int|long|char]" and bare "unsigned".
            if self._peek().is_keyword("int"):
                self._next()
            elif self._peek().is_keyword("long"):
                self._next()
                base = "unsigned_long"
            elif self._peek().is_keyword("char"):
                self._next()
                base = "unsigned_char"
        elif base == "long":
            if self._peek().is_keyword("long"):
                self._next()
        ty = ast.TypeExpr(tok.line, tok.col, base, is_struct)
        while self._accept_punct("*"):
            ty = ty.with_pointer()
        return ty

    def _parse_array_dims(self) -> Tuple[int, ...]:
        dims: List[int] = []
        while self._accept_punct("["):
            tok = self._next()
            if tok.kind is not TokKind.INT:
                raise self._error("array dimension must be an integer literal", tok)
            dims.append(int(tok.value))  # type: ignore[arg-type]
            self._expect_punct("]")
        return tuple(dims)

    # -- top level -------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self._peek().kind is not TokKind.EOF:
            if self._peek().is_keyword("struct") and self._peek(2).is_punct("{"):
                program.structs.append(self._parse_struct())
                continue
            is_const = self._peek().is_keyword("const")
            ty = self.parse_type()
            name = self._expect_ident()
            if self._peek().is_punct("("):
                program.functions.append(self._parse_function(ty, name))
            else:
                program.globals.append(self._parse_global(ty, name, is_const))
        return program

    def _parse_struct(self) -> ast.StructDef:
        kw = self._next()  # struct
        name = self._expect_ident()
        self.struct_names.add(name.text)
        self._expect_punct("{")
        fields: List[Tuple[ast.TypeExpr, str]] = []
        while not self._accept_punct("}"):
            fty = self.parse_type()
            fname = self._expect_ident()
            dims = self._parse_array_dims()
            if dims:
                fty = ast.TypeExpr(fty.line, fty.col, fty.base, fty.is_struct,
                                   fty.pointer_depth, dims)
            self._expect_punct(";")
            fields.append((fty, fname.text))
        self._expect_punct(";")
        return ast.StructDef(kw.line, kw.col, name.text, fields)

    def _parse_global(self, ty: ast.TypeExpr, name: Token,
                      is_const: bool) -> ast.GlobalDef:
        dims = self._parse_array_dims()
        if dims:
            ty = ast.TypeExpr(ty.line, ty.col, ty.base, ty.is_struct,
                              ty.pointer_depth, dims)
        init = None
        if self._accept_punct("="):
            init = self.parse_expr()
        self._expect_punct(";")
        return ast.GlobalDef(name.line, name.col, ty, name.text, init, is_const)

    def _parse_function(self, ret: ast.TypeExpr, name: Token) -> ast.FunctionDef:
        self._expect_punct("(")
        params: List[ast.Param] = []
        if not self._accept_punct(")"):
            if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
                self._next()
                self._next()
            else:
                while True:
                    pty = self.parse_type()
                    pname = self._expect_ident()
                    params.append(ast.Param(pname.line, pname.col, pty, pname.text))
                    if self._accept_punct(")"):
                        break
                    self._expect_punct(",")
        body = self.parse_block()
        return ast.FunctionDef(name.line, name.col, ret, name.text, params, body)

    # -- statements --------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        open_tok = self._expect_punct("{")
        block = ast.Block(open_tok.line, open_tok.col)
        while not self._accept_punct("}"):
            block.statements.append(self.parse_statement())
        return block

    def parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        if tok.is_punct("{"):
            return self.parse_block()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("return"):
            self._next()
            value = None if self._peek().is_punct(";") else self.parse_expr()
            self._expect_punct(";")
            return ast.Return(tok.line, tok.col, value)
        if tok.is_keyword("break"):
            self._next()
            self._expect_punct(";")
            return ast.Break(tok.line, tok.col)
        if tok.is_keyword("continue"):
            self._next()
            self._expect_punct(";")
            return ast.Continue(tok.line, tok.col)
        if self._at_type():
            return self._parse_decl_statement()
        if tok.is_punct(";"):
            self._next()
            return ast.Block(tok.line, tok.col)
        expr = self.parse_expr()
        self._expect_punct(";")
        return ast.ExprStmt(tok.line, tok.col, expr)

    def _parse_decl_statement(self) -> ast.Stmt:
        ty = self.parse_type()
        name = self._expect_ident()
        dims = self._parse_array_dims()
        if dims:
            ty = ast.TypeExpr(ty.line, ty.col, ty.base, ty.is_struct,
                              ty.pointer_depth, dims)
        init = None
        if self._accept_punct("="):
            init = self.parse_expr()
        # Comma-separated declarators share the base type.
        decls: List[ast.Stmt] = [ast.DeclStmt(name.line, name.col, ty, name.text, init)]
        while self._accept_punct(","):
            extra_ty = ty
            depth = 0
            while self._accept_punct("*"):
                depth += 1
            if depth:
                extra_ty = ast.TypeExpr(ty.line, ty.col, ty.base, ty.is_struct,
                                        ty.pointer_depth + depth, ())
            n2 = self._expect_ident()
            d2 = self._parse_array_dims()
            if d2:
                extra_ty = ast.TypeExpr(extra_ty.line, extra_ty.col, extra_ty.base,
                                        extra_ty.is_struct, extra_ty.pointer_depth, d2)
            i2 = None
            if self._accept_punct("="):
                i2 = self.parse_expr()
            decls.append(ast.DeclStmt(n2.line, n2.col, extra_ty, n2.text, i2))
        self._expect_punct(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(ty.line, ty.col, decls)

    def _parse_if(self) -> ast.If:
        tok = self._next()
        self._expect_punct("(")
        cond = self.parse_expr()
        self._expect_punct(")")
        then = self.parse_statement()
        otherwise = None
        if self._accept_keyword("else"):
            otherwise = self.parse_statement()
        return ast.If(tok.line, tok.col, cond, then, otherwise)

    def _parse_while(self) -> ast.While:
        tok = self._next()
        self._expect_punct("(")
        cond = self.parse_expr()
        self._expect_punct(")")
        body = self.parse_statement()
        return ast.While(tok.line, tok.col, cond, body)

    def _parse_for(self) -> ast.For:
        tok = self._next()
        self._expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self._accept_punct(";"):
            if self._at_type():
                init = self._parse_decl_statement()
            else:
                expr = self.parse_expr()
                self._expect_punct(";")
                init = ast.ExprStmt(tok.line, tok.col, expr)
        cond = None
        if not self._peek().is_punct(";"):
            cond = self.parse_expr()
        self._expect_punct(";")
        step = None
        if not self._peek().is_punct(")"):
            step = self.parse_expr()
        self._expect_punct(")")
        body = self.parse_statement()
        return ast.For(tok.line, tok.col, init, cond, step, body)

    # -- expressions -----------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        lhs = self._parse_conditional()
        tok = self._peek()
        if tok.kind is TokKind.PUNCT and tok.text in _ASSIGN_OPS:
            self._next()
            rhs = self._parse_assignment()
            return ast.Assign(tok.line, tok.col, tok.text, lhs, rhs)
        return lhs

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._peek().is_punct("?"):
            tok = self._next()
            then = self.parse_expr()
            self._expect_punct(":")
            otherwise = self._parse_conditional()
            return ast.Conditional(tok.line, tok.col, cond, then, otherwise)
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        lhs = self._parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while True:
            tok = self._peek()
            if tok.kind is TokKind.PUNCT and tok.text in ops:
                self._next()
                rhs = self._parse_binary(level + 1)
                lhs = ast.Binary(tok.line, tok.col, tok.text, lhs, rhs)
            else:
                return lhs

    def _at_cast(self) -> bool:
        if not self._peek().is_punct("("):
            return False
        nxt = self._peek(1)
        return nxt.kind is TokKind.KEYWORD and nxt.text in _TYPE_KEYWORDS

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokKind.PUNCT and tok.text in ("-", "!", "~", "*", "&"):
            self._next()
            operand = self._parse_unary()
            return ast.Unary(tok.line, tok.col, tok.text, operand)
        if tok.kind is TokKind.PUNCT and tok.text in ("++", "--"):
            self._next()
            operand = self._parse_unary()
            return ast.Unary(tok.line, tok.col, tok.text, operand)
        if tok.is_keyword("sizeof"):
            self._next()
            self._expect_punct("(")
            ty = self.parse_type()
            dims = self._parse_array_dims()
            if dims:
                ty = ast.TypeExpr(ty.line, ty.col, ty.base, ty.is_struct,
                                  ty.pointer_depth, dims)
            self._expect_punct(")")
            return ast.SizeofExpr(tok.line, tok.col, ty)
        if self._at_cast():
            self._next()  # (
            ty = self.parse_type()
            self._expect_punct(")")
            operand = self._parse_unary()
            return ast.CastExpr(tok.line, tok.col, ty, operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_punct("["):
                self._next()
                index = self.parse_expr()
                self._expect_punct("]")
                expr = ast.Index(tok.line, tok.col, expr, index)
            elif tok.is_punct("."):
                self._next()
                name = self._expect_ident()
                expr = ast.Member(tok.line, tok.col, expr, name.text, arrow=False)
            elif tok.is_punct("->"):
                self._next()
                name = self._expect_ident()
                expr = ast.Member(tok.line, tok.col, expr, name.text, arrow=True)
            elif tok.is_punct("++") or tok.is_punct("--"):
                self._next()
                expr = ast.Unary(tok.line, tok.col, "p" + tok.text, expr)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._next()
        if tok.kind is TokKind.INT or tok.kind is TokKind.CHAR:
            return ast.IntLit(tok.line, tok.col, int(tok.value))  # type: ignore[arg-type]
        if tok.kind is TokKind.FLOAT:
            return ast.FloatLit(tok.line, tok.col, float(tok.value))  # type: ignore[arg-type]
        if tok.kind is TokKind.STRING:
            return ast.StringLit(tok.line, tok.col, str(tok.value))
        if tok.kind is TokKind.IDENT:
            if self._peek().is_punct("("):
                self._next()
                args: List[ast.Expr] = []
                if not self._accept_punct(")"):
                    while True:
                        args.append(self.parse_expr())
                        if self._accept_punct(")"):
                            break
                        self._expect_punct(",")
                return ast.CallExpr(tok.line, tok.col, tok.text, args)
            return ast.Ident(tok.line, tok.col, tok.text)
        if tok.is_punct("("):
            expr = self.parse_expr()
            self._expect_punct(")")
            return expr
        raise self._error(f"unexpected token {tok.text!r} in expression", tok)


def parse(source: str, filename: str = "<minic>") -> ast.Program:
    return Parser(tokenize(source, filename)).parse_program()
