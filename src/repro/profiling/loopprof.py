"""Detailed per-loop profiler (§4.1 of the paper).

Given one candidate loop, a profiling run records — only while an
invocation of that loop is active, at any call depth:

* the pointer-to-object map (which named objects each access touches);
* read/write/reduction footprints at object-site granularity;
* cross-iteration memory flow dependences (byte-accurate last-writer);
* object lifetimes, yielding short-lived allocation sites;
* value-prediction candidates (locations whose cross-iteration reads
  always observed one constant — restricted to global objects so the
  location is nameable by the transformation);
* I/O call sites (for deferral) and block coverage (for control
  speculation).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from ..analysis.callgraph import CallGraph
from ..analysis.reduction import ReductionUpdate, reduction_sites
from ..interp.interpreter import Hook, Interpreter
from ..ir.instructions import Call, Instruction
from ..ir.module import Function, Module
from .data import FlowDep, LoopProfile, LoopRef, ValuePrediction
from .looptracker import ActiveLoop, LoopInfoCache, LoopTracker

_IO_NAMES = {"printf", "puts"}

#: last_writer value for bytes written outside any invocation of the loop.
_OUTSIDE = (None, None)


class _LoopProfileHook(Hook):
    def __init__(self, module: Module, ref: LoopRef):
        self.module = module
        self.ref = ref
        self.profile = LoopProfile(ref)
        self.cache = LoopInfoCache(module)
        self.tracker = LoopTracker(
            self.cache,
            on_enter=self._on_enter,
            on_iterate=self._on_iterate,
            on_exit=self._on_exit,
        )
        self.active: Optional[ActiveLoop] = None
        self.invocation = -1

        # Byte address -> ((invocation, iteration) | None, store site | None)
        self.last_writer: Dict[int, Tuple] = {}
        # In-loop live allocations: base -> (site, (invocation, iteration))
        self.live_allocs: Dict[int, Tuple[str, Tuple[int, int]]] = {}
        self.lifetime_violations: Set[str] = set()
        # (obj_site, offset, size) -> set of observed values (capped)
        self.vp_values: Dict[Tuple[str, int, int], Set[int]] = {}
        self.vp_deps: Dict[Tuple[str, int, int], Set[FlowDep]] = {}
        # Static reduction pairing, per function (lazy).
        self._redux_maps: Dict[Function, Dict[Instruction, ReductionUpdate]] = {}

    # -- loop lifecycle ------------------------------------------------------

    def _key(self) -> Tuple[int, int]:
        assert self.active is not None
        return (self.invocation, self.active.iteration)

    def _on_enter(self, active: ActiveLoop) -> None:
        if active.ref == self.ref and self.active is None:
            self.active = active
            self.invocation += 1
            self.profile.invocations += 1

    def _on_iterate(self, active: ActiveLoop) -> None:
        if active is self.active:
            self.profile.iterations += 1
            self._check_lifetimes()

    def _on_exit(self, active: ActiveLoop, cycles_now: int) -> None:
        if active is self.active:
            self._check_lifetimes(end_of_invocation=True)
            self.active = None

    def _check_lifetimes(self, end_of_invocation: bool = False) -> None:
        """Objects allocated in an earlier iteration and still live violate
        short-lived lifetime speculation [13]."""
        assert self.active is not None
        now = (self.invocation, self.active.iteration)
        stale = [
            base
            for base, (site, key) in self.live_allocs.items()
            if key != now or end_of_invocation
        ]
        for base in stale:
            site, _ = self.live_allocs.pop(base)
            self.lifetime_violations.add(site)

    # -- helpers -----------------------------------------------------------------

    def _redux_map(self, fn: Function) -> Dict[Instruction, ReductionUpdate]:
        if fn not in self._redux_maps:
            self._redux_maps[fn] = reduction_sites(fn)
        return self._redux_maps[fn]

    def _object_site(self, interp, addr: int, size: int) -> Optional[Tuple[str, int]]:
        found = interp.space.try_find(addr, size)
        if found is None:
            return None
        obj, offset = found
        return obj.site or obj.name, offset

    def _record_pointer(self, inst: Instruction, obj_site: str) -> None:
        self.profile.pointer_objects.setdefault(inst.site_id(), set()).add(obj_site)

    # -- hook events -----------------------------------------------------------------

    def on_branch(self, interp, inst, target) -> None:
        self.tracker.handle_branch(interp, inst, target)
        if self.active is not None:
            fn = target.parent
            if fn is not None:
                self.profile.executed_blocks.add((fn.name, target.name))

    def on_return(self, interp, fn) -> None:
        self.tracker.handle_return(interp, fn)

    def on_call(self, interp, inst: Call, callee) -> None:
        if self.active is None:
            return
        if callee.name in _IO_NAMES:
            self.profile.io_sites.add(inst.site_id())
        if not callee.is_declaration:
            self.profile.executed_blocks.add((callee.name, callee.entry.name))

    def on_alloc(self, interp, obj, inst) -> None:
        if self.active is None:
            return
        site = obj.site
        self.profile.loop_alloc_sites.add(site)
        self.live_allocs[obj.base] = (site, self._key())

    def on_free(self, interp, obj, inst) -> None:
        if self.active is None:
            return
        if isinstance(inst, Call) and obj.site:
            # The pointer-to-object map also covers free sites, so the
            # transformation can route them to the right logical heap.
            self._record_pointer(inst, obj.site)
        entry = self.live_allocs.pop(obj.base, None)
        if entry is None:
            # Freeing an object allocated outside the loop (or in an
            # earlier invocation): its site cannot be short-lived.
            if obj.site:
                self.lifetime_violations.add(obj.site)
            return
        site, key = entry
        if key != self._key():
            self.lifetime_violations.add(site)

    def on_load(self, interp, inst, addr: int, size: int) -> None:
        if self.active is None:
            return
        resolved = self._object_site(interp, addr, size)
        if resolved is None:
            return
        obj_site, offset = resolved
        self._record_pointer(inst, obj_site)
        self.profile.loads += 1
        self.profile.bytes_read += size

        fn = inst.parent.parent if inst.parent is not None else None
        is_redux = fn is not None and inst in self._redux_map(fn)
        if is_redux:
            upd = self._redux_map(fn)[inst]
            self.profile.redux_sites.add(obj_site)
            self.profile.redux_ops[obj_site] = upd.operator.name
        else:
            self.profile.read_sites.add(obj_site)

        # Cross-iteration flow detection (byte granular).
        key = self._key()
        dep_store_sites: Set[str] = set()
        for b in range(addr, addr + size):
            writer = self.last_writer.get(b)
            if writer is None or writer[0] is None:
                continue
            w_key, w_site = writer
            if w_key[0] == key[0] and w_key[1] < key[1]:
                dep_store_sites.add(w_site)
        if dep_store_sites:
            load_site = inst.site_id()
            deps = {FlowDep(s, load_site, obj_site) for s in dep_store_sites}
            self.profile.flow_deps |= deps
            # Value-prediction candidate: global objects only, word-sized.
            if obj_site.startswith("global:") and size <= 8:
                vp_key = (obj_site, offset, size)
                value = interp.space.read_int(addr, size, signed=False)
                values = self.vp_values.setdefault(vp_key, set())
                if len(values) < 3:
                    values.add(value)
                self.vp_deps.setdefault(vp_key, set()).update(deps)

    def on_store(self, interp, inst, addr: int, size: int) -> None:
        key_entry: Tuple
        if self.active is None:
            key_entry = _OUTSIDE
            for b in range(addr, addr + size):
                if b in self.last_writer:
                    self.last_writer[b] = key_entry
            return
        resolved = self._object_site(interp, addr, size)
        if resolved is None:
            return
        obj_site, _offset = resolved
        self._record_pointer(inst, obj_site)
        self.profile.stores += 1
        self.profile.bytes_written += size

        fn = inst.parent.parent if inst.parent is not None else None
        is_redux = fn is not None and inst in self._redux_map(fn)
        if is_redux:
            upd = self._redux_map(fn)[inst]
            self.profile.redux_sites.add(obj_site)
            self.profile.redux_ops[obj_site] = upd.operator.name
        else:
            self.profile.write_sites.add(obj_site)

        site = inst.site_id()
        entry = (self._key(), site)
        for b in range(addr, addr + size):
            self.last_writer[b] = entry

    # -- finalize ----------------------------------------------------------------------

    def finalize(self) -> LoopProfile:
        p = self.profile
        p.short_lived_sites = p.loop_alloc_sites - self.lifetime_violations
        for vp_key, values in self.vp_values.items():
            if len(values) == 1:
                obj_site, offset, size = vp_key
                vp = ValuePrediction(obj_site, offset, size, next(iter(values)))
                p.value_predictions[vp] = set(self.vp_deps[vp_key])
        p.unexecuted_blocks = self._region_blocks() - p.executed_blocks
        return p

    def _region_blocks(self) -> Set[Tuple[str, str]]:
        """All blocks statically reachable inside the loop region: the
        loop's blocks plus every block of defined functions transitively
        callable from it."""
        fn = self.module.function_named(self.ref.function)
        loop = self.cache.loop_by_ref(self.ref)
        out: Set[Tuple[str, str]] = {(fn.name, bb.name) for bb in loop.blocks}
        cg = CallGraph(self.module)
        callees: Set[Function] = set()
        for bb in loop.blocks:
            for inst in bb.instructions:
                if isinstance(inst, Call):
                    callees.add(inst.callee)
                    callees |= cg.transitive_callees(inst.callee)
        for g in callees:
            if not g.is_declaration:
                out |= {(g.name, bb.name) for bb in g.blocks}
        return out


def profile_loop(
    module: Module,
    ref: LoopRef,
    entry: str = "main",
    args: Sequence[object] = (),
) -> LoopProfile:
    """Run the program once with detailed instrumentation for ``ref``."""
    from ..obs.trace import TRACER

    with TRACER.span("pipeline.profile.loop", cat="pipeline",
                     loop=str(ref)) as sp:
        interp = Interpreter(module)
        hook = _LoopProfileHook(module, ref)
        interp.hooks.append(hook)
        interp.run(entry, args)
        while hook.tracker.stack:
            hook.tracker._pop(interp)
        profile = hook.finalize()
        sp.set(cycles=interp.cycles, iterations=profile.iterations,
               invocations=profile.invocations)
    return profile
