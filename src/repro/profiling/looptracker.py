"""Loop entry/iteration/exit tracking over interpreter branch events.

Both profilers need to know, at every dynamic instant, which loops are
active and at which iteration.  This module turns raw branch edges into
loop transitions using each function's LoopInfo, handling nesting,
function calls inside loops, and early exits via ``return``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.loops import Loop, LoopInfo
from ..ir.module import BasicBlock, Function, Module
from .data import LoopRef


class LoopActions:
    """Precomputed consequences of one CFG edge."""

    __slots__ = ("exited", "iterated", "entered")

    def __init__(self, exited: List[Loop], iterated: Optional[Loop],
                 entered: List[Loop]):
        self.exited = exited          # innermost-first
        self.iterated = iterated      # back edge target loop, if any
        self.entered = entered        # outermost-first


class LoopInfoCache:
    """Lazy per-function LoopInfo + per-edge action cache."""

    def __init__(self, module: Module):
        self.module = module
        self._infos: Dict[Function, LoopInfo] = {}
        self._edges: Dict[Tuple[BasicBlock, BasicBlock], LoopActions] = {}

    def info(self, fn: Function) -> LoopInfo:
        if fn not in self._infos:
            self._infos[fn] = LoopInfo(fn)
        return self._infos[fn]

    def loop_by_ref(self, ref: LoopRef) -> Loop:
        fn = self.module.function_named(ref.function)
        return self.info(fn).loop_with_header(ref.header)

    def ref_of(self, fn: Function, loop: Loop) -> LoopRef:
        return LoopRef(fn.name, loop.header.name)

    def actions(self, src: BasicBlock, dst: BasicBlock) -> LoopActions:
        key = (src, dst)
        cached = self._edges.get(key)
        if cached is not None:
            return cached
        fn = src.parent
        assert fn is not None
        info = self.info(fn)
        src_loops = self._enclosing(info, src)
        dst_loops = self._enclosing(info, dst)
        exited = [l for l in src_loops if l not in dst_loops]
        entered = [l for l in dst_loops if l not in src_loops]
        iterated: Optional[Loop] = None
        for loop in dst_loops:
            if loop.header is dst and loop in src_loops:
                iterated = loop
                break
        actions = LoopActions(list(reversed(exited)), iterated, entered)
        self._edges[key] = actions
        return actions

    @staticmethod
    def _enclosing(info: LoopInfo, bb: BasicBlock) -> List[Loop]:
        """Loops containing ``bb``, outermost first."""
        loop = info.innermost_loop_of(bb)
        chain: List[Loop] = []
        while loop is not None:
            chain.append(loop)
            loop = loop.parent
        chain.reverse()
        return chain


class ActiveLoop:
    """One live loop invocation on the tracker stack."""

    __slots__ = ("loop", "ref", "frame_depth", "iteration", "entry_cycles")

    def __init__(self, loop: Loop, ref: LoopRef, frame_depth: int,
                 entry_cycles: int):
        self.loop = loop
        self.ref = ref
        self.frame_depth = frame_depth
        self.iteration = 0
        self.entry_cycles = entry_cycles


class LoopTracker:
    """Maintains the dynamic loop stack from interpreter events.

    Callbacks (all optional):
      on_enter(active), on_iterate(active), on_exit(active, cycles_now)
    """

    def __init__(
        self,
        cache: LoopInfoCache,
        on_enter: Optional[Callable] = None,
        on_iterate: Optional[Callable] = None,
        on_exit: Optional[Callable] = None,
    ):
        self.cache = cache
        self.stack: List[ActiveLoop] = []
        self.on_enter = on_enter
        self.on_iterate = on_iterate
        self.on_exit = on_exit

    def handle_branch(self, interp, inst, target: BasicBlock) -> None:
        src = inst.parent
        if src is None or src.parent is None:
            return
        actions = self.cache.actions(src, target)
        if not (actions.exited or actions.iterated or actions.entered):
            return
        depth = len(interp.frames)
        for loop in actions.exited:
            self._pop_if_top(loop, depth, interp)
        if actions.iterated is not None and self.stack:
            top = self.stack[-1]
            if top.loop is actions.iterated and top.frame_depth == depth:
                top.iteration += 1
                if self.on_iterate:
                    self.on_iterate(top)
        fn = src.parent
        for loop in actions.entered:
            active = ActiveLoop(loop, self.cache.ref_of(fn, loop), depth,
                                interp.cycles)
            self.stack.append(active)
            if self.on_enter:
                self.on_enter(active)

    def handle_return(self, interp, fn: Function) -> None:
        depth = len(interp.frames)
        while self.stack and self.stack[-1].frame_depth > depth:
            self._pop(interp)

    def _pop_if_top(self, loop: Loop, depth: int, interp) -> None:
        if self.stack and self.stack[-1].loop is loop and \
                self.stack[-1].frame_depth == depth:
            self._pop(interp)

    def _pop(self, interp) -> None:
        active = self.stack.pop()
        if self.on_exit:
            self.on_exit(active, interp.cycles)

    def innermost(self) -> Optional[ActiveLoop]:
        return self.stack[-1] if self.stack else None

    def find(self, ref: LoopRef) -> Optional[ActiveLoop]:
        for active in reversed(self.stack):
            if active.ref == ref:
                return active
        return None
