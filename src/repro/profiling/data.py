"""Profile data structures shared by the profilers, classifier, and
transformation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

#: Sentinel object-site for memory written outside the profiled loop.
OUTSIDE_WRITE = "<outside>"


@dataclass(frozen=True)
class LoopRef:
    """Stable identifier of a static loop: function name + header block."""

    function: str
    header: str

    def __str__(self) -> str:
        return f"{self.function}/{self.header}"


@dataclass(frozen=True)
class FlowDep:
    """A profiled cross-iteration memory flow dependence."""

    src_site: str   # store instruction site
    dst_site: str   # load instruction site
    obj_site: str   # allocation site of the object carrying the dependence

    def __str__(self) -> str:
        return f"{self.src_site} -> {self.dst_site} via {self.obj_site}"


@dataclass(frozen=True)
class ValuePrediction:
    """A location observed to hold one constant at every cross-iteration
    read: predict it, and validate at iteration end (§4.1, fig. 2b)."""

    obj_site: str
    offset: int
    size: int
    value: int

    def __str__(self) -> str:
        return f"{self.obj_site}+{self.offset}:{self.size} == {self.value}"


@dataclass
class LoopTimeRecord:
    """Execution-time profile of one loop (inclusive cycles)."""

    ref: LoopRef
    cycles: int = 0
    invocations: int = 0
    iterations: int = 0
    depth: int = 1

    @property
    def avg_trip_count(self) -> float:
        return self.iterations / self.invocations if self.invocations else 0.0


@dataclass
class HotLoopReport:
    """Output of the execution-time profiler."""

    total_cycles: int
    records: List[LoopTimeRecord]

    def hottest(self, top_level_only: bool = True) -> List[LoopTimeRecord]:
        recs = [r for r in self.records if r.depth == 1] if top_level_only else list(self.records)
        return sorted(recs, key=lambda r: r.cycles, reverse=True)

    def coverage(self, ref: LoopRef) -> float:
        for r in self.records:
            if r.ref == ref:
                return r.cycles / self.total_cycles if self.total_cycles else 0.0
        return 0.0


@dataclass
class LoopProfile:
    """Detailed profile of one candidate loop.

    All object identities are *allocation sites*: ``global:<name>`` for
    globals, ``<function>:<uid>`` for allocas and heap-allocation calls.
    """

    ref: LoopRef
    invocations: int = 0
    iterations: int = 0

    # Algorithm 2 footprints (object sites).
    read_sites: Set[str] = field(default_factory=set)
    write_sites: Set[str] = field(default_factory=set)
    redux_sites: Set[str] = field(default_factory=set)
    redux_ops: Dict[str, str] = field(default_factory=dict)  # obj site -> BinOpKind name

    #: All cross-iteration memory flow dependences observed.
    flow_deps: Set[FlowDep] = field(default_factory=set)

    #: Allocation sites whose every dynamic object was allocated and freed
    #: within a single iteration.
    short_lived_sites: Set[str] = field(default_factory=set)
    #: Allocation sites allocated inside the loop (superset of short-lived).
    loop_alloc_sites: Set[str] = field(default_factory=set)

    #: Pointer-to-object map: pointer-use instruction site -> object sites.
    pointer_objects: Dict[str, Set[str]] = field(default_factory=dict)

    #: Locations whose cross-iteration reads always saw one constant,
    #: mapped to the dependences each prediction would remove.
    value_predictions: Dict[ValuePrediction, Set[FlowDep]] = field(default_factory=dict)

    #: I/O call sites inside the loop (printf/puts) — need deferral.
    io_sites: Set[str] = field(default_factory=set)

    #: Region blocks never executed during profiling: (function, block).
    unexecuted_blocks: Set[Tuple[str, str]] = field(default_factory=set)
    executed_blocks: Set[Tuple[str, str]] = field(default_factory=set)

    #: Dynamic access counts, for reporting.
    loads: int = 0
    stores: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def object_sites(self) -> Set[str]:
        return self.read_sites | self.write_sites | self.redux_sites

    def deps_on(self, obj_site: str) -> Set[FlowDep]:
        return {d for d in self.flow_deps if d.obj_site == obj_site}

    def predictable_deps(self) -> Set[FlowDep]:
        out: Set[FlowDep] = set()
        for deps in self.value_predictions.values():
            out |= deps
        return out

    def summary(self) -> str:
        lines = [
            f"LoopProfile {self.ref}",
            f"  invocations={self.invocations} iterations={self.iterations}",
            f"  reads={len(self.read_sites)} writes={len(self.write_sites)} "
            f"redux={len(self.redux_sites)} sites",
            f"  flow deps={len(self.flow_deps)} "
            f"(predictable: {len(self.predictable_deps())})",
            f"  short-lived sites={len(self.short_lived_sites)}",
            f"  io sites={len(self.io_sites)}",
        ]
        return "\n".join(lines)
