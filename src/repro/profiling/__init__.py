"""Profilers: execution time (hot loops), and the detailed per-loop
pointer-to-object / flow-dependence / lifetime / value profiler."""

from .data import (
    FlowDep,
    HotLoopReport,
    LoopProfile,
    LoopRef,
    LoopTimeRecord,
    ValuePrediction,
)
from .loopprof import profile_loop
from .looptracker import ActiveLoop, LoopInfoCache, LoopTracker
from .serialize import (
    load_profile,
    module_fingerprint,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from .timeprof import profile_execution_time

__all__ = [
    "ActiveLoop", "FlowDep", "HotLoopReport", "LoopInfoCache", "LoopProfile",
    "LoopRef", "LoopTimeRecord", "LoopTracker", "ValuePrediction",
    "load_profile", "module_fingerprint", "profile_execution_time",
    "profile_from_dict", "profile_loop", "profile_to_dict", "save_profile",
]
