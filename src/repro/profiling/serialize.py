"""Profile serialization.

The paper's workflow profiles offline (train input) and compiles later;
these helpers persist a :class:`LoopProfile` as JSON so the expensive
profiling run can be reused across compilations of the same source.

Profiles name program points by stable site ids, which are only valid for
the module object they were collected on — so the JSON embeds a module
fingerprint and loading verifies it.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Union

from ..ir.module import Module
from .data import (
    FlowDep,
    HotLoopReport,
    LoopProfile,
    LoopRef,
    LoopTimeRecord,
    ValuePrediction,
)

FORMAT_VERSION = 1

#: Bump whenever any profiler's *observed semantics* change (new record
#: fields, different site naming, different cost model hooks) so disk
#: caches keyed on it (see :mod:`repro.bench.cache`) invalidate instead of
#: replaying stale observations.
PROFILER_VERSION = 1


def module_fingerprint(module: Module) -> str:
    """A stable fingerprint of the module's *content*.

    Hashes the full printed IR — opcodes, operand spellings (so constant
    literals count), types, branch targets — plus global-initializer
    payloads, which the printer elides.  ``compile_minic`` renumbers value
    uids deterministically, so the same source always prints the same and
    two sources differing only in a literal never collide.  Disk caches
    (:mod:`repro.bench.cache`) rely on exactly this property.
    """
    from ..ir.printer import format_module

    h = hashlib.sha256()
    h.update(format_module(module).encode())
    for gv in module.globals.values():
        init = getattr(gv, "initializer", None)
        if init is not None:
            if isinstance(init, (bytes, bytearray)):
                h.update(bytes(init))
            else:
                h.update(";".join(v.short() for v in init).encode())
    return h.hexdigest()[:16]


def profile_to_dict(profile: LoopProfile,
                    module: Module = None) -> Dict:  # type: ignore[assignment]
    return {
        "version": FORMAT_VERSION,
        "fingerprint": module_fingerprint(module) if module else None,
        "ref": {"function": profile.ref.function, "header": profile.ref.header},
        "invocations": profile.invocations,
        "iterations": profile.iterations,
        "read_sites": sorted(profile.read_sites),
        "write_sites": sorted(profile.write_sites),
        "redux_sites": sorted(profile.redux_sites),
        "redux_ops": dict(profile.redux_ops),
        "flow_deps": sorted(
            [d.src_site, d.dst_site, d.obj_site] for d in profile.flow_deps
        ),
        "short_lived_sites": sorted(profile.short_lived_sites),
        "loop_alloc_sites": sorted(profile.loop_alloc_sites),
        "pointer_objects": {
            site: sorted(objs)
            for site, objs in sorted(profile.pointer_objects.items())
        },
        "value_predictions": [
            {
                "obj_site": vp.obj_site, "offset": vp.offset,
                "size": vp.size, "value": vp.value,
                "deps": sorted([d.src_site, d.dst_site, d.obj_site]
                               for d in deps),
            }
            for vp, deps in sorted(profile.value_predictions.items(),
                                   key=lambda e: str(e[0]))
        ],
        "io_sites": sorted(profile.io_sites),
        "unexecuted_blocks": sorted(list(b) for b in profile.unexecuted_blocks),
        "executed_blocks": sorted(list(b) for b in profile.executed_blocks),
        "loads": profile.loads,
        "stores": profile.stores,
        "bytes_read": profile.bytes_read,
        "bytes_written": profile.bytes_written,
    }


def profile_from_dict(data: Dict, module: Module = None) -> LoopProfile:  # type: ignore[assignment]
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported profile version {data.get('version')}")
    if module is not None and data.get("fingerprint") is not None:
        actual = module_fingerprint(module)
        if actual != data["fingerprint"]:
            raise ValueError(
                f"profile was collected on a different module "
                f"(fingerprint {data['fingerprint']} != {actual})")
    profile = LoopProfile(LoopRef(data["ref"]["function"],
                                  data["ref"]["header"]))
    profile.invocations = data["invocations"]
    profile.iterations = data["iterations"]
    profile.read_sites = set(data["read_sites"])
    profile.write_sites = set(data["write_sites"])
    profile.redux_sites = set(data["redux_sites"])
    profile.redux_ops = dict(data["redux_ops"])
    profile.flow_deps = {FlowDep(*entry) for entry in data["flow_deps"]}
    profile.short_lived_sites = set(data["short_lived_sites"])
    profile.loop_alloc_sites = set(data["loop_alloc_sites"])
    profile.pointer_objects = {
        site: set(objs) for site, objs in data["pointer_objects"].items()
    }
    profile.value_predictions = {
        ValuePrediction(vp["obj_site"], vp["offset"], vp["size"], vp["value"]):
            {FlowDep(*d) for d in vp["deps"]}
        for vp in data["value_predictions"]
    }
    profile.io_sites = set(data["io_sites"])
    profile.unexecuted_blocks = {tuple(b) for b in data["unexecuted_blocks"]}
    profile.executed_blocks = {tuple(b) for b in data["executed_blocks"]}
    profile.loads = data["loads"]
    profile.stores = data["stores"]
    profile.bytes_read = data["bytes_read"]
    profile.bytes_written = data["bytes_written"]
    return profile


def hot_report_to_dict(report: HotLoopReport) -> Dict:
    return {
        "version": FORMAT_VERSION,
        "total_cycles": report.total_cycles,
        "records": [
            {
                "function": r.ref.function, "header": r.ref.header,
                "cycles": r.cycles, "invocations": r.invocations,
                "iterations": r.iterations, "depth": r.depth,
            }
            for r in report.records
        ],
    }


def hot_report_from_dict(data: Dict) -> HotLoopReport:
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported report version {data.get('version')}")
    return HotLoopReport(
        total_cycles=data["total_cycles"],
        records=[
            LoopTimeRecord(
                ref=LoopRef(r["function"], r["header"]),
                cycles=r["cycles"], invocations=r["invocations"],
                iterations=r["iterations"], depth=r["depth"],
            )
            for r in data["records"]
        ],
    )


def save_profile(profile: LoopProfile, path: Union[str, Path],
                 module: Module = None) -> None:  # type: ignore[assignment]
    Path(path).write_text(json.dumps(profile_to_dict(profile, module),
                                     indent=2, sort_keys=True))


def load_profile(path: Union[str, Path],
                 module: Module = None) -> LoopProfile:  # type: ignore[assignment]
    return profile_from_dict(json.loads(Path(path).read_text()), module)
