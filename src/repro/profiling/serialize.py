"""Profile serialization.

The paper's workflow profiles offline (train input) and compiles later;
these helpers persist a :class:`LoopProfile` as JSON so the expensive
profiling run can be reused across compilations of the same source.

Profiles name program points by stable site ids, which are only valid for
the module object they were collected on — so the JSON embeds a module
fingerprint and loading verifies it.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Union

from ..ir.module import Module
from .data import FlowDep, LoopProfile, LoopRef, ValuePrediction

FORMAT_VERSION = 1


def module_fingerprint(module: Module) -> str:
    """A stable fingerprint of the module's structure (function names,
    block names, instruction uids in order)."""
    h = hashlib.sha256()
    for fn in module.defined_functions():
        h.update(fn.name.encode())
        for bb in fn.blocks:
            h.update(bb.name.encode())
            for inst in bb.instructions:
                h.update(str(inst.uid).encode())
    return h.hexdigest()[:16]


def profile_to_dict(profile: LoopProfile,
                    module: Module = None) -> Dict:  # type: ignore[assignment]
    return {
        "version": FORMAT_VERSION,
        "fingerprint": module_fingerprint(module) if module else None,
        "ref": {"function": profile.ref.function, "header": profile.ref.header},
        "invocations": profile.invocations,
        "iterations": profile.iterations,
        "read_sites": sorted(profile.read_sites),
        "write_sites": sorted(profile.write_sites),
        "redux_sites": sorted(profile.redux_sites),
        "redux_ops": dict(profile.redux_ops),
        "flow_deps": sorted(
            [d.src_site, d.dst_site, d.obj_site] for d in profile.flow_deps
        ),
        "short_lived_sites": sorted(profile.short_lived_sites),
        "loop_alloc_sites": sorted(profile.loop_alloc_sites),
        "pointer_objects": {
            site: sorted(objs)
            for site, objs in sorted(profile.pointer_objects.items())
        },
        "value_predictions": [
            {
                "obj_site": vp.obj_site, "offset": vp.offset,
                "size": vp.size, "value": vp.value,
                "deps": sorted([d.src_site, d.dst_site, d.obj_site]
                               for d in deps),
            }
            for vp, deps in sorted(profile.value_predictions.items(),
                                   key=lambda e: str(e[0]))
        ],
        "io_sites": sorted(profile.io_sites),
        "unexecuted_blocks": sorted(list(b) for b in profile.unexecuted_blocks),
        "executed_blocks": sorted(list(b) for b in profile.executed_blocks),
        "loads": profile.loads,
        "stores": profile.stores,
        "bytes_read": profile.bytes_read,
        "bytes_written": profile.bytes_written,
    }


def profile_from_dict(data: Dict, module: Module = None) -> LoopProfile:  # type: ignore[assignment]
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported profile version {data.get('version')}")
    if module is not None and data.get("fingerprint") is not None:
        actual = module_fingerprint(module)
        if actual != data["fingerprint"]:
            raise ValueError(
                f"profile was collected on a different module "
                f"(fingerprint {data['fingerprint']} != {actual})")
    profile = LoopProfile(LoopRef(data["ref"]["function"],
                                  data["ref"]["header"]))
    profile.invocations = data["invocations"]
    profile.iterations = data["iterations"]
    profile.read_sites = set(data["read_sites"])
    profile.write_sites = set(data["write_sites"])
    profile.redux_sites = set(data["redux_sites"])
    profile.redux_ops = dict(data["redux_ops"])
    profile.flow_deps = {FlowDep(*entry) for entry in data["flow_deps"]}
    profile.short_lived_sites = set(data["short_lived_sites"])
    profile.loop_alloc_sites = set(data["loop_alloc_sites"])
    profile.pointer_objects = {
        site: set(objs) for site, objs in data["pointer_objects"].items()
    }
    profile.value_predictions = {
        ValuePrediction(vp["obj_site"], vp["offset"], vp["size"], vp["value"]):
            {FlowDep(*d) for d in vp["deps"]}
        for vp in data["value_predictions"]
    }
    profile.io_sites = set(data["io_sites"])
    profile.unexecuted_blocks = {tuple(b) for b in data["unexecuted_blocks"]}
    profile.executed_blocks = {tuple(b) for b in data["executed_blocks"]}
    profile.loads = data["loads"]
    profile.stores = data["stores"]
    profile.bytes_read = data["bytes_read"]
    profile.bytes_written = data["bytes_written"]
    return profile


def save_profile(profile: LoopProfile, path: Union[str, Path],
                 module: Module = None) -> None:  # type: ignore[assignment]
    Path(path).write_text(json.dumps(profile_to_dict(profile, module),
                                     indent=2, sort_keys=True))


def load_profile(path: Union[str, Path],
                 module: Module = None) -> LoopProfile:  # type: ignore[assignment]
    return profile_from_dict(json.loads(Path(path).read_text()), module)
