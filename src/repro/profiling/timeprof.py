"""Execution-time profiler: finds hot loops (à la gprof, §4.1)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..interp.interpreter import Hook, Interpreter
from ..ir.module import Module
from ..obs.trace import TRACER
from .data import HotLoopReport, LoopRef, LoopTimeRecord
from .looptracker import ActiveLoop, LoopInfoCache, LoopTracker


class _TimeHook(Hook):
    def __init__(self, module: Module):
        self.cache = LoopInfoCache(module)
        self.records: Dict[LoopRef, LoopTimeRecord] = {}
        self.tracker = LoopTracker(
            self.cache,
            on_enter=self._on_enter,
            on_iterate=self._on_iterate,
            on_exit=self._on_exit,
        )

    def _record(self, active: ActiveLoop) -> LoopTimeRecord:
        rec = self.records.get(active.ref)
        if rec is None:
            rec = LoopTimeRecord(active.ref, depth=active.loop.depth)
            self.records[active.ref] = rec
        return rec

    def _on_enter(self, active: ActiveLoop) -> None:
        # Iterations are counted at back edges, so loops that exit through
        # the header report their exact trip count.
        self._record(active).invocations += 1

    def _on_iterate(self, active: ActiveLoop) -> None:
        self._record(active).iterations += 1

    def _on_exit(self, active: ActiveLoop, cycles_now: int) -> None:
        self._record(active).cycles += cycles_now - active.entry_cycles

    def on_branch(self, interp, inst, target) -> None:
        self.tracker.handle_branch(interp, inst, target)

    def on_return(self, interp, fn) -> None:
        self.tracker.handle_return(interp, fn)


def profile_execution_time(
    module: Module, entry: str = "main", args: Sequence[object] = ()
) -> HotLoopReport:
    """Run the program once, attributing inclusive cycles to every loop."""
    with TRACER.span("pipeline.profile.time", cat="pipeline",
                     entry=entry) as sp:
        interp = Interpreter(module)
        hook = _TimeHook(module)
        interp.hooks.append(hook)
        interp.run(entry, args)
        # Close any loops still open at program end (exit() inside a loop).
        while hook.tracker.stack:
            hook.tracker._pop(interp)
        sp.set(cycles=interp.cycles, loops=len(hook.records))
    return HotLoopReport(interp.cycles, list(hook.records.values()))
