"""Schema validation for the JSONL trace stream (and the Chrome export),
the forensics artifacts (flight-recorder dumps, ``explain`` JSON), and
the live status endpoint (``/metrics`` JSON, ``/metrics.prom`` text).

Usable as a library (:func:`validate_event`, :func:`validate_jsonl`,
:func:`validate_flight`, :func:`validate_explain`,
:func:`validate_metrics`, :func:`validate_prom`, :func:`validate_job`)
and as a script — CI
runs it against the artifacts emitted by ``python -m repro trace`` and
``python -m repro explain``, and against live endpoint responses::

    PYTHONPATH=src python -m repro.obs.schema out/dijkstra.trace.jsonl
    PYTHONPATH=src python -m repro.obs.schema --chrome out/dijkstra.chrome.json
    PYTHONPATH=src python -m repro.obs.schema --flight out/dijkstra.simulated.flight.jsonl
    PYTHONPATH=src python -m repro.obs.schema --explain out/dijkstra.explain.json
    PYTHONPATH=src python -m repro.obs.schema --metrics /tmp/metrics.json
    PYTHONPATH=src python -m repro.obs.schema --prom /tmp/metrics.prom
    PYTHONPATH=src python -m repro.obs.schema --job /tmp/job.json
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Dict, List, Optional, Sequence

KINDS = {"meta", "span", "instant"}

#: field -> (required, allowed types)
_FIELDS = {
    "kind": (True, str),
    "name": (True, str),
    "cat": (True, str),
    "ts_us": (True, (int, float)),
    "pid": (True, int),
    "tid": (True, int),
    "attrs": (True, dict),
    "dur_us": (False, (int, float)),
    "thread": (False, int),
}

CHROME_PHASES = {"X", "i", "M", "B", "E"}


def validate_event(ev: object, lineno: int = 0) -> List[str]:
    """Validate one JSONL event; returns a list of error strings."""
    where = f"line {lineno}: " if lineno else ""
    if not isinstance(ev, dict):
        return [f"{where}event is not a JSON object"]
    errors: List[str] = []
    for field, (required, types) in _FIELDS.items():
        if field not in ev:
            if required:
                errors.append(f"{where}missing field {field!r}")
            continue
        if not isinstance(ev[field], types) or isinstance(ev[field], bool):
            errors.append(f"{where}field {field!r} has type "
                          f"{type(ev[field]).__name__}")
    kind = ev.get("kind")
    if isinstance(kind, str) and kind not in KINDS:
        errors.append(f"{where}unknown kind {kind!r}")
    if kind == "span" and "dur_us" not in ev:
        errors.append(f"{where}span missing dur_us")
    ts = ev.get("ts_us")
    if isinstance(ts, (int, float)) and ts < 0:
        errors.append(f"{where}negative ts_us {ts}")
    dur = ev.get("dur_us")
    if isinstance(dur, (int, float)) and dur < 0:
        errors.append(f"{where}negative dur_us {dur}")
    for extra in set(ev) - set(_FIELDS):
        errors.append(f"{where}unexpected field {extra!r}")
    return errors


def validate_jsonl(path: str,
                   max_errors: int = 20) -> Dict[str, object]:
    """Validate a JSONL trace file; returns
    ``{"events": n, "errors": [...]}``."""
    errors: List[str] = []
    events = 0
    kinds: Dict[str, int] = {}
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except ValueError as e:
                errors.append(f"line {lineno}: invalid JSON ({e})")
                continue
            events += 1
            if isinstance(ev, dict):
                kinds[str(ev.get("kind"))] = kinds.get(str(ev.get("kind")), 0) + 1
            errors.extend(validate_event(ev, lineno))
            if len(errors) >= max_errors:
                errors.append("(stopping after too many errors)")
                break
    if events == 0:
        errors.append("trace contains no events")
    if kinds.get("meta", 0) != 1 and events:
        errors.append(f"expected exactly one meta header, got "
                      f"{kinds.get('meta', 0)}")
    return {"events": events, "kinds": kinds, "errors": errors}


def validate_chrome(path: str) -> Dict[str, object]:
    """Structural check of a Chrome ``trace_event`` JSON export."""
    errors: List[str] = []
    with open(path) as fh:
        try:
            data = json.load(fh)
        except ValueError as e:
            return {"events": 0, "errors": [f"invalid JSON ({e})"]}
    events = data.get("traceEvents") if isinstance(data, dict) else None
    if not isinstance(events, list):
        return {"events": 0, "errors": ["missing traceEvents array"]}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"traceEvents[{i}] is not an object")
            continue
        ph = ev.get("ph")
        if ph not in CHROME_PHASES:
            errors.append(f"traceEvents[{i}]: bad ph {ph!r}")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            errors.append(f"traceEvents[{i}]: complete event missing dur")
        if ph != "M" and not isinstance(ev.get("ts"), (int, float)):
            errors.append(f"traceEvents[{i}]: missing ts")
        if len(errors) >= 20:
            errors.append("(stopping after too many errors)")
            break
    if not events:
        errors.append("trace contains no events")
    return {"events": len(events), "errors": errors}


#: Record kinds in a flight-recorder JSONL dump.
FLIGHT_KINDS = {"meta", "heap_map", "verdicts", "site_summary", "event"}

#: Event types the flight recorder emits.
FLIGHT_EVENTS = {"invocation", "epoch", "misspec", "decision"}


def _flight_record_errors(rec: Dict[str, object], where: str) -> List[str]:
    """Validate one parsed flight-dump record."""
    errors: List[str] = []
    kind = rec.get("kind")
    if kind == "meta":
        if not isinstance(rec.get("flight_format"), int) \
                or isinstance(rec.get("flight_format"), bool):
            errors.append(f"{where}meta missing integer flight_format")
        if not isinstance(rec.get("crash"), bool):
            errors.append(f"{where}meta missing boolean crash")
    elif kind == "heap_map":
        objects = rec.get("objects")
        if not isinstance(objects, list):
            errors.append(f"{where}heap_map missing objects list")
        else:
            for i, obj in enumerate(objects):
                if not isinstance(obj, dict) or "base" not in obj \
                        or "heap" not in obj:
                    errors.append(f"{where}heap_map objects[{i}] missing "
                                  f"base/heap")
                    break
    elif kind == "verdicts":
        if not isinstance(rec.get("site_heaps"), dict):
            errors.append(f"{where}verdicts missing site_heaps object")
    elif kind == "site_summary":
        if not isinstance(rec.get("sites"), dict):
            errors.append(f"{where}site_summary missing sites object")
    elif kind == "event":
        data = rec.get("data")
        if not isinstance(data, dict):
            errors.append(f"{where}event missing data object")
        else:
            event = data.get("event")
            if event not in FLIGHT_EVENTS:
                errors.append(f"{where}unknown event type {event!r}")
            seq = data.get("seq")
            if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
                errors.append(f"{where}event missing non-negative seq")
            if event == "misspec":
                if not isinstance(data.get("kind"), str):
                    errors.append(f"{where}misspec event missing kind")
                if not isinstance(data.get("iteration"), int):
                    errors.append(f"{where}misspec event missing iteration")
    else:
        errors.append(f"{where}unknown record kind {kind!r}")
    return errors


def validate_flight(path: str, max_errors: int = 20) -> Dict[str, object]:
    """Validate a flight-recorder JSONL dump; returns
    ``{"records": n, "kinds": {...}, "errors": [...]}``."""
    errors: List[str] = []
    records = 0
    kinds: Dict[str, int] = {}
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            where = f"line {lineno}: "
            try:
                rec = json.loads(line)
            except ValueError as e:
                errors.append(f"{where}invalid JSON ({e})")
                continue
            records += 1
            if not isinstance(rec, dict):
                errors.append(f"{where}record is not a JSON object")
                continue
            kinds[str(rec.get("kind"))] = kinds.get(str(rec.get("kind")), 0) + 1
            if records == 1 and rec.get("kind") != "meta":
                errors.append(f"{where}first record must be the meta header")
            errors.extend(_flight_record_errors(rec, where))
            if len(errors) >= max_errors:
                errors.append("(stopping after too many errors)")
                break
    if records == 0:
        errors.append("flight dump contains no records")
    elif kinds.get("meta", 0) != 1:
        errors.append(f"expected exactly one meta record, got "
                      f"{kinds.get('meta', 0)}")
    return {"records": records, "kinds": kinds, "errors": errors}


def validate_explain(path: str) -> Dict[str, object]:
    """Validate an ``explain --json`` payload; returns
    ``{"diagnoses": n, "errors": [...]}``."""
    errors: List[str] = []
    with open(path) as fh:
        try:
            data = json.load(fh)
        except ValueError as e:
            return {"diagnoses": 0, "errors": [f"invalid JSON ({e})"]}
    if not isinstance(data, dict):
        return {"diagnoses": 0, "errors": ["payload is not a JSON object"]}
    if not isinstance(data.get("explain_format"), int) \
            or isinstance(data.get("explain_format"), bool):
        errors.append("missing integer explain_format")
    if not isinstance(data.get("meta"), dict):
        errors.append("missing meta object")
    diagnoses = data.get("diagnoses")
    if not isinstance(diagnoses, list):
        errors.append("missing diagnoses list")
        diagnoses = []
    for i, d in enumerate(diagnoses):
        if not isinstance(d, dict):
            errors.append(f"diagnoses[{i}] is not an object")
            continue
        if not isinstance(d.get("kind"), str):
            errors.append(f"diagnoses[{i}] missing kind")
        if not isinstance(d.get("iteration"), int) \
                or isinstance(d.get("iteration"), bool):
            errors.append(f"diagnoses[{i}] missing integer iteration")
        if not isinstance(d.get("injected"), bool):
            errors.append(f"diagnoses[{i}] missing boolean injected")
        site = d.get("site")
        if site is not None and not isinstance(site, str):
            errors.append(f"diagnoses[{i}] site must be string or null")
        tag = d.get("heap_tag")
        if tag is not None and (not isinstance(tag, int)
                                or isinstance(tag, bool)):
            errors.append(f"diagnoses[{i}] heap_tag must be int or null")
        if len(errors) >= 20:
            errors.append("(stopping after too many errors)")
            break
    return {"diagnoses": len(diagnoses), "errors": errors}


#: Per-type required numeric fields in a ``/metrics`` snapshot entry.
_METRIC_FIELDS = {
    "counter": ("value",),
    "gauge": (),          # a never-set gauge reports value: null
    "histogram": ("count", "sum"),
}

_WORKER_PREFIX = re.compile(r"^worker\.([^.]+)\.")

#: Service job ids as they appear in ``job.<id>.<metric>`` names and in
#: job payloads (sequential: ``j1``, ``j2``, ...).
_JOB_ID = re.compile(r"^j\d+$")

_JOB_PREFIX = re.compile(r"^job\.([^.]+)\.")

#: Prometheus text exposition 0.0.4 line grammar (the subset we emit).
_PROM_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)$")
_PROM_LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$')
_PROM_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}

#: Brace-labeled registry names (``base{k="v",...}`` — see
#: :func:`repro.obs.metrics.labeled`).
_METRIC_LABELED = re.compile(
    r'^[^{}]+\{[a-zA-Z_][a-zA-Z0-9_]*="[^"{}\\]*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="[^"{}\\]*")*\}$')


def validate_metrics(path: str) -> Dict[str, object]:
    """Validate a ``/metrics`` JSON payload from the status endpoint;
    returns ``{"metrics": n, "errors": [...]}``.  Checks the envelope
    (``status_format``, ``generated_unix``, ``run``, ``metrics``), each
    snapshot entry's per-type required fields, and that worker-labeled
    names use the ``worker.<int>.<rest>`` shape the exporters fold into
    ``worker="N"`` labels."""
    errors: List[str] = []
    with open(path) as fh:
        try:
            data = json.load(fh)
        except ValueError as e:
            return {"metrics": 0, "errors": [f"invalid JSON ({e})"]}
    if not isinstance(data, dict):
        return {"metrics": 0, "errors": ["payload is not a JSON object"]}
    if not isinstance(data.get("status_format"), int) \
            or isinstance(data.get("status_format"), bool):
        errors.append("missing integer status_format")
    if not isinstance(data.get("generated_unix"), (int, float)) \
            or isinstance(data.get("generated_unix"), bool):
        errors.append("missing numeric generated_unix")
    if not isinstance(data.get("run"), dict):
        errors.append("missing run metadata object")
    metrics = data.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("missing metrics object")
        metrics = {}
    for name in sorted(metrics):
        entry = metrics[name]
        where = f"metrics[{name!r}]: "
        if not isinstance(entry, dict):
            errors.append(f"{where}entry is not an object")
            continue
        mtype = entry.get("type")
        if mtype not in _METRIC_FIELDS:
            errors.append(f"{where}unknown type {mtype!r}")
            continue
        for field in _METRIC_FIELDS[mtype]:
            value = entry.get(field)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                errors.append(f"{where}missing numeric {field!r}")
        m = _WORKER_PREFIX.match(name)
        if m and not m.group(1).isdigit():
            errors.append(f"{where}worker label {m.group(1)!r} is not an "
                          f"integer (expected worker.<N>.<metric>)")
        if name.startswith("worker.") and m is None:
            errors.append(f"{where}worker-prefixed name has no metric "
                          f"suffix (expected worker.<N>.<metric>)")
        j = _JOB_PREFIX.match(name)
        if j and not _JOB_ID.match(j.group(1)):
            errors.append(f"{where}job label {j.group(1)!r} is not a job "
                          f"id (expected job.j<N>.<metric>)")
        if name.startswith("job.") and j is None:
            errors.append(f"{where}job-prefixed name has no metric "
                          f"suffix (expected job.j<N>.<metric>)")
        if ("{" in name or "}" in name) and not _METRIC_LABELED.match(name):
            errors.append(f"{where}malformed labeled metric name "
                          f'(expected base{{k="v",...}})')
        if len(errors) >= 20:
            errors.append("(stopping after too many errors)")
            break
    return {"metrics": len(metrics), "errors": errors}


def validate_job(path: str) -> Dict[str, object]:
    """Validate a ``GET /jobs/<id>`` payload from ``repro serve``;
    returns ``{"jobs": n, "errors": [...]}``.  Checks the service
    envelope (``service_format``, ``generated_unix``), the job identity
    fields (``j<N>`` id, known lifecycle state), and — for ``done``
    jobs — the result body's Table-1/Table-3 rows and misspeculation
    accounting."""
    from ..service.jobstore import JOB_STATES, STATE_DONE

    errors: List[str] = []
    with open(path) as fh:
        try:
            data = json.load(fh)
        except ValueError as e:
            return {"jobs": 0, "errors": [f"invalid JSON ({e})"]}
    if not isinstance(data, dict):
        return {"jobs": 0, "errors": ["payload is not a JSON object"]}
    if not isinstance(data.get("service_format"), int) \
            or isinstance(data.get("service_format"), bool):
        errors.append("missing integer service_format")
    if not isinstance(data.get("generated_unix"), (int, float)) \
            or isinstance(data.get("generated_unix"), bool):
        errors.append("missing numeric generated_unix")
    job = data.get("job")
    if not isinstance(job, dict):
        return {"jobs": 0,
                "errors": errors + ["missing job object"]}
    if not isinstance(job.get("id"), str) or not _JOB_ID.match(job["id"]):
        errors.append(f"job id {job.get('id')!r} does not match j<N>")
    state = job.get("state")
    if state not in JOB_STATES:
        errors.append(f"unknown job state {state!r} "
                      f"(expected one of {', '.join(JOB_STATES)})")
    for field in ("args", "train_args"):
        value = job.get(field)
        if not isinstance(value, list) or any(
                isinstance(v, bool) or not isinstance(v, int)
                for v in value):
            errors.append(f"job {field} is not a list of integers")
    if not isinstance(job.get("knobs"), dict):
        errors.append("job missing knobs object")
    for field in ("cache_hit", "warm"):
        if not isinstance(job.get(field), bool):
            errors.append(f"job missing boolean {field}")
    if not isinstance(job.get("fingerprint"), str) or not job["fingerprint"]:
        errors.append("job missing fingerprint")
    if state == STATE_DONE:
        result = job.get("result")
        if not isinstance(result, dict):
            errors.append("done job missing result object")
        else:
            for field in ("table1", "table3"):
                if not isinstance(result.get(field), dict):
                    errors.append(f"done result missing {field} row")
            for field in ("misspeculations", "recoveries",
                          "squashed_iterations", "checkpoints"):
                value = result.get(field)
                if not isinstance(value, int) or isinstance(value, bool):
                    errors.append(f"done result missing integer {field}")
            if result.get("output_matches") is not True:
                errors.append("done result must have output_matches: true")
            misspecs = result.get("misspeculations")
            if isinstance(misspecs, int) and misspecs > 0 \
                    and not isinstance(result.get("forensics"), dict):
                errors.append("misspeculating done result missing "
                              "forensics summary")
    return {"jobs": 1, "errors": errors}


def _check_bucket_series(fam: str, label_key, series, count,
                         errors: List[str]) -> None:
    """Lint one histogram bucket series (a family + one label set minus
    ``le``): le ladder parseable and strictly ascending, ``+Inf`` last,
    counts cumulative, and the ``+Inf`` bucket equal to ``_count``."""
    ctx = fam if not label_key else \
        fam + "{" + ",".join(f'{k}="{v}"' for k, v in label_key) + "}"
    prev_le = float("-inf")
    prev_n = float("-inf")
    for le_txt, n in series:
        if le_txt == "+Inf":
            le = float("inf")
        else:
            try:
                le = float(le_txt)
            except ValueError:
                errors.append(f"{ctx}: unparseable le {le_txt!r}")
                return
        if le <= prev_le:
            errors.append(f"{ctx}: le ladder not strictly ascending "
                          f"at le={le_txt}")
            return
        if n < prev_n:
            errors.append(f"{ctx}: bucket counts not cumulative at "
                          f"le={le_txt} ({n} < {prev_n})")
            return
        prev_le, prev_n = le, n
    if series[-1][0] != "+Inf":
        errors.append(f"{ctx}: bucket series missing +Inf bucket")
        return
    if count is not None and series[-1][1] != count:
        errors.append(f"{ctx}: +Inf bucket {series[-1][1]} != _count "
                      f"{count}")


def validate_prom(path: str, max_errors: int = 20) -> Dict[str, object]:
    """Line-lint a ``/metrics.prom`` Prometheus text exposition body;
    returns ``{"samples": n, "families": {...}, "errors": [...]}``.
    Checks ``# TYPE`` declarations, sample-line grammar, label syntax,
    float-parsable values, and that every sample belongs to a declared
    family (allowing the ``_count``/``_sum``/``_bucket`` suffixes).
    Families declared ``histogram`` are additionally held to the bucket
    invariants: every label set has a strictly ascending ``le`` ladder
    ending in ``+Inf``, cumulative bucket counts, and a ``+Inf`` bucket
    equal to the matching ``_count``."""
    errors: List[str] = []
    families: Dict[str, str] = {}
    samples = 0
    # (family, label-set-minus-le) -> [(le_text, value), ...] in file order.
    bucket_series: Dict[tuple, List[tuple]] = {}
    # (family, label-set-minus-le) -> _count value.
    bucket_counts: Dict[tuple, float] = {}
    with open(path) as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.rstrip("\n")
            where = f"line {lineno}: "
            if not line.strip():
                continue
            if line.startswith("#"):
                parts = line.split()
                if len(parts) >= 2 and parts[1] == "TYPE":
                    if len(parts) != 4:
                        errors.append(f"{where}malformed TYPE comment")
                    elif not _PROM_METRIC_NAME.match(parts[2]):
                        errors.append(f"{where}bad family name "
                                      f"{parts[2]!r}")
                    elif parts[3] not in _PROM_TYPES:
                        errors.append(f"{where}unknown family type "
                                      f"{parts[3]!r}")
                    elif parts[2] in families:
                        errors.append(f"{where}duplicate TYPE for "
                                      f"{parts[2]!r}")
                    else:
                        families[parts[2]] = parts[3]
                elif len(parts) >= 2 and parts[1] not in ("HELP", "EOF"):
                    errors.append(f"{where}unknown comment form "
                                  f"{parts[1]!r}")
                continue
            m = _PROM_SAMPLE.match(line)
            if not m:
                errors.append(f"{where}unparseable sample line {line!r}")
                continue
            samples += 1
            name = m.group("name")
            base = name
            suffix = ""
            for cand in ("_count", "_sum", "_bucket"):
                if name.endswith(cand) and name[:-len(cand)] in families:
                    base = name[:-len(cand)]
                    suffix = cand
                    break
            if base not in families:
                errors.append(f"{where}sample {name!r} has no preceding "
                              f"TYPE declaration")
            labels = m.group("labels")
            pairs: List[tuple] = []
            bad_label = False
            if labels:
                for pair in labels.split(","):
                    if not _PROM_LABEL.match(pair):
                        errors.append(f"{where}bad label pair {pair!r}")
                        bad_label = True
                        break
                    key, _, value = pair.partition("=")
                    pairs.append((key, value.strip('"')))
            try:
                value = float(m.group("value"))
            except ValueError:
                errors.append(f"{where}non-numeric value "
                              f"{m.group('value')!r}")
                value = None
            if (families.get(base) == "histogram" and value is not None
                    and not bad_label):
                le = [v for k, v in pairs if k == "le"]
                key = (base, tuple(sorted(
                    (k, v) for k, v in pairs if k != "le")))
                if suffix == "_bucket":
                    if not le:
                        errors.append(f"{where}histogram _bucket sample "
                                      f"missing le label")
                    else:
                        bucket_series.setdefault(key, []).append(
                            (le[0], value))
                elif suffix == "_count":
                    bucket_counts[key] = value
            if len(errors) >= max_errors:
                errors.append("(stopping after too many errors)")
                break
    if len(errors) < max_errors:
        for key, series in bucket_series.items():
            _check_bucket_series(key[0], key[1], series,
                                 bucket_counts.get(key), errors)
            if len(errors) >= max_errors:
                errors.append("(stopping after too many errors)")
                break
        for fam, ftype in families.items():
            if ftype == "histogram" and not any(
                    k[0] == fam for k in bucket_series):
                errors.append(f"{fam}: histogram family has no _bucket "
                              f"samples")
    if samples == 0:
        errors.append("exposition contains no samples")
    return {"samples": samples, "families": families, "errors": errors}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.schema",
        description="validate a repro observability artifact (JSONL trace, "
                    "Chrome JSON, flight dump, or explain JSON)")
    parser.add_argument("path", help="file to validate")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--chrome", action="store_true",
                      help="validate as Chrome trace_event JSON instead "
                           "of the JSONL event stream")
    mode.add_argument("--flight", action="store_true",
                      help="validate as a flight-recorder JSONL dump")
    mode.add_argument("--explain", action="store_true",
                      help="validate as 'repro explain --json' output")
    mode.add_argument("--metrics", action="store_true",
                      help="validate as a status-endpoint /metrics JSON "
                           "payload")
    mode.add_argument("--prom", action="store_true",
                      help="validate as Prometheus text exposition "
                           "(/metrics.prom)")
    mode.add_argument("--job", action="store_true",
                      help="validate as a `repro serve` GET /jobs/<id> "
                           "payload")
    args = parser.parse_args(argv)
    if args.chrome:
        validator = validate_chrome
    elif args.flight:
        validator = validate_flight
    elif args.explain:
        validator = validate_explain
    elif args.metrics:
        validator = validate_metrics
    elif args.prom:
        validator = validate_prom
    elif args.job:
        validator = validate_job
    else:
        validator = validate_jsonl
    report = validator(args.path)
    for err in report["errors"]:
        print(f"error: {err}", file=sys.stderr)
    count = report.get("events",
                       report.get("records",
                                  report.get("diagnoses",
                                             report.get("metrics",
                                                        report.get(
                                                            "samples",
                                                            report.get(
                                                                "jobs",
                                                                0))))))
    if report["errors"]:
        print(f"FAIL: {args.path}: {len(report['errors'])} error(s) in "
              f"{count} record(s)")
        return 1
    print(f"ok: {args.path}: {count} record(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
