"""Schema validation for the JSONL trace stream (and the Chrome export).

Usable as a library (:func:`validate_event`, :func:`validate_jsonl`) and
as a script — CI runs it against the artifact emitted by
``python -m repro trace``::

    PYTHONPATH=src python -m repro.obs.schema out/dijkstra.trace.jsonl
    PYTHONPATH=src python -m repro.obs.schema --chrome out/dijkstra.chrome.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

KINDS = {"meta", "span", "instant"}

#: field -> (required, allowed types)
_FIELDS = {
    "kind": (True, str),
    "name": (True, str),
    "cat": (True, str),
    "ts_us": (True, (int, float)),
    "pid": (True, int),
    "tid": (True, int),
    "attrs": (True, dict),
    "dur_us": (False, (int, float)),
    "thread": (False, int),
}

CHROME_PHASES = {"X", "i", "M", "B", "E"}


def validate_event(ev: object, lineno: int = 0) -> List[str]:
    """Validate one JSONL event; returns a list of error strings."""
    where = f"line {lineno}: " if lineno else ""
    if not isinstance(ev, dict):
        return [f"{where}event is not a JSON object"]
    errors: List[str] = []
    for field, (required, types) in _FIELDS.items():
        if field not in ev:
            if required:
                errors.append(f"{where}missing field {field!r}")
            continue
        if not isinstance(ev[field], types) or isinstance(ev[field], bool):
            errors.append(f"{where}field {field!r} has type "
                          f"{type(ev[field]).__name__}")
    kind = ev.get("kind")
    if isinstance(kind, str) and kind not in KINDS:
        errors.append(f"{where}unknown kind {kind!r}")
    if kind == "span" and "dur_us" not in ev:
        errors.append(f"{where}span missing dur_us")
    ts = ev.get("ts_us")
    if isinstance(ts, (int, float)) and ts < 0:
        errors.append(f"{where}negative ts_us {ts}")
    dur = ev.get("dur_us")
    if isinstance(dur, (int, float)) and dur < 0:
        errors.append(f"{where}negative dur_us {dur}")
    for extra in set(ev) - set(_FIELDS):
        errors.append(f"{where}unexpected field {extra!r}")
    return errors


def validate_jsonl(path: str,
                   max_errors: int = 20) -> Dict[str, object]:
    """Validate a JSONL trace file; returns
    ``{"events": n, "errors": [...]}``."""
    errors: List[str] = []
    events = 0
    kinds: Dict[str, int] = {}
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except ValueError as e:
                errors.append(f"line {lineno}: invalid JSON ({e})")
                continue
            events += 1
            if isinstance(ev, dict):
                kinds[str(ev.get("kind"))] = kinds.get(str(ev.get("kind")), 0) + 1
            errors.extend(validate_event(ev, lineno))
            if len(errors) >= max_errors:
                errors.append("(stopping after too many errors)")
                break
    if events == 0:
        errors.append("trace contains no events")
    if kinds.get("meta", 0) != 1 and events:
        errors.append(f"expected exactly one meta header, got "
                      f"{kinds.get('meta', 0)}")
    return {"events": events, "kinds": kinds, "errors": errors}


def validate_chrome(path: str) -> Dict[str, object]:
    """Structural check of a Chrome ``trace_event`` JSON export."""
    errors: List[str] = []
    with open(path) as fh:
        try:
            data = json.load(fh)
        except ValueError as e:
            return {"events": 0, "errors": [f"invalid JSON ({e})"]}
    events = data.get("traceEvents") if isinstance(data, dict) else None
    if not isinstance(events, list):
        return {"events": 0, "errors": ["missing traceEvents array"]}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"traceEvents[{i}] is not an object")
            continue
        ph = ev.get("ph")
        if ph not in CHROME_PHASES:
            errors.append(f"traceEvents[{i}]: bad ph {ph!r}")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            errors.append(f"traceEvents[{i}]: complete event missing dur")
        if ph != "M" and not isinstance(ev.get("ts"), (int, float)):
            errors.append(f"traceEvents[{i}]: missing ts")
        if len(errors) >= 20:
            errors.append("(stopping after too many errors)")
            break
    if not events:
        errors.append("trace contains no events")
    return {"events": len(events), "errors": errors}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.schema",
        description="validate a repro trace file (JSONL or Chrome JSON)")
    parser.add_argument("path", help="trace file to validate")
    parser.add_argument("--chrome", action="store_true",
                        help="validate as Chrome trace_event JSON instead "
                             "of the JSONL event stream")
    args = parser.parse_args(argv)
    report = (validate_chrome if args.chrome else validate_jsonl)(args.path)
    for err in report["errors"]:
        print(f"error: {err}", file=sys.stderr)
    if report["errors"]:
        print(f"FAIL: {args.path}: {len(report['errors'])} error(s) in "
              f"{report['events']} event(s)")
        return 1
    print(f"ok: {args.path}: {report['events']} event(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
