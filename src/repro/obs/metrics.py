"""Process-wide metrics registry: counters, gauges, histograms.

Lightweight by design — a metric update is a dict lookup plus an integer
add, and call sites in hot code guard updates behind the same
``TRACER.enabled`` check as tracing, so the disabled path costs one
attribute load.  The registry captures the runtime's observability
surface (PAPER.md §5): separation-check counts, shadow-memory byte
transitions, per-class heap tallies, checkpoint latencies,
misspeculation causes, and interpreter instructions/second on both
execution paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Cap on raw samples retained per histogram; count/sum/min/max stay
#: exact beyond it, percentiles become estimates over the first N.
HISTOGRAM_SAMPLE_CAP = 4096


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, v: float) -> None:
        self.value = v

    def snapshot(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Distribution summary with capped raw-sample retention."""

    __slots__ = ("name", "count", "total", "min", "max", "samples")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: List[float] = []

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        if len(self.samples) < HISTOGRAM_SAMPLE_CAP:
            self.samples.append(v)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, p: float) -> Optional[float]:
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        idx = min(len(ordered) - 1, max(0, round(p / 100 * (len(ordered) - 1))))
        return ordered[idx]

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": "histogram", "count": self.count, "sum": self.total,
            "min": self.min, "max": self.max, "mean": self.mean,
            "p50": self.percentile(50), "p95": self.percentile(95),
        }


class MetricsRegistry:
    """Name -> metric map with lazy creation and stable iteration order."""

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls):
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = cls(name)
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(m).__name__}, not {cls.__name__}")
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def reset(self) -> None:
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {name: m.snapshot() for name, m in sorted(self._metrics.items())}

    def render_table(self) -> str:
        snap = self.snapshot()
        if not snap:
            return "(no metrics recorded)"
        name_w = max(len(n) for n in snap)
        lines = [f"{'metric':<{name_w}}  value"]
        for name, s in snap.items():
            if s["type"] == "histogram":
                detail = (f"count={s['count']} mean={_fmt(s['mean'])} "
                          f"p95={_fmt(s['p95'])} max={_fmt(s['max'])}")
            else:
                detail = _fmt(s["value"])
            lines.append(f"{name:<{name_w}}  {detail}")
        return "\n".join(lines)


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:,.2f}" if abs(v) < 1e6 else f"{v:,.0f}"
    return f"{v:,}"


#: The process-wide registry; cleared by ``obs.enable()``.
METRICS = MetricsRegistry()
