"""Process-wide metrics registry: counters, gauges, histograms.

Lightweight by design — a metric update is a dict lookup plus an integer
add, and call sites in hot code guard updates behind the same
``TRACER.enabled`` check as tracing, so the disabled path costs one
attribute load.  The registry captures the runtime's observability
surface (PAPER.md §5): separation-check counts, shadow-memory byte
transitions, per-class heap tallies, checkpoint latencies,
misspeculation causes, and interpreter instructions/second on both
execution paths.

Cross-process shipping: a forked process-backend worker records into its
own (copy-on-write) registry, then ships :meth:`MetricsRegistry.dump`
back to the parent piggybacked on the epoch-result pipe; the parent
absorbs it with :meth:`MetricsRegistry.merge` under a ``worker.N.``
prefix, so the live registry (and the ``/metrics`` status endpoint)
shows real in-worker tallies alongside the parent's own.

Export: :meth:`MetricsRegistry.snapshot` is the JSON form served on
``/metrics``; :func:`render_prometheus` renders the same snapshot in the
Prometheus text exposition format (``worker.N.`` prefixes become a
``worker="N"`` label) for ``/metrics.prom``.
"""

from __future__ import annotations

import re
import zlib
from bisect import bisect_left
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

#: Cap on raw samples retained per histogram; count/sum/min/max/buckets
#: stay exact beyond it, percentiles become reservoir estimates.
HISTOGRAM_SAMPLE_CAP = 4096

#: Fixed ``le`` bucket ladder shared by every histogram: a 1-2.5-5
#: log sweep from 1 to 1e8, sized for microsecond latencies (1us ..
#: 100s) while still resolving small-integer distributions (batch
#: sizes) in the bottom decades.  A shared ladder keeps cross-process
#: :meth:`Histogram.merge` a straight element-wise add and gives
#: ``/metrics.prom`` real ``_bucket{le="..."}`` series.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    base * scale
    for scale in (1.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7)
    for base in (1.0, 2.5, 5.0)) + (1e8,)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}

    def dump(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}

    def merge(self, data: Dict[str, object]) -> None:
        self.value += int(data.get("value") or 0)


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, v: float) -> None:
        self.value = v

    def snapshot(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value}

    def dump(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value}

    def merge(self, data: Dict[str, object]) -> None:
        if data.get("value") is not None:
            self.value = data["value"]


class Histogram:
    """Distribution summary: exact count/sum/min/max/bucket counts plus
    a uniform reservoir of raw samples for percentile estimates.

    The reservoir (Vitter's algorithm R) replaces the old first-N cap,
    which froze percentiles on the first :data:`HISTOGRAM_SAMPLE_CAP`
    observations — on a long-lived server that biased ``p50``/``p99``
    toward startup traffic forever.  The replacement RNG is seeded from
    the metric name (crc32), so runs are reproducible and two processes
    recording the same stream agree.

    Bucket counts are *exact* regardless of the reservoir: ``observe``
    increments the matching ``le`` bucket (shared ladder, see
    :data:`DEFAULT_BUCKETS`), which is what ``/metrics.prom`` exports.
    """

    __slots__ = ("name", "count", "total", "min", "max", "samples",
                 "buckets", "bucket_counts", "_offered", "_rng")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: List[float] = []
        self.buckets: Tuple[float, ...] = tuple(buckets)
        #: Per-bucket (non-cumulative) counts; the extra last slot is the
        #: +Inf overflow bucket.
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self._offered = 0
        self._rng = Random(zlib.crc32(name.encode()))

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        # Prometheus `le` is inclusive: bisect_left lands v on the first
        # bound >= v, equal values included.
        self.bucket_counts[bisect_left(self.buckets, v)] += 1
        self._reservoir_add(v)

    def _reservoir_add(self, v: float) -> None:
        self._offered += 1
        if len(self.samples) < HISTOGRAM_SAMPLE_CAP:
            self.samples.append(v)
            return
        slot = self._rng.randrange(self._offered)
        if slot < HISTOGRAM_SAMPLE_CAP:
            self.samples[slot] = v

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, p: float) -> Optional[float]:
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        idx = min(len(ordered) - 1, max(0, round(p / 100 * (len(ordered) - 1))))
        return ordered[idx]

    def cumulative_buckets(self) -> List[Tuple[object, int]]:
        """``(le, cumulative_count)`` pairs ending with ``("+Inf",
        count)`` — the Prometheus histogram series."""
        out: List[Tuple[object, int]] = []
        running = 0
        for le, n in zip(self.buckets, self.bucket_counts):
            running += n
            out.append((le, running))
        out.append(("+Inf", running + self.bucket_counts[-1]))
        return out

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": "histogram", "count": self.count, "sum": self.total,
            "min": self.min, "max": self.max, "mean": self.mean,
            "p50": self.percentile(50), "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": [[le, n] for le, n in self.cumulative_buckets()],
        }

    def dump(self) -> Dict[str, object]:
        """Shipping form: exact aggregates, the bucket ladder/counts, and
        the retained reservoir, so a merge on the receiving side keeps
        both buckets exact and percentiles meaningful."""
        return {
            "type": "histogram", "count": self.count, "sum": self.total,
            "min": self.min, "max": self.max,
            "samples": list(self.samples),
            "le": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
        }

    def merge(self, data: Dict[str, object]) -> None:
        self.count += int(data.get("count") or 0)
        self.total += float(data.get("sum") or 0.0)
        for bound, pick in (("min", min), ("max", max)):
            other = data.get(bound)
            if other is not None:
                ours = getattr(self, bound)
                setattr(self, bound,
                        other if ours is None else pick(ours, other))
        samples = list(data.get("samples") or ())
        shipped_le = tuple(data.get("le") or ())
        shipped_counts = list(data.get("bucket_counts") or ())
        if shipped_le == self.buckets \
                and len(shipped_counts) == len(self.bucket_counts):
            for i, n in enumerate(shipped_counts):
                self.bucket_counts[i] += int(n)
        else:
            # Ladder mismatch (old dump format, or a custom ladder):
            # rebucket from the shipped reservoir — approximate beyond
            # the shipper's sample cap, exact below it.
            for v in samples:
                self.bucket_counts[bisect_left(self.buckets, v)] += 1
        # Feed shipped samples through the reservoir so long-run merges
        # stay uniform-ish instead of first-N biased.
        for v in samples:
            self._reservoir_add(v)


class MetricsRegistry:
    """Name -> metric map with lazy creation and stable iteration order."""

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls):
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = cls(name)
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(m).__name__}, not {cls.__name__}")
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def reset(self) -> None:
        self._metrics.clear()

    def remove(self, prefix: str) -> int:
        """Drop every metric whose name starts with ``prefix`` and return
        how many were dropped.  Used by the service tier to evict a
        retired job's ``job.<id>.*`` entries so a long-lived server's
        ``/metrics`` payload stays bounded."""
        doomed = [n for n in self._metrics if n.startswith(prefix)]
        for name in doomed:
            del self._metrics[name]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self, prefix: str = "") -> Dict[str, Dict[str, object]]:
        """Name -> snapshot dict, in grouped namespace order (see
        :func:`metric_sort_key`); ``prefix`` keeps only metrics whose
        name starts with it (e.g. ``"worker."``)."""
        names = sorted((n for n in self._metrics
                        if not prefix or n.startswith(prefix)),
                       key=metric_sort_key)
        return {name: self._metrics[name].snapshot() for name in names}

    def dump(self, prefix: str = "") -> Dict[str, Dict[str, object]]:
        """The cross-process shipping form (histograms keep their raw
        samples); same filtering/ordering as :meth:`snapshot`."""
        names = sorted((n for n in self._metrics
                        if not prefix or n.startswith(prefix)),
                       key=metric_sort_key)
        return {name: self._metrics[name].dump() for name in names}

    _MERGE_CLASSES = {"counter": Counter, "gauge": Gauge,
                      "histogram": Histogram}

    def merge(self, dump: Dict[str, Dict[str, object]],
              prefix: str = "") -> None:
        """Absorb a :meth:`dump` from another registry (typically shipped
        from a forked worker), registering each metric as
        ``prefix + name``: counters add, gauges take the shipped value,
        histograms pool aggregates and samples.  Entries with an unknown
        type are skipped rather than corrupting the registry."""
        for name, data in dump.items():
            cls = self._MERGE_CLASSES.get(str(data.get("type")))
            if cls is None:
                continue
            self._get(prefix + name, cls).merge(data)

    def render_table(self, prefix: str = "") -> str:
        snap = self.snapshot(prefix=prefix)
        if not snap:
            return "(no metrics recorded)"
        name_w = max(len(n) for n in snap)
        lines = [f"{'metric':<{name_w}}  value"]
        for name, s in snap.items():
            if s["type"] == "histogram":
                detail = (f"count={s['count']} mean={_fmt(s['mean'])} "
                          f"p95={_fmt(s['p95'])} max={_fmt(s['max'])}")
            else:
                detail = _fmt(s["value"])
            lines.append(f"{name:<{name_w}}  {detail}")
        return "\n".join(lines)


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:,.2f}" if abs(v) < 1e6 else f"{v:,.0f}"
    return f"{v:,}"


#: A trailing-number name component like ``j12`` (service job ids).
_NUMBERED_PART = re.compile(r"^(\D+?)(\d+)$")


def metric_sort_key(name: str) -> Tuple:
    """Sort key grouping metric names by dotted namespace, with numeric
    components compared as integers — so ``worker.2.*`` sorts before
    ``worker.10.*`` and each worker's metrics render as one contiguous
    block instead of interleaving lexicographically.  Components with a
    trailing number (service job ids: ``j2``, ``j10``) compare by prefix
    then numerically, so ``job.j2.*`` sorts before ``job.j10.*``."""
    parts = []
    for part in name.split("."):
        if part.isdigit():
            parts.append(("", int(part)))
            continue
        m = _NUMBERED_PART.match(part)
        parts.append((m.group(1), int(m.group(2))) if m else (part, -1))
    return tuple(parts)


#: Registry-name shape of a worker-shipped metric: ``worker.<N>.<rest>``.
_WORKER_NAME = re.compile(r"^worker\.(\d+)\.(.+)$")

#: Registry-name shape of a per-job service metric: ``job.<id>.<rest>``.
_JOB_NAME = re.compile(r"^job\.(j\d+)\.(.+)$")


def split_worker_metric(name: str) -> Tuple[str, Optional[str]]:
    """Split ``worker.N.rest`` into ``(rest, "N")``; any other name maps
    to ``(name, None)``.  This is how per-worker registry entries become
    one Prometheus metric family with a ``worker`` label."""
    m = _WORKER_NAME.match(name)
    if m is None:
        return name, None
    return m.group(2), m.group(1)


def split_labeled_metric(name: str) -> Tuple[str, Optional[Tuple[str, str]]]:
    """Split a labeled registry name into ``(base, (label, value))``:
    ``worker.N.rest`` -> ``(rest, ("worker", "N"))`` and the service
    tier's ``job.jN.rest`` -> ``(rest, ("job", "jN"))``; any other name
    maps to ``(name, None)``."""
    base, worker = split_worker_metric(name)
    if worker is not None:
        return base, ("worker", worker)
    m = _JOB_NAME.match(name)
    if m is not None:
        return m.group(2), ("job", m.group(1))
    return name, None


#: Registry-name shape of an explicitly labeled metric:
#: ``base{key="value",...}`` (produced by :func:`labeled`).
_BRACED_NAME = re.compile(r"^(?P<base>[^{}]+)\{(?P<labels>[^{}]*)\}$")

_LABEL_PAIR = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"\\{}]*)"$')


def labeled(name: str, **labels: str) -> str:
    """Build the canonical registry name for a labeled metric:
    ``labeled("service.job.total_us", outcome="done", tier="warm")`` ->
    ``service.job.total_us{outcome="done",tier="warm"}``.  Keys are
    sorted so one label set always maps to one registry entry; the
    Prometheus renderer folds all label sets of a base name into one
    metric family."""
    pairs = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return f"{name}{{{pairs}}}" if pairs else name


def parse_metric_name(name: str) -> Tuple[str, List[Tuple[str, str]]]:
    """Split any registry name into ``(base, [(label, value), ...])``:
    handles the ``worker.N.``/``job.jN.`` positional prefixes *and*
    explicit ``{key="value"}`` suffixes from :func:`labeled`.  A name
    with neither returns ``(name, [])``; a malformed brace suffix is
    treated as unlabeled rather than raising."""
    m = _BRACED_NAME.match(name)
    if m is not None:
        pairs: List[Tuple[str, str]] = []
        for chunk in filter(None, m.group("labels").split(",")):
            pm = _LABEL_PAIR.match(chunk)
            if pm is None:
                return name, []
            pairs.append((pm.group("key"), pm.group("value")))
        return m.group("base"), pairs
    base, pair = split_labeled_metric(name)
    return base, ([pair] if pair is not None else [])


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

#: Prefix for every exported Prometheus metric family.
PROM_NAMESPACE = "repro"


def prometheus_name(name: str, namespace: str = PROM_NAMESPACE) -> str:
    """Sanitize a dotted registry name into a legal Prometheus metric
    name under ``namespace`` (dots and other invalid characters become
    underscores)."""
    flat = _PROM_INVALID.sub("_", name.strip("."))
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return f"{namespace}_{flat}" if namespace else flat


def _prom_value(v) -> str:
    if isinstance(v, bool):
        return "1" if v else "0"
    if isinstance(v, int):
        return str(v)
    return repr(float(v))


def render_prometheus(snapshot: Dict[str, Dict[str, object]],
                      namespace: str = PROM_NAMESPACE) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in the Prometheus text
    exposition format (version 0.0.4).

    ``worker.N.`` prefixes are folded into a ``worker="N"`` label, the
    service tier's ``job.jN.`` prefixes into a ``job="jN"`` label, and
    explicit ``{key="value"}`` suffixes (see :func:`labeled`) into label
    pairs, so all label sets of one base name share one metric family.
    Histograms render as real Prometheus histograms — cumulative
    ``_bucket{le="..."}`` series ending in ``le="+Inf"`` plus
    ``_count``/``_sum`` (snapshots without bucket data fall back to a
    ``summary`` with quantile samples).  Gauges that were never set are
    omitted.  One ``# TYPE`` line is emitted per family, before its
    first sample.
    """
    families: Dict[str, List[Tuple[List[Tuple[str, str]],
                                   Dict[str, object]]]] = {}
    types: Dict[str, str] = {}
    for name, snap in snapshot.items():
        base, pairs = parse_metric_name(name)
        fam = prometheus_name(base, namespace)
        kind = str(snap.get("type"))
        if kind == "histogram":
            prom_type = "histogram" if snap.get("buckets") else "summary"
        else:
            prom_type = {"counter": "counter", "gauge": "gauge"}.get(kind)
        if prom_type is None:
            continue
        if types.setdefault(fam, prom_type) != prom_type:
            # Same sanitized family from two metric types: keep the first
            # declaration and skip the clashing sample.
            continue
        families.setdefault(fam, []).append((pairs, snap))

    def label(pairs: List[Tuple[str, str]], extra: str = "") -> str:
        parts = [f'{k}="{v}"' for k, v in pairs] + \
            ([extra] if extra else [])
        return "{" + ",".join(parts) + "}" if parts else ""

    lines: List[str] = []
    for fam in sorted(families, key=metric_sort_key):
        lines.append(f"# TYPE {fam} {types[fam]}")
        for pairs, snap in families[fam]:
            if types[fam] in ("counter", "gauge"):
                value = snap.get("value")
                if value is None:
                    continue
                lines.append(f"{fam}{label(pairs)} {_prom_value(value)}")
                continue
            if types[fam] == "histogram":
                for le, cumulative in snap.get("buckets") or []:
                    le_txt = "+Inf" if le == "+Inf" else _prom_value(le)
                    lines.append(
                        f"{fam}_bucket{label(pairs, 'le=%s' % _quote(le_txt))}"
                        f" {_prom_value(cumulative)}")
            else:
                for q, key in (("0.5", "p50"), ("0.95", "p95")):
                    if snap.get(key) is not None:
                        quantile = 'quantile="%s"' % q
                        lines.append(f"{fam}{label(pairs, quantile)} "
                                     f"{_prom_value(snap[key])}")
            lines.append(f"{fam}_count{label(pairs)} "
                         f"{_prom_value(snap.get('count', 0))}")
            lines.append(f"{fam}_sum{label(pairs)} "
                         f"{_prom_value(snap.get('sum', 0.0))}")
    return "\n".join(lines) + ("\n" if lines else "")


def _quote(v: str) -> str:
    return f'"{v}"'


#: The process-wide registry; cleared by ``obs.enable()``.
METRICS = MetricsRegistry()
