"""Structured tracing: spans, instant events, and Chrome trace export.

The process-wide :data:`TRACER` is the single source of truth for
observability state.  It is **disabled by default**; every instrumented
call site in the pipeline guards its work behind one attribute check
(``if TRACER.enabled:``), so the cost of the disabled path is a single
boolean load — the compiled-interpreter fast path must not regress
(``python -m repro perf`` asserts a <= 2% budget).

Event model
-----------
Two event kinds, both carried as plain dicts so they serialize directly:

* **span** — a named duration with monotonic wall-clock ``ts_us``/
  ``dur_us`` microseconds relative to the tracer epoch, a logical lane
  ``tid`` (0 = main, 1+N = simulated worker N), and free-form ``attrs``.
  Pipeline phases (compile, profile, classify, transform, execute) and
  parallel-region invocations are spans.  Spans carry *dual* time: the
  wall clock in ``ts_us``/``dur_us`` and, where meaningful, simulated
  cycles in ``attrs`` (``cycles``, ``wall_cycles`` ...).
* **instant** — a point event: checkpoint commits, misspeculations,
  recoveries, cache hits.

Export formats
--------------
* JSONL — one event object per line via :meth:`Tracer.write_jsonl`
  (schema checked by :mod:`repro.obs.schema`).
* Chrome ``trace_event`` JSON via :meth:`Tracer.write_chrome` — loadable
  in ``chrome://tracing`` or https://ui.perfetto.dev.  The export can
  merge a simulated-cycle :class:`~repro.parallel.timeline.Timeline`
  (Figure 5) as a second process via :func:`timeline_to_chrome`, turning
  a run into an interactive flame chart.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from typing import Dict, Iterator, List, Optional, TextIO

#: Trace format version stamped into the JSONL meta header.
TRACE_FORMAT = 1

#: Conversion used when projecting simulated cycles onto the Chrome
#: trace's microsecond axis (1 "cycle" = 1/1000 us, i.e. a 1 GHz core).
CYCLES_PER_US = 1000.0

#: Lane conventions for Chrome export: the real process is pid 1, the
#: simulated machine (cycle-time Timeline) is pid 2.
WALL_PID = 1
SIM_PID = 2

#: Events shipped back from the process backend's forked workers are
#: re-homed to one trace process per worker: pid = WORKER_PID_BASE + wid.
WORKER_PID_BASE = 10


class Span:
    """A started span; finish it with :meth:`end` (or use it as a
    context manager).  ``set`` attaches attributes at any point before
    the end — the executor uses it for simulated-cycle duals."""

    __slots__ = ("tracer", "name", "cat", "tid", "attrs", "t0", "_done")

    def __init__(self, tracer: "Tracer", name: str, cat: str, tid: int,
                 attrs: Dict[str, object]):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.tid = tid
        self.attrs = attrs
        self.t0 = tracer.clock()
        self._done = False

    def set(self, **attrs: object) -> "Span":
        self.attrs.update(attrs)
        return self

    def end(self, **attrs: object) -> None:
        if self._done:
            return
        self._done = True
        if attrs:
            self.attrs.update(attrs)
        self.tracer._finish_span(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()


class _NullSpan:
    """Shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def end(self, **attrs: object) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects structured events with monotonic timestamps.

    Disabled by default; :meth:`enable` starts a fresh epoch.  All event
    appends take a lock, which is uncontended in the single-threaded
    simulator but keeps the tracer safe for host-threaded callers.
    """

    def __init__(self, clock=time.perf_counter):
        self.enabled = False
        self.clock = clock
        self.events: List[Dict[str, object]] = []
        self._lock = threading.Lock()
        self._epoch = clock()
        #: Wall-clock (UNIX) time of the tracer epoch.  Event ``ts_us``
        #: values are process-local monotonic offsets; this anchor maps
        #: them back onto the wall clock, so traces captured in different
        #: processes (parent vs shipped worker streams, or two separate
        #: runs) can be aligned after a merge.
        self.epoch_unix = time.time()
        #: Run-identifying fields merged into the JSONL meta header
        #: (version, argv, backend ... — see Tracer.set_run_metadata).
        self.run_metadata: Dict[str, object] = {}
        #: Ambient attributes merged into every recorded event (explicit
        #: event attrs win).  The service tier sets ``job``/``job_span``
        #: here so the whole causal chain of a traced job — including
        #: events recorded by forked workers, which inherit this dict —
        #: carries the job's span id without touching every call site.
        self.context: Dict[str, object] = {}
        self._span_seq = 0
        # Optional streaming JSONL sink: events are appended as they are
        # recorded so a crash mid-run loses at most the unflushed tail
        # instead of the whole buffer.  Guarded by the opening pid so
        # forked workers (which exit via os._exit) never write to it.
        self._sink: Optional[TextIO] = None
        self._sink_pid = 0
        self._atexit_registered = False

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        self.reset()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
        self.close_sink()

    def reset(self) -> None:
        # The span-id sequence deliberately survives resets: a service
        # scheduler re-enables the tracer per traced job, and two jobs
        # of one batch must not reuse root span ids.
        self.close_sink()
        with self._lock:
            self.events = []
            self.run_metadata = {}
            self.context = {}
            self._epoch = self.clock()
            self.epoch_unix = time.time()

    def set_run_metadata(self, **fields: object) -> None:
        """Merge run-identifying fields into the JSONL meta header."""
        self.run_metadata.update(fields)

    def set_context(self, **fields: object) -> None:
        """Merge ambient attributes propagated onto every subsequent
        event (spans, instants, and — via fork inheritance — worker
        events).  Cleared by :meth:`reset`/:meth:`clear_context`."""
        self.context.update(fields)

    def clear_context(self, *fields: str) -> None:
        """Drop the named context fields (all of them when none given)."""
        if not fields:
            self.context = {}
            return
        for field in fields:
            self.context.pop(field, None)

    def next_span_id(self) -> int:
        """Allocate a span id, unique within this process's stream.
        Spans get one automatically in ``attrs["span_id"]``; callers that
        need the id *before* the span exists (to propagate it as a
        parent reference) allocate here and pass ``span_id=`` through."""
        with self._lock:
            self._span_seq += 1
            return self._span_seq

    # -- streaming sink ----------------------------------------------------

    def open_sink(self, path) -> None:
        """Stream events to ``path`` as they are recorded.

        The meta header is written immediately (its event count is -1,
        meaning "streaming; count unknown"); a clean completion rewrites
        the file via :meth:`write_jsonl` with the final count.  The sink
        is flushed and closed via ``atexit`` so partial traces survive an
        unhandled exception mid-run."""
        self.close_sink()
        self._sink = open(path, "w")
        self._sink_pid = os.getpid()
        self._sink.write(
            json.dumps(self._meta_header(-1), sort_keys=True, default=str)
            + "\n")
        if not self._atexit_registered:
            self._atexit_registered = True
            atexit.register(self.close_sink)

    def close_sink(self) -> None:
        """Flush and close the streaming sink (idempotent, fork-safe)."""
        sink = self._sink
        if sink is None:
            return
        self._sink = None
        if os.getpid() != self._sink_pid:
            return
        try:
            sink.flush()
            sink.close()
        except (OSError, ValueError):
            pass

    def _sink_write(self, event: Dict[str, object]) -> None:
        """Append one event to the sink (call with the lock held)."""
        if self._sink is None or os.getpid() != self._sink_pid:
            return
        try:
            self._sink.write(json.dumps(event, sort_keys=True, default=str)
                             + "\n")
        except (OSError, ValueError):
            self._sink = None

    def _now_us(self, t: Optional[float] = None) -> float:
        return ((self.clock() if t is None else t) - self._epoch) * 1e6

    # -- recording ---------------------------------------------------------

    def span(self, name: str, cat: str = "phase", tid: int = 0,
             **attrs: object):
        """Begin a span.  Returns :data:`NULL_SPAN` when disabled, so
        ``with TRACER.span(...)`` is safe (and cheap) unconditionally.
        Every real span gets a process-unique ``attrs["span_id"]``
        (pass ``span_id=`` to pin a pre-allocated one)."""
        if not self.enabled:
            return NULL_SPAN
        attrs.setdefault("span_id", self.next_span_id())
        return Span(self, name, cat, tid, attrs)

    def _finish_span(self, span: Span) -> None:
        t1 = self.clock()
        if not self.enabled:
            return
        with self._lock:
            event = {
                "kind": "span",
                "name": span.name,
                "cat": span.cat,
                "ts_us": round(self._now_us(span.t0), 3),
                "dur_us": round(max(0.0, (t1 - span.t0) * 1e6), 3),
                "pid": WALL_PID,
                "tid": span.tid,
                "thread": threading.get_ident(),
                "attrs": {**self.context, **span.attrs},
            }
            self.events.append(event)
            self._sink_write(event)

    def instant(self, name: str, cat: str = "event", tid: int = 0,
                **attrs: object) -> None:
        if not self.enabled:
            return
        with self._lock:
            event = {
                "kind": "instant",
                "name": name,
                "cat": cat,
                "ts_us": round(self._now_us(), 3),
                "pid": WALL_PID,
                "tid": tid,
                "thread": threading.get_ident(),
                "attrs": {**self.context, **attrs},
            }
            self.events.append(event)
            self._sink_write(event)

    def emit_span(self, name: str, cat: str = "phase", tid: int = 0,
                  dur_us: float = 0.0, **attrs: object) -> None:
        """Append an already-measured span — for phases that completed
        *before* the tracer was enabled (a service job's submit-time
        validation or queue wait).  The span lands at the current
        position on the monotonic axis with the given duration; real
        wall-clock anchors belong in attrs (``submitted_unix`` ...)."""
        if not self.enabled:
            return
        attrs.setdefault("span_id", self.next_span_id())
        with self._lock:
            event = {
                "kind": "span",
                "name": name,
                "cat": cat,
                "ts_us": round(self._now_us(), 3),
                "dur_us": round(max(0.0, float(dur_us)), 3),
                "pid": WALL_PID,
                "tid": tid,
                "thread": threading.get_ident(),
                "attrs": {**self.context, **attrs},
            }
            self.events.append(event)
            self._sink_write(event)

    def absorb_worker_events(self, wid: int,
                             events: List[Dict[str, object]]) -> None:
        """Append events shipped back from a forked worker process,
        re-homed to that worker's trace process (pid
        ``WORKER_PID_BASE + wid``) so each real worker shows up as its
        own process lane in the Chrome export.  The children share the
        tracer epoch with the parent (fork inherits it), so their
        timestamps land on the same axis."""
        if not self.enabled or not events:
            return
        pid = WORKER_PID_BASE + wid
        with self._lock:
            for ev in events:
                ev = dict(ev)
                ev["pid"] = pid
                self.events.append(ev)
                self._sink_write(ev)

    # -- export ------------------------------------------------------------

    def _meta_header(self, event_count: int) -> Dict[str, object]:
        """The JSONL meta line; ``event_count`` is -1 while streaming."""
        attrs: Dict[str, object] = {
            "trace_format": TRACE_FORMAT,
            "events": event_count,
            # Wall-clock anchor: ts_us 0 on this stream's monotonic axis
            # corresponds to this UNIX time (see Tracer.epoch_unix).
            "epoch_unix": self.epoch_unix,
        }
        if self.run_metadata:
            attrs["run"] = dict(self.run_metadata)
        return {
            "kind": "meta",
            "name": "repro-trace",
            "cat": "meta",
            "ts_us": 0.0,
            "pid": WALL_PID,
            "tid": 0,
            "attrs": attrs,
        }

    def jsonl_lines(self) -> Iterator[str]:
        yield json.dumps(self._meta_header(len(self.events)), sort_keys=True,
                         default=str)
        for ev in self.events:
            yield json.dumps(ev, sort_keys=True, default=str)

    def write_jsonl(self, path) -> int:
        """Write one event per line; returns the number of events.  Closes
        the streaming sink first (it may be the same file)."""
        self.close_sink()
        with open(path, "w") as fh:
            for line in self.jsonl_lines():
                fh.write(line + "\n")
        return len(self.events)

    def chrome_events(self) -> List[Dict[str, object]]:
        """The wall-clock events in Chrome ``trace_event`` form."""
        out: List[Dict[str, object]] = [
            {"ph": "M", "name": "process_name", "pid": WALL_PID, "tid": 0,
             "args": {"name": "repro (wall clock)"}},
            {"ph": "M", "name": "thread_name", "pid": WALL_PID, "tid": 0,
             "args": {"name": "main"}},
        ]
        named_pids = {WALL_PID}
        named_tids = {(WALL_PID, 0)}
        for ev in self.events:
            tid = ev["tid"]
            pid = ev["pid"]
            if pid not in named_pids:
                named_pids.add(pid)
                if pid >= WORKER_PID_BASE:
                    pname = f"worker process {pid - WORKER_PID_BASE}"
                else:
                    pname = f"process {pid}"
                out.append({"ph": "M", "name": "process_name", "pid": pid,
                            "tid": 0, "args": {"name": pname}})
            if (pid, tid) not in named_tids:
                named_tids.add((pid, tid))
                out.append({"ph": "M", "name": "thread_name", "pid": pid,
                            "tid": tid, "args": {"name": f"worker {tid - 1}"}})
            base = {
                "name": ev["name"], "cat": ev["cat"], "pid": pid,
                "tid": tid, "ts": ev["ts_us"], "args": dict(ev["attrs"]),
            }
            if ev["kind"] == "span":
                base["ph"] = "X"
                base["dur"] = ev["dur_us"]
            else:
                base["ph"] = "i"
                base["s"] = "t"
            out.append(base)
        return out

    def chrome_trace(self, timeline=None,
                     cycles_per_us: float = CYCLES_PER_US) -> Dict[str, object]:
        events = self.chrome_events()
        if timeline is not None:
            events.extend(timeline_to_chrome(timeline, cycles_per_us))
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs", "format": TRACE_FORMAT,
                          "epoch_unix": self.epoch_unix},
        }

    def write_chrome(self, path, timeline=None,
                     cycles_per_us: float = CYCLES_PER_US) -> int:
        trace = self.chrome_trace(timeline, cycles_per_us)
        with open(path, "w") as fh:
            json.dump(trace, fh, indent=1, default=str)
            fh.write("\n")
        return len(trace["traceEvents"])

    # -- summaries ---------------------------------------------------------

    def phase_summary(self) -> List[Dict[str, object]]:
        """Aggregate spans by name (count, total/max duration), in first-
        seen order — the human-readable table ``repro trace`` prints."""
        agg: Dict[str, Dict[str, object]] = {}
        for ev in self.events:
            if ev["kind"] != "span":
                continue
            row = agg.setdefault(ev["name"], {
                "name": ev["name"], "cat": ev["cat"], "count": 0,
                "total_us": 0.0, "max_us": 0.0,
            })
            row["count"] += 1
            row["total_us"] += ev["dur_us"]
            row["max_us"] = max(row["max_us"], ev["dur_us"])
        return list(agg.values())

    def render_summary(self) -> str:
        rows = self.phase_summary()
        if not rows:
            return "(no spans recorded)"
        name_w = max(len(r["name"]) for r in rows)
        lines = [f"{'span':<{name_w}}  {'count':>5}  {'total':>10}  {'max':>10}"]
        for r in rows:
            lines.append(
                f"{r['name']:<{name_w}}  {r['count']:>5}  "
                f"{_fmt_us(r['total_us']):>10}  {_fmt_us(r['max_us']):>10}")
        instants = sum(1 for ev in self.events if ev["kind"] == "instant")
        lines.append(f"({len(self.events)} events: "
                     f"{len(self.events) - instants} spans, "
                     f"{instants} instants)")
        return "\n".join(lines)


def _fmt_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:.2f}s"
    if us >= 1e3:
        return f"{us / 1e3:.2f}ms"
    return f"{us:.0f}us"


def timeline_to_chrome(timeline, cycles_per_us: float = CYCLES_PER_US,
                       pid: int = SIM_PID) -> List[Dict[str, object]]:
    """Convert a :class:`~repro.parallel.timeline.Timeline` (simulated
    cycle time, Figure 5) into Chrome ``trace_event`` dicts.

    Each worker becomes a thread lane (tid = worker + 1); runtime-wide
    events (spawn, checkpoint, recovery, join) land on tid 0.  Durations
    are projected onto microseconds via ``cycles_per_us`` so wall-clock
    and simulated views can sit side by side in one trace."""
    events: List[Dict[str, object]] = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
         "args": {"name": "simulated multicore (cycles)"}},
        {"ph": "M", "name": "thread_name", "pid": pid, "tid": 0,
         "args": {"name": "runtime"}},
    ]
    named = {0}
    for e in timeline.events:
        tid = 0 if e.worker is None else e.worker + 1
        if tid not in named:
            named.add(tid)
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid, "args": {"name": f"worker {e.worker}"}})
        start = max(0, e.start)
        end = max(start, e.end)
        events.append({
            "name": e.label or e.kind,
            "cat": f"sim.{e.kind}",
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": start / cycles_per_us,
            "dur": (end - start) / cycles_per_us,
            "args": {"kind": e.kind, "cycles_start": e.start,
                     "cycles_end": e.end, "label": e.label},
        })
    return events


#: The process-wide tracer.  Instrumented call sites check
#: ``TRACER.enabled`` (one attribute load) before doing any work.
TRACER = Tracer()
