"""Logging for the ``repro.*`` namespace.

Every runtime module gets its logger via :func:`get_logger`; nothing is
emitted unless the user opts in with ``REPRO_LOG=<level>`` (``debug``,
``info``, ``warning``, ``error``, or ``off``) or a host application
configures the ``repro`` logger itself.  :func:`configure_from_env` is
idempotent and is invoked by the CLI entry point and ``obs.enable()``.
"""

from __future__ import annotations

import logging
import os
from typing import Optional

ENV_VAR = "REPRO_LOG"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
}

_configured = False

# Library etiquette: without opt-in configuration, nothing reaches the
# user's terminal (not even via logging's last-resort stderr handler).
logging.getLogger("repro").addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure_from_env(env: Optional[str] = None,
                       force: bool = False) -> Optional[int]:
    """Attach a stderr handler to the ``repro`` root logger according to
    ``$REPRO_LOG``.  Returns the configured level, or None when logging
    stays off.  Safe to call repeatedly."""
    global _configured
    if _configured and not force:
        return None
    value = (env if env is not None else os.environ.get(ENV_VAR, "")).strip()
    if not value or value.lower() == "off":
        return None
    level = _LEVELS.get(value.lower())
    if level is None:
        try:
            level = int(value)
        except ValueError:
            level = logging.INFO
    root = logging.getLogger("repro")
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(
        "%(asctime)s %(name)s %(levelname)s %(message)s"))
    root.addHandler(handler)
    root.setLevel(level)
    _configured = True
    return level
