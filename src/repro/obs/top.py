"""``python -m repro top`` — live terminal dashboard for a run.

Polls the ``/metrics`` JSON endpoint served by :mod:`repro.obs.server`
(or reads a snapshot file / an in-process registry) and renders epoch
throughput, misspeculation rate, adaptive-controller state, and
per-worker utilization as a full-screen text frame, refreshed in place.

Rates are derived client-side from successive polls (delta of monotonic
counters over the wall-clock gap between ``generated_unix`` stamps), so
the server stays a dumb snapshot endpoint.  Everything here is plain
ANSI — no curses — so it works over ssh, in CI logs (``--once``), and
piped to a file.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import MetricsRegistry, metric_sort_key, split_worker_metric

#: ANSI: clear screen + home (the refresh between frames).
CLEAR = "\x1b[2J\x1b[H"

#: Default poll interval in seconds.
DEFAULT_INTERVAL = 1.0


def fetch_payload(url: str, timeout: float = 5.0) -> Dict[str, object]:
    """GET the ``/metrics`` JSON payload from a status endpoint."""
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode())


def payload_from_registry(registry: MetricsRegistry,
                          run: Optional[Dict[str, object]] = None
                          ) -> Dict[str, object]:
    """Build the same payload shape from an in-process registry, for
    embedding the dashboard without an HTTP hop."""
    return {
        "status_format": 1,
        "generated_unix": time.time(),
        "uptime_s": 0.0,
        "run": dict(run or {}),
        "metrics": registry.snapshot(),
    }


def _value(metrics: Dict[str, Dict[str, object]], name: str,
           default: float = 0) -> float:
    entry = metrics.get(name)
    if not isinstance(entry, dict):
        return default
    v = entry.get("value")
    return default if v is None else v


def _sum_matching(metrics: Dict[str, Dict[str, object]],
                  pattern: str) -> float:
    rx = re.compile(pattern)
    return sum(_value(metrics, name) for name in metrics if rx.match(name))


def _rate(now_v: float, prev_v: float, dt: float) -> Optional[float]:
    if dt <= 0:
        return None
    return max(0.0, now_v - prev_v) / dt


def _fmt_rate(r: Optional[float], unit: str) -> str:
    return "-" if r is None else f"{r:,.1f} {unit}"


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


def _fmt_us(v: object) -> str:
    if not isinstance(v, (int, float)):
        return "-"
    if v >= 1e6:
        return f"{v / 1e6:.2f}s"
    if v >= 1e3:
        return f"{v / 1e3:.1f}ms"
    return f"{v:.0f}us"


def worker_rows(metrics: Dict[str, Dict[str, object]]
                ) -> List[Tuple[str, Dict[str, float]]]:
    """Group ``worker.N.*`` metrics into per-worker dicts keyed by the
    un-prefixed metric name, in numeric worker order."""
    grouped: Dict[str, Dict[str, float]] = {}
    for name in metrics:
        base, worker = split_worker_metric(name)
        if worker is None:
            continue
        entry = metrics[name]
        value = entry.get("value", entry.get("count"))
        if value is not None:
            grouped.setdefault(worker, {})[base] = value
    return sorted(grouped.items(), key=lambda kv: int(kv[0]))


def render_dashboard(payload: Dict[str, object],
                     prev: Optional[Dict[str, object]] = None,
                     width: int = 78) -> str:
    """One dashboard frame.  ``prev`` (the previous poll) turns the
    monotonic counters into rates and per-worker utilization."""
    metrics = payload.get("metrics") or {}
    run = payload.get("run") or {}
    prev_metrics = (prev or {}).get("metrics") or {}
    now_ts = float(payload.get("generated_unix") or 0.0)
    dt = now_ts - float((prev or {}).get("generated_unix") or 0.0) \
        if prev else 0.0

    lines: List[str] = []
    title = "repro top"
    workload = run.get("workload") or "?"
    backend = run.get("backend") or "?"
    uptime = payload.get("uptime_s")
    head = (f"{title} · {workload} · backend={backend}"
            + (f" · up {uptime:.0f}s" if isinstance(uptime, (int, float))
               and uptime else ""))
    lines.append(head[:width])
    lines.append("=" * min(width, len(head)))

    # -- throughput -------------------------------------------------------
    epochs = _value(metrics, "executor.epochs")
    iters = _value(metrics, "executor.iterations.committed")
    checkpoints = _value(metrics, "runtime.checkpoints")
    misspecs = _sum_matching(metrics, r"^runtime\.misspec\.")
    recoveries = _value(metrics, "executor.recoveries")
    attempts = epochs + misspecs
    misspec_rate = misspecs / attempts if attempts else 0.0
    epoch_rate = iter_rate = None
    if prev:
        epoch_rate = _rate(epochs, _value(prev_metrics, "executor.epochs"),
                           dt)
        iter_rate = _rate(
            iters, _value(prev_metrics, "executor.iterations.committed"), dt)
    progress_at = _value(metrics, "executor.progress.iteration")
    trips = _value(metrics, "executor.progress.trips")
    lines.append("")
    lines.append(f"epochs committed {epochs:>10,.0f}   "
                 f"({_fmt_rate(epoch_rate, 'epoch/s')})")
    lines.append(f"iterations       {iters:>10,.0f}   "
                 f"({_fmt_rate(iter_rate, 'iter/s')})")
    lines.append(f"checkpoints      {checkpoints:>10,.0f}")
    lines.append(f"misspeculations  {misspecs:>10,.0f}   "
                 f"rate {misspec_rate:.1%}   recoveries {recoveries:,.0f}")
    if trips:
        frac = progress_at / trips
        lines.append(f"invocation       [{_bar(frac)}] "
                     f"{progress_at:,.0f}/{trips:,.0f} iters")

    # -- service tier (repro serve) ---------------------------------------
    if any(name.startswith("service.") for name in metrics):
        submitted = _value(metrics, "service.jobs.submitted")
        completed = _value(metrics, "service.jobs.completed")
        failed = _value(metrics, "service.jobs.failed")
        misspec_jobs = _value(metrics, "service.jobs.misspeculated")
        cache_hits = _value(metrics, "service.cache_hits")
        depth = _value(metrics, "service.queue.depth")
        retry = _value(metrics, "service.retry_after_s")
        job_rate = None
        if prev:
            job_rate = _rate(
                completed,
                _value(prev_metrics, "service.jobs.completed"), dt)
        latency = metrics.get("service.job.latency_us") or {}
        queue_wait = metrics.get("service.job.queue_wait_us") or {}
        lines.append("")
        lines.append("service")
        lines.append(
            f"  jobs: {submitted:,.0f} submitted  {completed:,.0f} done "
            f"({_fmt_rate(job_rate, 'job/s')})  {failed:,.0f} failed  "
            f"{misspec_jobs:,.0f} misspec  {cache_hits:,.0f} cache hits")
        lines.append(
            f"  queue depth {depth:>4,.0f}   retry-after {retry:,.1f}s   "
            f"latency p50 {_fmt_us(latency.get('p50'))} "
            f"p99 {_fmt_us(latency.get('p99'))}   "
            f"queue wait p99 {_fmt_us(queue_wait.get('p99'))}")

    # -- adaptive controller ---------------------------------------------
    if any(name.startswith("adapt.") for name in metrics):
        lines.append("")
        lines.append("controller")
        lines.append(
            f"  epoch size {_value(metrics, 'adapt.epoch_size'):>6,.0f}   "
            f"windowed misspec {_value(metrics, 'adapt.misspec_rate'):.1%}   "
            f"grows {_value(metrics, 'adapt.epoch.grows'):,.0f}  "
            f"shrinks {_value(metrics, 'adapt.epoch.shrinks'):,.0f}  "
            f"fallbacks {_value(metrics, 'adapt.fallbacks'):,.0f}  "
            f"demotions {_value(metrics, 'adapt.demotions'):,.0f}")

    # -- per-worker utilization ------------------------------------------
    rows = worker_rows(metrics)
    if rows:
        prev_rows = dict(worker_rows(prev_metrics)) if prev else {}
        lines.append("")
        lines.append(f"{'worker':>6}  {'iters':>8}  {'slices':>7}  "
                     f"{'busy':>9}  utilization")
        for worker, vals in rows:
            busy_us = vals.get("epoch.busy_us", 0.0)
            util: Optional[float] = None
            if prev and dt > 0:
                prev_busy = prev_rows.get(worker, {}).get("epoch.busy_us", 0.0)
                util = (busy_us - prev_busy) / 1e6 / dt
            elif isinstance(uptime, (int, float)) and uptime >= 1.0:
                util = busy_us / 1e6 / uptime
            lines.append(
                f"{worker:>6}  {vals.get('epoch.iterations', 0):>8,.0f}  "
                f"{vals.get('epoch.slices', 0):>7,.0f}  "
                f"{busy_us / 1e6:>8.2f}s  "
                + (f"[{_bar(util)}] {min(util, 1.0):.0%}"
                   if util is not None else "-"))
    elif run.get("backend") == "process":
        lines.append("")
        lines.append("(no worker.N.* metrics yet — first epoch in flight)")

    # -- hottest remaining metrics ---------------------------------------
    interesting = [n for n in sorted(metrics, key=metric_sort_key)
                   if n.startswith(("runtime.shadow.", "classify.",
                                    "interp.instructions."))]
    if interesting:
        lines.append("")
        for name in interesting[:6]:
            entry = metrics[name]
            value = entry.get("value", entry.get("count", 0))
            lines.append(f"  {name:<44} {value:>14,.0f}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro top",
        description="live terminal dashboard polling a repro status "
                    "endpoint (--status-port / REPRO_STATUS_PORT on the "
                    "run being observed)")
    parser.add_argument("--port", type=int, default=None,
                        help="status-endpoint port on --host")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--url", default=None,
                        help="full /metrics URL (overrides --host/--port)")
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="render one frame from a saved /metrics JSON "
                             "payload instead of polling (implies --once)")
    parser.add_argument("--interval", type=float, default=DEFAULT_INTERVAL,
                        help="seconds between polls (default 1.0)")
    parser.add_argument("--once", action="store_true",
                        help="print a single frame and exit (no screen "
                             "clearing; suitable for CI logs)")
    parser.add_argument("--retries", type=int, default=10,
                        help="initial connection attempts before giving up "
                             "(the run may still be compiling)")
    args = parser.parse_args(argv)

    if args.snapshot:
        with open(args.snapshot) as fh:
            payload = json.load(fh)
        print(render_dashboard(payload))
        return 0

    if args.url:
        url = args.url
    elif args.port is not None:
        url = f"http://{args.host}:{args.port}/metrics"
    else:
        from .server import resolve_status_port

        port = resolve_status_port(None)
        if port is None:
            print("error: no endpoint: pass --port/--url or set "
                  "REPRO_STATUS_PORT", file=sys.stderr)
            return 2
        url = f"http://{args.host}:{port}/metrics"

    payload: Optional[Dict[str, object]] = None
    for attempt in range(max(1, args.retries)):
        try:
            payload = fetch_payload(url)
            break
        except (urllib.error.URLError, OSError):
            if attempt == max(1, args.retries) - 1:
                print(f"error: cannot reach {url} after "
                      f"{max(1, args.retries)} attempt(s)", file=sys.stderr)
                return 1
            time.sleep(args.interval)
    assert payload is not None

    if args.once:
        print(render_dashboard(payload))
        return 0

    prev: Optional[Dict[str, object]] = None
    try:
        while True:
            sys.stdout.write(CLEAR + render_dashboard(payload, prev) + "\n")
            sys.stdout.flush()
            prev = payload
            time.sleep(args.interval)
            try:
                payload = fetch_payload(url)
            except (urllib.error.URLError, OSError):
                print("\n(run ended — status endpoint gone)")
                return 0
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
