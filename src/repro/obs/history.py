"""Metrics history ring: periodic registry snapshots on bounded disk.

A :class:`HistorySampler` thread appends one compact registry snapshot
per interval to ``<dir>/history.jsonl``.  The file is a *ring*: when it
grows past ``max_records`` lines it is rewritten in place (tmp +
``os.replace``) keeping only the newest half, so a long-lived ``repro
serve`` produces a bounded artifact no matter how long it runs.

The ring is what powers trend views that a point-in-time ``/metrics``
scrape cannot: ``repro dash`` renders rps / latency percentile /
misspeculation-rate / queue-depth sparklines from it, and ``repro top``
keeps working unchanged against the live endpoint.

Records are compact on purpose — counters and gauges keep only their
value, histograms only ``count``/``sum``/``p50``/``p99`` — because the
ring trades per-sample detail for time depth.  Per-job metrics
(``job.<id>.*``) are skipped: retention-evicted jobs would otherwise
leave dead series behind in every record.

Enable by directory: pass ``history_dir`` to :class:`ServiceApp` /
``repro serve --history-dir``, or set ``$REPRO_HISTORY_DIR``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from .log import get_logger
from .metrics import METRICS, MetricsRegistry

log = get_logger("obs.history")

#: Environment variable enabling the history ring (a directory path).
HISTORY_DIR_ENV = "REPRO_HISTORY_DIR"

#: The ring file inside the history directory.
HISTORY_FILE = "history.jsonl"

#: Default seconds between snapshots.
DEFAULT_INTERVAL_S = 2.0

#: Default ring bound (lines); the rewrite keeps the newest half.
DEFAULT_MAX_RECORDS = 2048

#: History record format version.
HISTORY_FORMAT = 1


def resolve_history_dir(history_dir: Optional[str] = None) -> Optional[str]:
    """Explicit flag > ``$REPRO_HISTORY_DIR`` > disabled (None)."""
    if history_dir is not None:
        return history_dir
    raw = os.environ.get(HISTORY_DIR_ENV, "").strip()
    return raw or None


def compact_snapshot(registry: MetricsRegistry) -> Dict[str, Dict[str, object]]:
    """A bounded per-record view of the registry: values for counters
    and gauges, ``count``/``sum``/``p50``/``p99`` for histograms, and no
    per-job (``job.<id>.*``) series."""
    out: Dict[str, Dict[str, object]] = {}
    for name, snap in registry.snapshot().items():
        if name.startswith("job."):
            continue
        if snap.get("type") == "histogram":
            out[name] = {
                "type": "histogram",
                "count": snap.get("count"),
                "sum": snap.get("sum"),
                "p50": snap.get("p50"),
                "p99": snap.get("p99"),
            }
        else:
            out[name] = {"type": snap.get("type"),
                         "value": snap.get("value")}
    return out


class HistorySampler:
    """Daemon thread appending registry snapshots to the on-disk ring."""

    def __init__(self, history_dir: str,
                 registry: Optional[MetricsRegistry] = None,
                 interval_s: float = DEFAULT_INTERVAL_S,
                 max_records: int = DEFAULT_MAX_RECORDS):
        self.registry = registry if registry is not None else METRICS
        self.dir = Path(history_dir)
        self.path = self.dir / HISTORY_FILE
        self.interval_s = max(0.05, float(interval_s))
        self.max_records = max(8, int(max_records))
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lines = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "HistorySampler":
        if self._thread is not None:
            return self
        self.dir.mkdir(parents=True, exist_ok=True)
        self._lines = self._count_lines()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-history", daemon=True)
        self._thread.start()
        log.info("history ring sampling to %s every %.1fs",
                 self.path, self.interval_s)
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Take one final snapshot, then stop; idempotent."""
        thread = self._thread
        self._thread = None
        self._stop.set()
        if thread is not None:
            thread.join(timeout)
            self.sample()

    @property
    def alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample()
            except OSError as e:  # disk trouble must not kill the server
                log.warning("history sample failed: %s", e)

    # -- the ring ----------------------------------------------------------

    def _count_lines(self) -> int:
        try:
            with open(self.path) as fh:
                return sum(1 for _ in fh)
        except OSError:
            return 0

    def sample(self) -> Dict[str, object]:
        """Append one snapshot record; compacts the ring when full."""
        record = {
            "history_format": HISTORY_FORMAT,
            "ts_unix": time.time(),
            "metrics": compact_snapshot(self.registry),
        }
        line = json.dumps(record, sort_keys=True, default=str)
        with open(self.path, "a") as fh:
            fh.write(line + "\n")
        self._lines += 1
        if self._lines > self.max_records:
            self._compact()
        return record

    def _compact(self) -> None:
        """Rewrite the ring keeping the newest half (tmp + replace, so a
        concurrent reader always sees a complete file)."""
        keep = self.max_records // 2
        try:
            with open(self.path) as fh:
                lines = fh.readlines()
        except OSError:
            self._lines = 0
            return
        lines = lines[-keep:]
        tmp = self.path.with_suffix(".jsonl.tmp")
        with open(tmp, "w") as fh:
            fh.writelines(lines)
        os.replace(tmp, self.path)
        self._lines = len(lines)


def read_history(path) -> List[Dict[str, object]]:
    """Load ring records (oldest first) from a history file or the
    directory that contains one; malformed lines are skipped (a crash
    mid-append leaves at most one)."""
    p = Path(path)
    if p.is_dir():
        p = p / HISTORY_FILE
    records: List[Dict[str, object]] = []
    try:
        with open(p) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue
                if isinstance(rec, dict) and "metrics" in rec:
                    records.append(rec)
    except OSError:
        return []
    return records
