"""``python -m repro dash`` — self-contained HTML dashboard from the
metrics history ring.

Reads the bounded JSONL ring written by
:class:`~repro.obs.history.HistorySampler` (``repro serve
--history-dir`` / ``$REPRO_HISTORY_DIR``) and renders one static HTML
file: throughput (jobs/s), latency p50/p99, misspeculation rate, and
queue depth as inline SVG sparklines, plus a current-values table.  No
JavaScript, no external assets — the file works from ``file://``, an
artifact store, or a CI log bundle (the same philosophy as the
forensics HTML reports).

Rates are derived exactly like ``repro top`` does between polls: deltas
of monotonic counters over the wall-clock gap between records.
"""

from __future__ import annotations

import argparse
import html
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from .history import HISTORY_DIR_ENV, read_history, resolve_history_dir

#: Sparkline viewport (CSS pixels).
SPARK_W = 260
SPARK_H = 48


def _metric(rec: Dict[str, object], name: str) -> Dict[str, object]:
    metrics = rec.get("metrics") or {}
    entry = metrics.get(name)
    return entry if isinstance(entry, dict) else {}


def _value(rec: Dict[str, object], name: str, default: float = 0.0) -> float:
    v = _metric(rec, name).get("value")
    return default if not isinstance(v, (int, float)) else float(v)


def _hist_field(rec: Dict[str, object], name: str, field: str
                ) -> Optional[float]:
    v = _metric(rec, name).get(field)
    return float(v) if isinstance(v, (int, float)) else None


def series_rate(records: List[Dict[str, object]], name: str,
                ) -> List[Optional[float]]:
    """Per-record rate of a monotonic counter (None for the first
    record and across non-positive time gaps)."""
    out: List[Optional[float]] = []
    prev_v: Optional[float] = None
    prev_t: Optional[float] = None
    for rec in records:
        t = float(rec.get("ts_unix") or 0.0)
        v = _value(rec, name)
        if prev_v is None or prev_t is None or t <= prev_t:
            out.append(None)
        else:
            out.append(max(0.0, v - prev_v) / (t - prev_t))
        prev_v, prev_t = v, t
    return out


def misspec_rate_series(records: List[Dict[str, object]]
                        ) -> List[Optional[float]]:
    """Windowed misspeculation rate: misspecs per committed epoch
    between consecutive records."""
    out: List[Optional[float]] = []
    prev: Optional[Tuple[float, float]] = None
    for rec in records:
        metrics = rec.get("metrics") or {}
        misspecs = sum(
            float(entry.get("value") or 0.0)
            for name, entry in metrics.items()
            if name.startswith("runtime.misspec.") and isinstance(entry, dict)
            and isinstance(entry.get("value"), (int, float)))
        epochs = _value(rec, "executor.epochs")
        if prev is None:
            out.append(None)
        else:
            d_miss = max(0.0, misspecs - prev[0])
            d_epochs = max(0.0, epochs - prev[1])
            attempts = d_miss + d_epochs
            out.append(d_miss / attempts if attempts else None)
        prev = (misspecs, epochs)
    return out


def sparkline(values: Sequence[Optional[float]],
              width: int = SPARK_W, height: int = SPARK_H,
              color: str = "#2563eb") -> str:
    """Inline SVG sparkline; gaps (None) break the polyline."""
    points = [(i, v) for i, v in enumerate(values) if v is not None]
    if not points:
        return (f'<svg class="spark" width="{width}" height="{height}">'
                f'<text x="4" y="{height - 6}" class="nodata">no data'
                f"</text></svg>")
    lo = min(v for _, v in points)
    hi = max(v for _, v in points)
    span = (hi - lo) or 1.0
    n = max(1, len(values) - 1)
    pad = 3

    def xy(i: int, v: float) -> str:
        x = pad + i / n * (width - 2 * pad)
        y = height - pad - (v - lo) / span * (height - 2 * pad)
        return f"{x:.1f},{y:.1f}"

    segments: List[List[str]] = []
    run: List[str] = []
    for i, v in enumerate(values):
        if v is None:
            if run:
                segments.append(run)
                run = []
            continue
        run.append(xy(i, v))
    if run:
        segments.append(run)
    polys = "".join(
        f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
        f'points="{" ".join(seg)}"/>'
        for seg in segments if len(seg) >= 2)
    dots = "".join(
        f'<circle cx="{seg[0].split(",")[0]}" cy="{seg[0].split(",")[1]}" '
        f'r="1.5" fill="{color}"/>'
        for seg in segments if len(seg) == 1)
    return (f'<svg class="spark" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">{polys}{dots}</svg>')


def _fmt(v: Optional[float], unit: str = "", pct: bool = False) -> str:
    if v is None:
        return "-"
    if pct:
        return f"{v:.1%}"
    if unit == "us":
        if v >= 1e6:
            return f"{v / 1e6:.2f}s"
        if v >= 1e3:
            return f"{v / 1e3:.1f}ms"
        return f"{v:.0f}us"
    return f"{v:,.2f}{unit}"


def _last(values: Sequence[Optional[float]]) -> Optional[float]:
    for v in reversed(values):
        if v is not None:
            return v
    return None


def render_dash_html(records: List[Dict[str, object]],
                     source: str = "") -> str:
    """The full dashboard HTML (one self-contained page)."""
    rows: List[str] = []

    def panel(title: str, values: List[Optional[float]],
              unit: str = "", pct: bool = False,
              color: str = "#2563eb") -> None:
        rows.append(
            '<div class="panel">'
            f"<h2>{html.escape(title)}</h2>"
            f'<div class="now">{html.escape(_fmt(_last(values), unit, pct))}'
            "</div>"
            + sparkline(values, color=color)
            + "</div>")

    completed = series_rate(records, "service.jobs.completed")
    submitted = series_rate(records, "service.jobs.submitted")
    p50 = [_hist_field(r, "service.job.latency_us", "p50") for r in records]
    p99 = [_hist_field(r, "service.job.latency_us", "p99") for r in records]
    misspec = misspec_rate_series(records)
    depth = [_value(r, "service.queue.depth") for r in records]
    retry = [_value(r, "service.retry_after_s") for r in records]

    panel("jobs completed /s", completed)
    panel("jobs submitted /s", submitted, color="#64748b")
    panel("job latency p50", p50, unit="us", color="#059669")
    panel("job latency p99", p99, unit="us", color="#dc2626")
    panel("misspeculation rate", misspec, pct=True, color="#d97706")
    panel("queue depth", depth, color="#7c3aed")
    panel("retry-after hint (s)", retry, color="#a21caf")

    last = records[-1] if records else {}
    metrics = last.get("metrics") or {}
    table_rows = "".join(
        "<tr><td>" + html.escape(name) + "</td><td>"
        + html.escape(_fmt_entry(entry)) + "</td></tr>"
        for name, entry in sorted(metrics.items())
        if isinstance(entry, dict) and name.startswith("service."))
    span_s = 0.0
    if len(records) >= 2:
        span_s = (float(records[-1].get("ts_unix") or 0.0)
                  - float(records[0].get("ts_unix") or 0.0))
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro dash</title>
<style>
body {{ font: 14px/1.4 system-ui, sans-serif; margin: 2em auto;
       max-width: 960px; color: #0f172a; }}
h1 {{ font-size: 1.3em; }} h2 {{ font-size: 0.9em; margin: 0 0 .2em; }}
.meta {{ color: #64748b; margin-bottom: 1.5em; }}
.grid {{ display: flex; flex-wrap: wrap; gap: 1em; }}
.panel {{ border: 1px solid #e2e8f0; border-radius: 8px; padding: .8em;
          width: {SPARK_W}px; }}
.now {{ font-size: 1.4em; font-weight: 600; margin-bottom: .3em; }}
.spark {{ display: block; }}
.nodata {{ font-size: 11px; fill: #94a3b8; }}
table {{ border-collapse: collapse; margin-top: 2em; width: 100%; }}
td {{ border-top: 1px solid #e2e8f0; padding: .25em .5em;
      font-family: ui-monospace, monospace; font-size: 12px; }}
</style>
</head>
<body>
<h1>repro dash</h1>
<p class="meta">{len(records)} snapshot(s) spanning {span_s:.0f}s
{("&middot; " + html.escape(source)) if source else ""}</p>
<div class="grid">
{"".join(rows)}
</div>
<table>
<tr><th align="left">service metric (latest)</th><th align="left">value</th></tr>
{table_rows}
</table>
</body>
</html>
"""


def _fmt_entry(entry: Dict[str, object]) -> str:
    if entry.get("type") == "histogram":
        return (f"count={entry.get('count')} "
                f"p50={_fmt(_as_float(entry.get('p50')), 'us')} "
                f"p99={_fmt(_as_float(entry.get('p99')), 'us')}")
    v = entry.get("value")
    return "-" if v is None else f"{v}"


def _as_float(v: object) -> Optional[float]:
    return float(v) if isinstance(v, (int, float)) else None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro dash",
        description="render a self-contained HTML dashboard from the "
                    "metrics history ring written by `repro serve "
                    f"--history-dir` (or ${HISTORY_DIR_ENV})")
    parser.add_argument("--history-dir", default=None,
                        help="history directory (or file); defaults to "
                             f"${HISTORY_DIR_ENV}")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the HTML here (default: stdout)")
    args = parser.parse_args(argv)
    source = resolve_history_dir(args.history_dir)
    if source is None:
        print(f"error: no history: pass --history-dir or set "
              f"${HISTORY_DIR_ENV}", file=sys.stderr)
        return 2
    records = read_history(source)
    if not records:
        print(f"error: no history records under {source!r} (is the "
              "server running with history enabled?)", file=sys.stderr)
        return 1
    page = render_dash_html(records, source=str(source))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(page)
        print(f"wrote {args.out} ({len(records)} snapshot(s))")
    else:
        sys.stdout.write(page)
    return 0


if __name__ == "__main__":
    sys.exit(main())
