"""Unified observability: tracing, metrics, and logging.

One switch controls the whole layer: :func:`enable` resets and arms the
process-wide :data:`TRACER` and :data:`METRICS`, and applies any
``$REPRO_LOG`` logging configuration.  Instrumented call sites across
the pipeline guard their work behind ``TRACER.enabled`` — a single
attribute check — so the disabled path is effectively free (the perf
harness asserts a <= 2% interpreter budget).

See DESIGN.md ("Observability") for the event taxonomy and file formats.
"""

from __future__ import annotations

from .history import (
    HISTORY_DIR_ENV,
    HistorySampler,
    read_history,
    resolve_history_dir,
)
from .log import configure_from_env, get_logger
from .metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    labeled,
    parse_metric_name,
    render_prometheus,
)
from .server import (
    STATUS_PORT_ENV,
    StatusServer,
    resolve_status_port,
    start_status_server,
)
from .trace import (
    CYCLES_PER_US,
    NULL_SPAN,
    TRACE_FORMAT,
    TRACER,
    Span,
    Tracer,
    timeline_to_chrome,
)

__all__ = [
    "CYCLES_PER_US", "Counter", "Gauge", "HISTORY_DIR_ENV", "Histogram",
    "HistorySampler", "METRICS", "MetricsRegistry", "NULL_SPAN",
    "STATUS_PORT_ENV", "Span", "StatusServer", "TRACE_FORMAT", "TRACER",
    "Tracer", "configure_from_env", "disable", "enable", "enabled",
    "get_logger", "labeled", "parse_metric_name", "read_history",
    "render_prometheus", "resolve_history_dir", "resolve_status_port",
    "start_status_server", "timeline_to_chrome",
]


def enable() -> None:
    """Arm tracing + metrics for this process (fresh epoch, counters
    cleared) and configure logging from ``$REPRO_LOG``."""
    METRICS.reset()
    TRACER.enable()
    configure_from_env()


def disable() -> None:
    """Disarm tracing + metrics; recorded events stay readable until the
    next :func:`enable`."""
    TRACER.disable()


def enabled() -> bool:
    return TRACER.enabled
